"""Design reports: one markdown document per analyzed design.

Bundles everything the methodology knows about a system — topology
statistics, deadlock status, performance and critical cycle, per-process
sensitivities, the optimized ordering and its gain — into a single
markdown report (``ermes report design.json``).  The equivalent of the
datasheet a CAD tool prints at the end of a run.
"""

from __future__ import annotations

import io
from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import DeadlockError
from repro.model.performance import analyze_system
from repro.model.sensitivity import sensitivity_report
from repro.ordering.algorithm import channel_ordering


def _markdown_table(header: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(header) + " |",
           "|" + "|".join("---" for _ in header) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(out) + "\n"


def design_report(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    include_sensitivity: bool = True,
    sensitivity_limit: int = 10,
    include_stalls: bool = True,
    stall_iterations: int = 64,
    stall_limit: int = 10,
) -> str:
    """Produce the markdown report for one design configuration.

    Args:
        system: The system under report.
        ordering: The ordering in force (default declaration order).
        process_latencies: Optional latency overrides (an implementation
            selection).
        include_sensitivity: Add the per-process bottleneck table (costs
            ``O(P log)`` analyses; disable for very large systems).
        sensitivity_limit: Show at most this many processes in the
            sensitivity table (most impactful first).
        include_stalls: Add the simulated stall-attribution table — which
            process stalls on which channel, waiting on whom (costs one
            ``stall_iterations``-iteration simulation).
        stall_iterations: Simulation length for the stall table.
        stall_limit: Show at most this many stall rows (worst first).
    """
    if ordering is None:
        ordering = ChannelOrdering.declaration_order(system)
    out = io.StringIO()
    out.write(f"# Design report: {system.name}\n\n")

    # ------------------------------------------------------------- topology
    workers = system.workers()
    out.write("## Topology\n\n")
    out.write(_markdown_table(
        ["metric", "value"],
        [
            ["processes", str(len(workers))],
            ["testbench", f"{len(system.sources())} sources, "
                          f"{len(system.sinks())} sinks"],
            ["channels", str(len(system.channels))],
            ["pre-loaded channels",
             str(sum(1 for c in system.channels if c.initial_tokens))],
            ["buffered channels",
             str(sum(1 for c in system.channels if c.capacity))],
            ["statement orderings", str(system.order_space_size())],
        ],
    ))
    out.write("\n")

    # ---------------------------------------------------------- performance
    out.write("## Performance under the given ordering\n\n")
    try:
        performance = analyze_system(
            system, ordering, process_latencies=process_latencies
        )
    except DeadlockError as error:
        out.write("**DEADLOCK.**  Circular wait: "
                  + " → ".join(error.cycle or []) + "\n\n")
        performance = None
    if performance is not None:
        out.write(_markdown_table(
            ["metric", "value"],
            [
                ["cycle time", str(performance.cycle_time)],
                ["throughput", f"{float(performance.throughput):.6g} "
                               "items/cycle"],
                ["critical processes",
                 ", ".join(performance.critical_processes) or "—"],
                ["critical channels",
                 ", ".join(performance.critical_channels) or "—"],
            ],
        ))
        out.write("\n")

    # ------------------------------------------------------------- ordering
    out.write("## Algorithm 1 ordering\n\n")
    optimized: ChannelOrdering | None = None
    try:
        optimized = channel_ordering(system, initial_ordering=ordering)
        opt_perf = analyze_system(
            system, optimized, process_latencies=process_latencies
        )
        changed = optimized.differs_from(ordering)
        rows = [["cycle time after reordering", str(opt_perf.cycle_time)]]
        if performance is not None:
            gain = 1 - float(opt_perf.cycle_time) / float(
                performance.cycle_time
            )
            rows.append(["improvement", f"{gain:.2%}"])
        rows.append(["processes reordered",
                     ", ".join(changed) if changed else "none"])
        out.write(_markdown_table(["metric", "value"], rows))
        out.write("\n")
        if changed:
            detail_rows = []
            for name in changed:
                detail_rows.append([
                    name,
                    " ".join(optimized.gets_of(name)),
                    " ".join(optimized.puts_of(name)),
                ])
            out.write(_markdown_table(
                ["process", "gets (new order)", "puts (new order)"],
                detail_rows,
            ))
            out.write("\n")
        reference = opt_perf
    except DeadlockError as error:
        out.write("Ordering failed: " + str(error) + "\n\n")
        reference = performance

    # ---------------------------------------------------------- sensitivity
    if include_sensitivity and reference is not None:
        out.write("## Bottlenecks (under the optimized ordering)\n\n")
        sens = sensitivity_report(
            system,
            optimized if optimized is not None else ordering,
            process_latencies=process_latencies,
        )
        entries = sorted(sens.entries, key=lambda e: -float(e.potential))
        rows = [
            [
                e.process,
                str(e.latency),
                "yes" if e.on_critical_cycle else "no",
                str(e.slack),
                str(e.potential),
            ]
            for e in entries[:sensitivity_limit]
        ]
        out.write(_markdown_table(
            ["process", "latency", "critical", "slack",
             "speed-up potential"],
            rows,
        ))
        out.write("\n")

    # -------------------------------------------------------------- stalls
    if include_stalls:
        from repro.obs.profile import stall_attribution
        from repro.sim import simulate

        out.write("## Stall attribution (simulated)\n\n")
        sim_ordering = optimized if optimized is not None else ordering
        try:
            sim_result = simulate(
                system,
                sim_ordering,
                iterations=stall_iterations,
                process_latencies=process_latencies,
            )
        except DeadlockError as error:
            out.write("Simulation deadlocked: " + str(error) + "\n\n")
        else:
            peers = {
                c.name: (c.producer, c.consumer) for c in system.channels
            }
            attribution = stall_attribution(
                sim_result.stall_breakdown, peers, limit=stall_limit
            )
            if not attribution:
                out.write(
                    f"No stalls in {stall_iterations} simulated "
                    "iterations — every process is compute-bound.\n\n"
                )
            else:
                total = sum(sim_result.stall_cycles.values()) or 1
                out.write(
                    f"Simulated {stall_iterations} iterations under the "
                    + ("optimized" if optimized is not None else "given")
                    + " ordering; worst blocked (process, channel) "
                    "pairs first.\n\n"
                )
                out.write(_markdown_table(
                    ["process", "stalled on", "waiting on", "cycles",
                     "share of all stalls"],
                    [
                        [process, channel, peer, str(cycles),
                         f"{cycles / total:.1%}"]
                        for process, channel, peer, cycles in attribution
                    ],
                ))
                out.write("\n")

    return out.getvalue()
