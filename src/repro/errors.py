"""Exception hierarchy for the ERMES reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class at tool boundaries (CLI, explorer
loops) while tests can assert on precise subclasses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError):
    """A system model violates a structural invariant.

    Examples: a channel whose endpoints are not registered processes, a
    process whose port order is not a permutation of its channels, or a
    testbench declaration that does not match the graph topology.
    """


class CompositionError(ValidationError):
    """A DSL composition step is ill-typed or structurally impossible.

    Examples: piping a two-output block into a three-input block,
    connecting ports whose payload types disagree, or elaborating a
    design that still has unconnected ports.  A subclass of
    :class:`ValidationError`: composition errors are construction-time
    validation failures, reported at the combinator call site.
    """


class DeadlockError(ReproError):
    """A configuration is dead: some dependency cycle can never make progress.

    Carries the offending cycle when known, as a list of element names
    (process/channel names for system-level deadlocks, place/transition
    names for TMG-level ones).
    """

    def __init__(self, message: str, cycle: list[str] | None = None):
        super().__init__(message)
        self.cycle = list(cycle) if cycle is not None else None


class NotLiveError(DeadlockError):
    """A Timed Marked Graph contains a token-free cycle (Definition 3 with
    ``M0(c) = 0``), i.e. its cycle time is infinite."""


class InfeasibleError(ReproError):
    """An optimization problem (ILP, knapsack) has no feasible solution."""


class UnboundedError(ReproError):
    """An optimization problem is unbounded (should not occur in the
    formulations of Section 5; raised defensively by the generic solver)."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class SimulationDeadlock(DeadlockError, SimulationError):
    """Runtime deadlock observed by the simulator: every process is blocked
    on a rendezvous and no event is pending.

    Carries the wait-for cycle of process names diagnosed at the time of
    the deadlock, when one exists, plus the full blocked configuration
    (``waiting``: process name -> the channel it is blocked on) so the
    runtime observation can be compared against the model checker's
    witness (:mod:`repro.verify`).
    """

    def __init__(
        self,
        message: str,
        cycle: list[str] | None = None,
        waiting: dict[str, str] | None = None,
    ):
        super().__init__(message, cycle=cycle)
        self.waiting = dict(waiting) if waiting is not None else None


class VerificationError(ReproError):
    """The explicit-state model checker (:mod:`repro.verify`) reached an
    inconsistent conclusion — e.g. a witness schedule that does not
    replay.  Always indicates a bug, never a property of the design."""


class BudgetExceeded(VerificationError):
    """A verification run exhausted its state or time budget before
    reaching a verdict.  Raised by the *strict* entry points
    (:func:`repro.verify.verify_ordering`); the query form
    (:func:`repro.verify.check_deadlock`) reports the same outcome as an
    explicit ``INCONCLUSIVE`` verdict instead.  Budgets defer a verdict —
    they never silently grant one."""


class ConfigurationError(ReproError):
    """An inconsistent design configuration, e.g. selecting an
    implementation for a process that does not exist in its Pareto set."""
