"""Fixed-width table formatting shared by benchmarks and the CLI."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_rows(
    rows: Iterable[Sequence[object]],
    header: Sequence[str] | None = None,
    indent: str = "  ",
) -> str:
    """Render rows as a left-aligned fixed-width table.

    Column widths are computed from the content; every cell is rendered
    with ``str``.
    """
    materialized = [tuple(str(cell) for cell in row) for row in rows]
    if header is not None:
        materialized.insert(0, tuple(str(cell) for cell in header))
    if not materialized:
        return ""
    n_columns = max(len(row) for row in materialized)
    widths = [0] * n_columns
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    for index, row in enumerate(materialized):
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        lines.append(indent + "  ".join(padded).rstrip())
        if header is not None and index == 0:
            lines.append(
                indent + "  ".join("-" * widths[i] for i in range(len(row)))
            )
    return "\n".join(lines) + "\n"
