"""The experiment registry: every paper artifact this repository regenerates.

One authoritative list mapping the paper's tables/figures (plus this
reproduction's ablations) to the benchmark that regenerates each and the
claim it checks.  The CLI surfaces it (``ermes experiments``) and the
benchmark suite asserts it stays in sync with the files on disk.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Experiment:
    """One regenerable paper artifact.

    Attributes:
        id: Short experiment id used across DESIGN.md / EXPERIMENTS.md.
        artifact: The paper table/figure/claim it corresponds to.
        claim: The paper's headline number(s), condensed.
        bench: Benchmark file (relative to ``benchmarks/``) regenerating it.
    """

    id: str
    artifact: str
    claim: str
    bench: str


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        id="FIG2",
        artifact="Fig. 2 / Section 2 (motivating example)",
        claim="36 orderings; Listing-1 order deadlocks (P2-d, P6-g, P5-f)",
        bench="test_bench_fig2_motivating.py",
    ),
    Experiment(
        id="FIG3",
        artifact="Fig. 3 (TMG model of P2)",
        claim="chain a->L2->b,d,f; suboptimal cycle time 20 (throughput 0.05)",
        bench="test_bench_fig3_tmg_model.py",
    ),
    Experiment(
        id="FIG4",
        artifact="Fig. 4 (channel-ordering algorithm)",
        claim="labels per panel (b); optimum CT 12, 40% better than 20",
        bench="test_bench_fig4_ordering.py",
    ),
    Experiment(
        id="TAB1",
        artifact="Table 1 (MPEG-2 setup)",
        claim="26 processes, 60 channels, 171 Pareto points, latencies 1..5280",
        bench="test_bench_table1_setup.py",
    ),
    Experiment(
        id="M1",
        artifact="Section 6, M1 experiment",
        claim="CT 1906 KCycles; reordering alone -5%, area unchanged",
        bench="test_bench_m1_reordering.py",
    ),
    Experiment(
        id="FIG6L",
        artifact="Fig. 6 left (timing optimization, TCT=2000 KCycles)",
        claim="meets TCT from M2 (3597 KCycles); ~2x speed-up, area overhead",
        bench="test_bench_fig6_timing.py",
    ),
    Experiment(
        id="FIG6R",
        artifact="Fig. 6 right (area recovery, TCT=4000 KCycles)",
        claim="-32.46% area vs M2, <1% timing degradation",
        bench="test_bench_fig6_area.py",
    ),
    Experiment(
        id="SCAL",
        artifact="Section 6, scalability analysis",
        claim="10,000 processes / 15,000 channels within minutes",
        bench="test_bench_scalability.py",
    ),
    Experiment(
        id="SWEEP",
        artifact="extension: system-level Pareto frontier",
        claim="richer exploration: latency/area frontier via target sweep",
        bench="test_bench_pareto_sweep.py",
    ),
    Experiment(
        id="BUS",
        artifact="extension: interconnect width optimization",
        claim="cheapest per-channel bus widths holding M1's cycle time",
        bench="test_bench_bus_widths.py",
    ),
    Experiment(
        id="ABL",
        artifact="extension: design-choice ablations",
        claim="Howard vs Lawler vs enumeration; exact vs float; ILP backends; "
        "annealing vs Algorithm 1",
        bench="test_bench_ablations.py",
    ),
    Experiment(
        id="LINT",
        artifact="extension: static design analysis",
        claim="full rule catalog over a 300-process SoC in < 1 s; "
        "structural pre-flight in milliseconds",
        bench="test_bench_lint.py",
    ),
    Experiment(
        id="CACHE",
        artifact="extension: memoized incremental analysis",
        claim=">=3x on replayed DSE analysis streams, results bit-identical "
        "to the uncached path",
        bench="test_bench_analysis_cache.py",
    ),
    Experiment(
        id="VERIFY",
        artifact="extension: exhaustive deadlock verification",
        claim="stubborn-set POR >= 5x fewer states than naive on a "
        "6-stage buffered pipeline; explorer-scale systems verify "
        "in < 1 s",
        bench="test_bench_verify.py",
    ),
    Experiment(
        id="OBS",
        artifact="extension: observability layer",
        claim="tracing/metrics off by default cost < 15% simulator "
        "overhead, results bit-identical with and without sinks",
        bench="test_bench_obs_overhead.py",
    ),
    Experiment(
        id="IR",
        artifact="extension: lowered core IR",
        claim="compile once, run everywhere: lowering < 5% of one "
        "simulation, array simulator >= 1.5x the interpretive engine, "
        "results bit-identical",
        bench="test_bench_ir.py",
    ),
    Experiment(
        id="ABSINT",
        artifact="extension: abstract-interpretation static analysis",
        claim="300-process pipeline analysed (bounds + certificate) < 1s; "
        "a validated certificate verifies deadlock-freedom with >= 10x "
        "fewer explored states than the exhaustive search",
        bench="test_bench_absint.py",
    ),
    Experiment(
        id="SHARD",
        artifact="extension: sharded DSE service + artifact store",
        claim="4 workers >= 2.5x on a 64-candidate sweep, outcomes "
        "bit-identical to sequential; a warm store serves a fresh "
        "process entirely from disk",
        bench="test_bench_shard.py",
    ),
    Experiment(
        id="SYM",
        artifact="extension: structural symmetry analysis",
        claim="quotient search >= 4x fewer states than POR alone on an "
        "8-stage symmetric ring; orbit dedup >= 2x fewer ordering "
        "analyses, aggregates bit-identical; labeling < 5% of one "
        "simulation",
        bench="test_bench_sym.py",
    ),
    Experiment(
        id="GEN",
        artifact="extension: compositional DSL + generated workload suite",
        claim="five seeded families regenerate bit-identically and pass "
        "lint/order/verify/analyze; replication reaches ERM701 declared, "
        "not rediscovered; declared families feed the explorer's orbit "
        "dedup (>= 1 verification served from the orbit per sweep)",
        bench="test_bench_workloads.py",
    ),
    Experiment(
        id="SIMD",
        artifact="extension: batched vectorized simulation",
        claim="64 DSE candidates in lock-step over one compiled IR "
        ">= 5x faster than sequential runs, every lane bit-identical "
        "to the reference engine",
        bench="test_bench_simd.py",
    ),
)


def experiment(id: str) -> Experiment:
    """Look an experiment up by id (case-insensitive)."""
    for entry in EXPERIMENTS:
        if entry.id.lower() == id.lower():
            return entry
    raise KeyError(id)


def format_registry() -> str:
    """Fixed-width rendering of the registry."""
    lines = [f"{'id':<6} {'artifact':<48} bench"]
    for entry in EXPERIMENTS:
        lines.append(f"{entry.id:<6} {entry.artifact:<48} {entry.bench}")
        lines.append(f"{'':<6} claim: {entry.claim}")
    return "\n".join(lines) + "\n"
