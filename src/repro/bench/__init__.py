"""Benchmark-harness support: the experiment registry and table helpers."""

from repro.bench.registry import (
    EXPERIMENTS,
    Experiment,
    experiment,
    format_registry,
)
from repro.bench.tables import format_rows

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "experiment",
    "format_registry",
    "format_rows",
]
