"""System-level performance analysis: the paper's Fig. 5 "Performance
Analysis" box.

Wraps TMG construction (:mod:`repro.model.build`) and cycle-time analysis
(:mod:`repro.tmg.analysis`) into one call operating directly on a system
and a channel ordering, reporting results in system vocabulary (processes
and channels rather than places and transitions).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Mapping, Union

from repro.core.system import ChannelOrdering, SystemGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a perf<->model cycle
    from repro.perf.engine import PerformanceEngine as PerformanceEngineLike
from repro.errors import DeadlockError, NotLiveError
from repro.model.build import SystemTmg, build_tmg
from repro.tmg.analysis import Engine, PerformanceReport, analyze

Number = Union[Fraction, float]


@dataclass(frozen=True)
class SystemPerformance:
    """Performance of a system under a specific configuration.

    Attributes:
        cycle_time: Steady-state cycles between consecutive data items.
        critical_processes: Processes whose computation lies on the
            critical cycle — the candidates for timing optimization.
        critical_channels: Channels on the critical cycle.
        report: The underlying TMG-level report.
    """

    cycle_time: Number
    critical_processes: tuple[str, ...]
    critical_channels: tuple[str, ...]
    report: PerformanceReport

    @property
    def throughput(self) -> Number:
        return self.report.throughput


def analyze_system(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    engine: Engine | str = Engine.HOWARD,
    exact: bool = True,
    perf_engine: "PerformanceEngineLike | None" = None,
) -> SystemPerformance:
    """Cycle time and critical cycle of a system under an ordering.

    Args:
        perf_engine: Optional :class:`repro.perf.PerformanceEngine`; when
            given, the call is served through its memoized/incremental
            path (identical results and errors, cached).  ``None`` runs
            the reference uncached analysis.

    Raises:
        DeadlockError: The configuration deadlocks; the error's ``cycle``
            lists the processes and channels in the circular wait.
    """
    if perf_engine is not None:
        return perf_engine.analyze(
            system,
            ordering,
            process_latencies=process_latencies,
            engine=engine,
            exact=exact,
        )
    model = build_tmg(system, ordering, process_latencies=process_latencies)
    try:
        report = analyze(model.tmg, engine=engine, exact=exact)
    except NotLiveError as error:
        raise _system_deadlock(model, error) from None
    return SystemPerformance(
        cycle_time=report.cycle_time,
        critical_processes=model.critical_processes(report.critical_cycle),
        critical_channels=model.critical_channels(report.critical_cycle),
        report=report,
    )


def is_deadlock_free(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
) -> bool:
    """True iff the configuration cannot deadlock.

    Deadlock freedom of a marked graph depends only on the topology,
    statement orders, and initial tokens — not on latencies — so this is a
    purely structural, linear-time check.
    """
    from repro.tmg.deadlock import is_live

    model = build_tmg(system, ordering, process_latencies=process_latencies)
    return is_live(model.tmg)


def deadlock_cycle(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
) -> tuple[str, ...] | None:
    """The circular wait of a deadlocking configuration, or ``None``.

    Returned as alternating system-level names (processes and channels),
    e.g. ``("P2", "d", "P6", "g", "P5", "f")`` for the motivating example's
    Section 2 deadlock.
    """
    from repro.tmg.deadlock import find_token_free_cycle
    from repro.tmg.event_graph import build_event_graph

    model = build_tmg(system, ordering)
    witness = find_token_free_cycle(build_event_graph(model.tmg))
    if witness is None:
        return None
    return _strip_prefixes(witness)


def _system_deadlock(model: SystemTmg, error: NotLiveError) -> DeadlockError:
    cycle = _strip_prefixes(error.cycle or [])
    return DeadlockError(
        f"system {model.system.name!r} deadlocks under this channel ordering; "
        "circular wait: " + " -> ".join(cycle),
        cycle=list(cycle),
    )


def _strip_prefixes(names: list[str]) -> tuple[str, ...]:
    from repro.model.build import CHANNEL_PREFIX, PROCESS_PREFIX

    stripped = []
    for name in names:
        if name.startswith(CHANNEL_PREFIX):
            stripped.append(name[len(CHANNEL_PREFIX):])
        elif name.startswith(PROCESS_PREFIX):
            stripped.append(name[len(PROCESS_PREFIX):])
        else:
            stripped.append(name)
    return tuple(stripped)
