"""Non-blocking (FIFO-buffered) channel model — the tech-report extension.

The paper's footnotes 1–2 note that the approach also applies to
non-blocking primitives, with the model given in the companion technical
report.  The standard marked-graph model of a ``k``-deep FIFO channel
splits the single channel transition into two:

* a **put transition** (delay = the channel transfer latency) the producer
  synchronizes with, and
* a **get transition** (delay 0) the consumer synchronizes with,

joined by a *data place* (tokens = items initially in the FIFO) from put to
get, and a *credit place* (tokens = free slots = capacity − initial items)
from get to put.  With ``capacity = 0`` this degenerates to a token-free
two-transition loop — i.e. rendezvous channels must use the blocking model
of :mod:`repro.model.build` instead, and this builder rejects them.

The effect on performance is the classic one: FIFO slack decouples producer
and consumer iterations, breaking long serialization cycles at an area cost
— the same trade the paper's related-work section attributes to
dataflow-style designs with carefully sized FIFOs.
"""

from __future__ import annotations

from typing import Mapping

from repro.core.system import ChannelOrdering, SystemGraph
from repro.errors import ValidationError
from repro.model.build import (
    SystemTmg,
    process_transition,
    statement_place,
    _first_marked_statement,
)
from repro.tmg.graph import TimedMarkedGraph


def put_transition(channel: str) -> str:
    """Producer-side transition name of a buffered channel."""
    return f"ch:{channel}.put"


def get_transition(channel: str) -> str:
    """Consumer-side transition name of a buffered channel."""
    return f"ch:{channel}.get"


def build_nonblocking_tmg(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    default_capacity: int | None = None,
) -> SystemTmg:
    """Build the FIFO-channel TMG of a system.

    Args:
        system: The system; every channel must have ``capacity >= 1`` (or
            ``default_capacity`` must be given to supply one).
        ordering: Statement orders; defaults to declaration order.
        process_latencies: Optional per-process latency overrides.
        default_capacity: Capacity for channels declaring ``capacity == 0``.

    Raises:
        ValidationError: A channel has no buffering and no default was
            provided, or holds more initial tokens than its capacity.
    """
    if ordering is None:
        ordering = ChannelOrdering.declaration_order(system)
    else:
        ordering.validate(system)
    overrides = dict(process_latencies or {})

    tmg = TimedMarkedGraph(f"{system.name}.nb-tmg")

    for channel in system.channels:
        capacity = channel.capacity or (default_capacity or 0)
        if capacity < 1:
            raise ValidationError(
                f"channel {channel.name!r}: the non-blocking model needs "
                "capacity >= 1 (use the blocking model for rendezvous)"
            )
        if channel.initial_tokens > capacity:
            raise ValidationError(
                f"channel {channel.name!r}: initial_tokens "
                f"({channel.initial_tokens}) exceed capacity ({capacity})"
            )
        tmg.add_transition(put_transition(channel.name), delay=channel.latency)
        tmg.add_transition(get_transition(channel.name), delay=0)
        tmg.add_place(
            f"{channel.name}/data",
            put_transition(channel.name),
            get_transition(channel.name),
            tokens=channel.initial_tokens,
        )
        tmg.add_place(
            f"{channel.name}/credit",
            get_transition(channel.name),
            put_transition(channel.name),
            tokens=capacity - channel.initial_tokens,
        )

    for process in system.processes:
        latency = overrides.get(process.name, process.latency)
        tmg.add_transition(process_transition(process.name), delay=latency)

    for process in system.processes:
        chain = ordering.statements_of(process.name)
        transitions = []
        for kind, target in chain:
            if kind == "compute":
                transitions.append(process_transition(process.name))
            elif kind == "get":
                transitions.append(get_transition(target))
            else:
                transitions.append(put_transition(target))
        first_marked = _first_marked_statement(process.kind, chain)
        for i, (kind, target) in enumerate(chain):
            producer = transitions[(i - 1) % len(chain)]
            tokens = 1 if i == first_marked else 0
            name = statement_place(
                process.name, kind, None if kind == "compute" else target
            )
            tmg.add_place(name, producer, transitions[i], tokens=tokens)

    return SystemTmg(tmg=tmg, system=system, ordering=ordering)
