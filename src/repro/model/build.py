"""Section 3: building the TMG performance model of a system.

The construction mirrors the paper's model for blocking primitives:

* the **computation phase** of each process is a single place feeding a
  transition whose delay is the process's micro-architecture latency;
* each **channel** is one transition whose delay is the channel's minimum
  transfer latency, fed by two places — the *put-place* inside the
  producer's chain and the *get-place* inside the consumer's chain;
* the **serial nature** of a process becomes a cyclic chain: the transition
  of each statement produces into the place of the next statement, and the
  first read follows the last write (Fig. 3);
* the **initial marking** places one token in the first get-place of every
  process that reads, and one token in the first put-place of every
  testbench source (an environment always ready to provide data).

**Buffered and pre-loaded channels.** A channel with ``capacity > 0`` is
a FIFO rather than a rendezvous, and a channel with ``initial_tokens > 0``
(e.g. an initialized frame store that makes a feedback loop live) cannot
be a pure rendezvous either: its first transfers complete without the
producer having computed anything, so it necessarily buffers.  Both are
modelled with the split FIFO structure — a *put transition* (delay =
transfer latency) and a zero-delay *get transition* joined by a data place
holding the pre-loaded tokens and a credit place holding the free slots
(``max(capacity, initial_tokens) − initial_tokens``).  Placing the initial
tokens on the producer's put-place instead would be wrong: it would put two
tokens in circulation on the producer's serial chain, modelling a process
that overlaps its own iterations.

Names are systematic so analyses can be mapped back to the system:
transition ``ch:a`` is channel ``a`` (``ch:a.put``/``ch:a.get`` for
buffered channels), transition ``proc:P2`` is the computation of ``P2``,
place ``P2/put:b`` is P2's put statement on ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.system import ChannelOrdering, ProcessKind, SystemGraph
from repro.errors import ValidationError
from repro.ir import OP_COMPUTE, OP_GET, LoweredIR, lower
from repro.tmg.graph import TimedMarkedGraph

CHANNEL_PREFIX = "ch:"
PROCESS_PREFIX = "proc:"
PUT_SUFFIX = ".put"
GET_SUFFIX = ".get"


def channel_transition(channel: str) -> str:
    """Transition name of a (rendezvous) channel."""
    return CHANNEL_PREFIX + channel


def buffered_put_transition(channel: str) -> str:
    """Producer-side transition name of a buffered (pre-loaded) channel."""
    return CHANNEL_PREFIX + channel + PUT_SUFFIX


def buffered_get_transition(channel: str) -> str:
    """Consumer-side transition name of a buffered (pre-loaded) channel."""
    return CHANNEL_PREFIX + channel + GET_SUFFIX


def process_transition(process: str) -> str:
    """Transition name of a process's computation phase."""
    return PROCESS_PREFIX + process


def statement_place(process: str, kind: str, channel: str | None = None) -> str:
    """Place name of one statement in a process chain.

    ``kind`` is ``"get"``, ``"put"`` or ``"compute"``; get/put take the
    channel name.
    """
    if kind == "compute":
        return f"{process}/comp"
    if channel is None:
        raise ValidationError("get/put statement places need a channel name")
    return f"{process}/{kind}:{channel}"


@dataclass(frozen=True)
class SystemTmg:
    """A built performance model, with back-references to the system."""

    tmg: TimedMarkedGraph
    system: SystemGraph
    ordering: ChannelOrdering

    def critical_processes(self, cycle: tuple[str, ...]) -> tuple[str, ...]:
        """Processes whose computation transition lies on ``cycle``."""
        return tuple(
            name[len(PROCESS_PREFIX):]
            for name in cycle
            if name.startswith(PROCESS_PREFIX)
        )

    def critical_channels(self, cycle: tuple[str, ...]) -> tuple[str, ...]:
        """Channels whose transition lies on ``cycle`` (put/get sides of a
        buffered channel map back to the channel; duplicates removed)."""
        seen: list[str] = []
        for name in cycle:
            if not name.startswith(CHANNEL_PREFIX):
                continue
            channel = name[len(CHANNEL_PREFIX):]
            for suffix in (PUT_SUFFIX, GET_SUFFIX):
                if channel.endswith(suffix):
                    channel = channel[: -len(suffix)]
            if channel not in seen:
                seen.append(channel)
        return tuple(seen)

    def processes_touching(self, places: tuple[str, ...]) -> tuple[str, ...]:
        """Processes owning any of the given statement places (in order of
        first appearance; duplicates removed)."""
        seen: list[str] = []
        for place in places:
            owner = place.split("/", 1)[0]
            if owner not in seen:
                seen.append(owner)
        return tuple(seen)


def build_tmg(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    *,
    ir: LoweredIR | None = None,
) -> SystemTmg:
    """Build the blocking-protocol TMG of a system under an ordering.

    The system is first compiled to its :class:`~repro.ir.LoweredIR`
    (memoized; callers that already hold the IR pass it to skip even the
    memo probe) and the TMG is generated from the IR's integer tables.
    Transition and place insertion order follows the IR's declaration
    order, so the model is element-for-element identical to one built
    directly from the object graph.

    Args:
        system: The system topology with default latencies.
        ordering: Statement orders; defaults to declaration order.
        process_latencies: Optional per-process latency overrides (used by
            design-space exploration to evaluate an implementation
            selection without rebuilding the system).  Latencies are the
            one quantity *not* in the IR — it is latency-free by design.
        ir: The pre-lowered IR of ``(system, ordering)``, if available.

    Returns:
        A :class:`SystemTmg` wrapping the TMG and the provenance needed to
        interpret analysis results at the system level.
    """
    if ordering is None:
        ordering = ChannelOrdering.declaration_order(system)
    if ir is None:
        ir = lower(system, ordering)
    overrides = dict(process_latencies or {})

    tmg = TimedMarkedGraph(f"{ir.system_name}.tmg")

    for cid, channel_name in enumerate(ir.channels):
        if not ir.buffered[cid]:
            tmg.add_transition(
                channel_transition(channel_name), delay=ir.channel_latencies[cid]
            )
        else:
            # Buffered (FIFO) or pre-loaded channel: split model (see
            # module docstring).
            initial = ir.initial_tokens[cid]
            tmg.add_transition(
                buffered_put_transition(channel_name),
                delay=ir.channel_latencies[cid],
            )
            tmg.add_transition(buffered_get_transition(channel_name), delay=0)
            tmg.add_place(
                f"{channel_name}/data",
                buffered_put_transition(channel_name),
                buffered_get_transition(channel_name),
                tokens=initial,
            )
            tmg.add_place(
                f"{channel_name}/credit",
                buffered_get_transition(channel_name),
                buffered_put_transition(channel_name),
                tokens=ir.effective_capacities[cid] - initial,
            )
    for process in system.processes:
        latency = overrides.get(process.name, process.latency)
        if latency < 0:
            raise ValidationError(
                f"latency override for {process.name!r} must be >= 0, got {latency}"
            )
        tmg.add_transition(process_transition(process.name), delay=latency)

    for pid, process_name in enumerate(ir.processes):
        kinds = ir.op_kinds[pid]
        args = ir.op_args[pid]
        # Transition driven by each statement, and the statement's place.
        transitions: list[str] = []
        place_names: list[str] = []
        for op, arg in zip(kinds, args):
            if op == OP_COMPUTE:
                transitions.append(process_transition(process_name))
                place_names.append(statement_place(process_name, "compute"))
                continue
            channel_name = ir.channels[arg]
            if not ir.buffered[arg]:
                transitions.append(channel_transition(channel_name))
            elif op == OP_GET:
                transitions.append(buffered_get_transition(channel_name))
            else:
                transitions.append(buffered_put_transition(channel_name))
            place_names.append(
                statement_place(
                    process_name, "get" if op == OP_GET else "put", channel_name
                )
            )
        first_marked = ir.first_marked[pid]
        n = len(kinds)
        for i in range(n):
            producer = transitions[(i - 1) % n]
            tokens = 1 if i == first_marked else 0
            tmg.add_place(place_names[i], producer, transitions[i], tokens=tokens)

    return SystemTmg(tmg=tmg, system=system, ordering=ordering)


def _first_marked_statement(
    kind: ProcessKind, chain: tuple[tuple[str, str], ...]
) -> int:
    """Index of the statement receiving the initial token.

    Processes that read start at their first get (the paper's rule: "a
    token is placed in the first get-place of each process").  Testbench
    sources have no gets; their token sits on the first put-place
    ("putsrc1"), modelling an environment that always has data ready.
    A source with no puts is degenerate and gets its token on the
    computation place so its chain stays live.

    The blocking-protocol path reads the equivalent precomputed
    :attr:`repro.ir.LoweredIR.first_marked` table; this helper remains for
    consumers of decoded chains (the non-blocking model variant).
    """
    for i, (statement_kind, _) in enumerate(chain):
        if statement_kind == "get":
            return i
    for i, (statement_kind, _) in enumerate(chain):
        if statement_kind == "put":
            return i
    return 0
