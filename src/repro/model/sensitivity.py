"""Bottleneck and sensitivity analysis.

Beyond the critical cycle, a designer wants to know *how much* each
process matters: how far can it slow down before it degrades the system
(its **latency slack**), and how much the system would gain if it were
instantaneous (its **speed-up potential**).  Both fall out of the TMG
model with a handful of re-analyses per process — still far cheaper than
simulation, and exactly the guidance the area-recovery/timing ILPs act on.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Union

from repro.core.system import ChannelOrdering, SystemGraph
from repro.model.performance import analyze_system

Number = Union[Fraction, float]


@dataclass(frozen=True)
class ProcessSensitivity:
    """Sensitivity of the system cycle time to one process.

    Attributes:
        process: The process name.
        latency: Its current computation latency.
        on_critical_cycle: Whether it lies on (one of) the critical cycles.
        slack: Largest latency increase that leaves the cycle time
            unchanged (0 for critical processes).
        potential: Cycle-time reduction if the process were instantaneous
            (0 for processes whose speed does not matter at all).
    """

    process: str
    latency: int
    on_critical_cycle: bool
    slack: int
    potential: Number


@dataclass(frozen=True)
class SensitivityReport:
    """Per-process sensitivities plus the baseline performance."""

    cycle_time: Number
    entries: tuple[ProcessSensitivity, ...]

    def of(self, process: str) -> ProcessSensitivity:
        for entry in self.entries:
            if entry.process == process:
                return entry
        raise KeyError(process)

    def bottlenecks(self) -> tuple[ProcessSensitivity, ...]:
        """Entries with nonzero speed-up potential, most impactful first."""
        return tuple(
            sorted(
                (e for e in self.entries if e.potential > 0),
                key=lambda e: (-float(e.potential), e.process),
            )
        )


def _cycle_time_with(
    system: SystemGraph,
    ordering: ChannelOrdering | None,
    latencies: dict[str, int],
) -> Number:
    return analyze_system(
        system, ordering, process_latencies=latencies
    ).cycle_time


def sensitivity_report(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    max_slack: int = 1 << 20,
) -> SensitivityReport:
    """Compute per-process latency slack and speed-up potential.

    Slack is found by binary search on the process's latency (the cycle
    time is monotone in every latency); potential by re-analyzing with the
    process at latency zero.  Testbench processes are included — a source
    with zero slack means the environment itself is the bottleneck.

    Cost: ``O(P log(max_slack))`` analyses; use on systems up to a few
    thousand processes.
    """
    baseline_latencies = dict(system.process_latencies())
    baseline_latencies.update(process_latencies or {})
    base_ct = _cycle_time_with(system, ordering, baseline_latencies)
    performance = analyze_system(
        system, ordering, process_latencies=baseline_latencies
    )
    critical = set(performance.critical_processes)

    entries = []
    for process in system.process_names:
        current = baseline_latencies[process]

        # Speed-up potential: the cycle time with this process free.
        fast = dict(baseline_latencies)
        fast[process] = 0
        potential = base_ct - _cycle_time_with(system, ordering, fast)

        # Latency slack: binary search for the largest harmless increase.
        if process in critical:
            slack = 0
        else:
            low, high = 0, 1
            while high <= max_slack:
                probe = dict(baseline_latencies)
                probe[process] = current + high
                if _cycle_time_with(system, ordering, probe) > base_ct:
                    break
                low = high
                high *= 2
            else:
                high = max_slack
            # invariant: low harmless, high harmful (or capped)
            while high - low > 1:
                mid = (low + high) // 2
                probe = dict(baseline_latencies)
                probe[process] = current + mid
                if _cycle_time_with(system, ordering, probe) > base_ct:
                    high = mid
                else:
                    low = mid
            slack = low

        entries.append(
            ProcessSensitivity(
                process=process,
                latency=current,
                on_critical_cycle=process in critical,
                slack=slack,
                potential=potential,
            )
        )

    return SensitivityReport(cycle_time=base_ct, entries=tuple(entries))


@dataclass(frozen=True)
class ChannelSensitivity:
    """Sensitivity of the system cycle time to one channel's latency.

    Attributes:
        channel: The channel name.
        latency: Its current transfer latency.
        on_critical_cycle: Whether it lies on (one of) the critical cycles.
        slack: Largest latency increase that leaves the cycle time
            unchanged.
        potential: Cycle-time reduction if the transfer took a single
            cycle (the best a wider bus could buy).
    """

    channel: str
    latency: int
    on_critical_cycle: bool
    slack: int
    potential: Number


def _with_channel_latency(system: SystemGraph, name: str, latency: int):
    from repro.core.system import Channel

    clone = system.copy()
    channel = clone.channel(name)
    clone._channels[name] = Channel(
        channel.name, channel.producer, channel.consumer,
        latency=latency, capacity=channel.capacity,
        initial_tokens=channel.initial_tokens,
    )
    return clone


def channel_sensitivity_report(
    system: SystemGraph,
    ordering: ChannelOrdering | None = None,
    process_latencies: Mapping[str, int] | None = None,
    max_slack: int = 1 << 20,
) -> tuple[Number, tuple[ChannelSensitivity, ...]]:
    """Per-channel latency slack and speed-up potential.

    The interconnect-side counterpart of :func:`sensitivity_report`: which
    channels deserve a wider bus (positive potential), and which can be
    narrowed for free (large slack).  Returns ``(cycle time, entries)``.
    """
    base_ct = analyze_system(
        system, ordering, process_latencies=process_latencies
    ).cycle_time
    critical = set(
        analyze_system(
            system, ordering, process_latencies=process_latencies
        ).critical_channels
    )

    entries = []
    for channel in system.channels:
        current = channel.latency

        fast = _with_channel_latency(system, channel.name, 1)
        potential = base_ct - analyze_system(
            fast, ordering, process_latencies=process_latencies
        ).cycle_time

        if channel.name in critical:
            slack = 0
        else:
            low, high = 0, 1
            while high <= max_slack:
                probe = _with_channel_latency(
                    system, channel.name, current + high
                )
                if analyze_system(
                    probe, ordering, process_latencies=process_latencies
                ).cycle_time > base_ct:
                    break
                low = high
                high *= 2
            else:
                high = max_slack
            while high - low > 1:
                mid = (low + high) // 2
                probe = _with_channel_latency(
                    system, channel.name, current + mid
                )
                if analyze_system(
                    probe, ordering, process_latencies=process_latencies
                ).cycle_time > base_ct:
                    high = mid
                else:
                    low = mid
            slack = low

        entries.append(
            ChannelSensitivity(
                channel=channel.name,
                latency=current,
                on_critical_cycle=channel.name in critical,
                slack=slack,
                potential=potential,
            )
        )
    return base_ct, tuple(entries)


def format_sensitivity(report: SensitivityReport, limit: int = 0) -> str:
    """Fixed-width rendering of a sensitivity report."""
    lines = [
        f"cycle time: {report.cycle_time}",
        f"{'process':<16} {'latency':>8} {'critical':>9} {'slack':>10} "
        f"{'potential':>10}",
    ]
    entries = report.entries
    if limit:
        entries = tuple(
            sorted(entries, key=lambda e: -float(e.potential))
        )[:limit]
    for e in entries:
        lines.append(
            f"{e.process:<16} {e.latency:>8} "
            f"{'yes' if e.on_critical_cycle else 'no':>9} {e.slack:>10} "
            f"{str(e.potential):>10}"
        )
    return "\n".join(lines) + "\n"
