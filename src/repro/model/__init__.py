"""Section 3 performance-model construction: system → Timed Marked Graph.

``build_tmg`` implements the paper's blocking-protocol model;
``build_nonblocking_tmg`` the FIFO extension from the companion technical
report; ``analyze_system`` is the one-call façade used by the methodology.
"""

from repro.model.build import (
    CHANNEL_PREFIX,
    PROCESS_PREFIX,
    SystemTmg,
    build_tmg,
    channel_transition,
    process_transition,
    statement_place,
)
from repro.model.nonblocking import (
    build_nonblocking_tmg,
    get_transition,
    put_transition,
)
from repro.model.performance import (
    SystemPerformance,
    analyze_system,
    deadlock_cycle,
    is_deadlock_free,
)
from repro.model.sensitivity import (
    ChannelSensitivity,
    ProcessSensitivity,
    SensitivityReport,
    channel_sensitivity_report,
    format_sensitivity,
    sensitivity_report,
)

__all__ = [
    "CHANNEL_PREFIX",
    "ChannelSensitivity",
    "PROCESS_PREFIX",
    "ProcessSensitivity",
    "SensitivityReport",
    "SystemPerformance",
    "SystemTmg",
    "analyze_system",
    "build_nonblocking_tmg",
    "build_tmg",
    "channel_sensitivity_report",
    "channel_transition",
    "deadlock_cycle",
    "format_sensitivity",
    "get_transition",
    "is_deadlock_free",
    "sensitivity_report",
    "process_transition",
    "put_transition",
    "statement_place",
]
