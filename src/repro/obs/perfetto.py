"""Chrome trace-event export: open simulator traces in Perfetto.

Converts a stream of :class:`~repro.sim.trace.TraceEvent` into the Chrome
trace-event JSON format (the ``traceEvents`` array form), which
https://ui.perfetto.dev and ``chrome://tracing`` load directly:

* one **thread track per process** (all under one "pid") carrying
  ``compute`` slices, ``stall:<channel>`` slices (duration = the cycles
  the process waited on that channel, annotated with whom it was waiting
  on), and ``put``/``get`` instants;
* one **counter track per channel** (under a second "pid") sampling the
  channel's token occupancy at every transfer boundary.

One simulated cycle is exported as one trace-clock microsecond (the
format's native unit); read absolute numbers on the timeline as cycles.
"""

from __future__ import annotations

import json
from typing import Iterable, Mapping

from repro.core.system import SystemGraph
from repro.sim.trace import TraceEvent

#: The synthetic "pid" hosting one thread track per process.
PROCESS_PID = 1
#: The synthetic "pid" hosting one counter track per channel.
CHANNEL_PID = 2


def _channel_peers(
    system: SystemGraph | None,
) -> Mapping[str, tuple[str, str]]:
    if system is None:
        return {}
    return {c.name: (c.producer, c.consumer) for c in system.channels}


def _initial_tokens(system: SystemGraph | None) -> Mapping[str, int]:
    if system is None:
        return {}
    return {c.name: c.initial_tokens for c in system.channels}


def to_chrome_trace(
    events: Iterable[TraceEvent],
    system: SystemGraph | None = None,
    name: str = "ermes",
) -> dict[str, object]:
    """Build the Chrome trace-event JSON document (as a dict).

    Args:
        events: Simulator events (any order; sorted internally).
        system: Optional topology; when given, stall slices carry the peer
            process each wait was on, and channel occupancy counters are
            seeded with the channels' ``initial_tokens``.
        name: Trace/process name shown in the viewer.

    Returns:
        A JSON-serializable dict with the ``traceEvents`` array; dump it
        with :func:`render_chrome_trace` or ``json.dump``.
    """
    ordered = sorted(events, key=lambda e: (e.time, _KIND_ORDER.get(e.kind, 9),
                                            e.process))
    peers = _channel_peers(system)

    process_names: list[str] = []
    seen = set()
    if system is not None:
        process_names.extend(system.process_names)
        seen.update(process_names)
    for event in ordered:
        if event.process not in seen:
            seen.add(event.process)
            process_names.append(event.process)
    tids = {proc: tid for tid, proc in enumerate(process_names, start=1)}

    trace: list[dict[str, object]] = [
        _meta("process_name", PROCESS_PID, 0, {"name": f"{name}: processes"}),
        _meta("process_sort_index", PROCESS_PID, 0, {"sort_index": 0}),
        _meta("process_name", CHANNEL_PID, 0, {"name": f"{name}: channels"}),
        _meta("process_sort_index", CHANNEL_PID, 0, {"sort_index": 1}),
    ]
    for proc, tid in tids.items():
        trace.append(_meta("thread_name", PROCESS_PID, tid, {"name": proc}))
        trace.append(
            _meta("thread_sort_index", PROCESS_PID, tid, {"sort_index": tid})
        )

    occupancy: dict[str, int] = dict(_initial_tokens(system))
    for event in ordered:
        tid = tids[event.process]
        args: dict[str, object] = {"iteration": event.iteration}
        if event.channel is not None:
            args["channel"] = event.channel
        if event.kind == "compute":
            trace.append({
                "name": "compute", "cat": "compute", "ph": "X",
                "ts": event.time - event.duration, "dur": event.duration,
                "pid": PROCESS_PID, "tid": tid, "args": args,
            })
            continue
        channel = event.channel or ""
        if event.kind in ("put", "get"):
            if event.wait > 0:
                stall_args = dict(args)
                producer, consumer = peers.get(channel, (None, None))
                waiting_on = (
                    consumer if event.kind == "put" else producer
                )
                if waiting_on is not None:
                    stall_args["waiting_on"] = waiting_on
                trace.append({
                    "name": f"stall:{channel}", "cat": "stall", "ph": "X",
                    "ts": event.time - event.wait, "dur": event.wait,
                    "pid": PROCESS_PID, "tid": tid, "args": stall_args,
                })
            trace.append({
                "name": f"{event.kind} {channel}", "cat": "transfer",
                "ph": "i", "s": "t", "ts": event.time,
                "pid": PROCESS_PID, "tid": tid, "args": args,
            })
            tokens = occupancy.get(channel, 0)
            tokens = tokens + 1 if event.kind == "put" else max(0, tokens - 1)
            occupancy[channel] = tokens
            trace.append({
                "name": f"occ:{channel}", "cat": "channel", "ph": "C",
                "ts": event.time, "pid": CHANNEL_PID,
                "args": {"tokens": tokens},
            })
        else:  # block-put / block-get: the arrival that did not complete
            trace.append({
                "name": f"{event.kind} {channel}", "cat": "block",
                "ph": "i", "s": "t", "ts": event.time,
                "pid": PROCESS_PID, "tid": tid, "args": args,
            })

    return {
        "traceEvents": trace,
        "displayTimeUnit": "ns",
        "otherData": {
            "tool": "ermes trace",
            "clock": "1 simulated cycle = 1 trace microsecond",
            "trace_name": name,
        },
    }


def render_chrome_trace(
    events: Iterable[TraceEvent],
    system: SystemGraph | None = None,
    name: str = "ermes",
) -> str:
    """:func:`to_chrome_trace` serialized to a JSON string."""
    return json.dumps(to_chrome_trace(events, system=system, name=name),
                      indent=1)


#: Puts sort before gets at equal timestamps so occupancy counters never
#: dip below zero through a same-cycle rendezvous.
_KIND_ORDER = {"compute": 0, "put": 1, "get": 2, "block-put": 3,
               "block-get": 4}


def _meta(name: str, pid: int, tid: int,
          args: dict[str, object]) -> dict[str, object]:
    return {"name": name, "ph": "M", "pid": pid, "tid": tid, "args": args}
