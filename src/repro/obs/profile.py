"""DSE profiling: per-iteration snapshots of an ERMES exploration.

Attach a :class:`DseProfiler` to :class:`repro.dse.Explorer` and every
exploration iteration leaves one :class:`IterationSnapshot` behind —
what the loop did (action, cycle time, area, slack), what it cost (wall
time, ILP branch-and-bound nodes), and how the analysis cache behaved
(hit/miss deltas) — so a finished run can be replayed as a convergence
timeline (``ermes profile --json``).

The profiler owns (or shares) a :class:`~repro.obs.metrics.MetricsRegistry`
that the instrumented layers report into under the stable ``dse.*`` /
``cache.*`` metric names (catalog: ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping, Protocol

from repro.obs.metrics import MetricsRegistry


class RecordLike(Protocol):
    """The slice of :class:`repro.dse.IterationRecord` the profiler reads.

    A structural protocol (rather than an import) keeps ``repro.obs``
    free of dependencies on the exploration layer.
    """

    @property
    def iteration(self) -> int: ...  # pragma: no cover - protocol

    @property
    def action(self) -> str: ...  # pragma: no cover - protocol

    @property
    def cycle_time(self) -> Fraction | float: ...  # pragma: no cover

    @property
    def area(self) -> float: ...  # pragma: no cover - protocol

    @property
    def slack(self) -> Fraction | float: ...  # pragma: no cover

    @property
    def meets_target(self) -> bool: ...  # pragma: no cover - protocol

    @property
    def selection_changes(
        self,
    ) -> tuple[tuple[str, str], ...]: ...  # pragma: no cover

    @property
    def reordered_processes(self) -> tuple[str, ...]: ...  # pragma: no cover


class CacheStatsLike(Protocol):
    """Hit/miss counters (:class:`repro.perf.CacheStats` shaped)."""

    @property
    def hits(self) -> int: ...  # pragma: no cover - protocol

    @property
    def misses(self) -> int: ...  # pragma: no cover - protocol


class EngineLike(Protocol):
    """The slice of :class:`repro.perf.PerformanceEngine` the profiler
    reads (result-cache totals and the mergeable counter dict)."""

    def stats(self) -> Mapping[str, CacheStatsLike]: ...  # pragma: no cover

    def stats_dict(
        self,
    ) -> Mapping[str, Mapping[str, int | float]]: ...  # pragma: no cover


@dataclass(frozen=True)
class IterationSnapshot:
    """One DSE iteration as the profiler saw it.

    ``cache_hits`` / ``cache_misses`` are *deltas* over this iteration
    (analysis results-cache lookups), not cumulative totals;
    ``ilp_nodes`` counts branch-and-bound nodes explored by the
    iteration's ILP solve(s); ``wall_time_s`` is the wall-clock span
    since the previous snapshot.
    """

    iteration: int
    action: str
    cycle_time: float
    area: float
    slack: float
    meets_target: bool
    selection_changes: tuple[tuple[str, str], ...]
    reordered_processes: tuple[str, ...]
    wall_time_s: float
    cache_hits: int
    cache_misses: int
    ilp_nodes: int

    def as_dict(self) -> dict[str, object]:
        return {
            "iteration": self.iteration,
            "action": self.action,
            "cycle_time": self.cycle_time,
            "area": self.area,
            "slack": self.slack,
            "meets_target": self.meets_target,
            "selection_changes": [list(c) for c in self.selection_changes],
            "reordered_processes": list(self.reordered_processes),
            "wall_time_s": round(self.wall_time_s, 6),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "ilp_nodes": self.ilp_nodes,
        }


class DseProfiler:
    """Collects :class:`IterationSnapshot` rows from an ERMES run.

    Pass one to :class:`repro.dse.Explorer`; it is re-armed at the start
    of every ``run()`` (snapshots accumulate across runs, e.g. over a
    :func:`repro.dse.sweep_targets` sweep — ``runs`` counts them).

    Args:
        metrics: Registry the explorer's timers/counters report into;
            a fresh one is created when omitted.
    """

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.snapshots: list[IterationSnapshot] = []
        self.runs = 0
        self._mark = 0.0
        self._cache_seen = (0, 0)

    # ------------------------------------------------------------------

    def begin_run(self, engine: EngineLike) -> None:
        """Explorer hook: a ``run()`` is starting against ``engine``."""
        self.runs += 1
        self.metrics.counter("dse.runs").add(1)
        self._mark = time.perf_counter()
        self._cache_seen = self._cache_totals(engine)

    def iteration(
        self,
        record: RecordLike,
        engine: EngineLike,
        ilp_nodes: int = 0,
    ) -> IterationSnapshot:
        """Explorer hook: one :class:`IterationRecord` was produced."""
        now = time.perf_counter()
        hits, misses = self._cache_totals(engine)
        snapshot = IterationSnapshot(
            iteration=record.iteration,
            action=record.action,
            cycle_time=float(record.cycle_time),
            area=record.area,
            slack=float(record.slack),
            meets_target=record.meets_target,
            selection_changes=record.selection_changes,
            reordered_processes=record.reordered_processes,
            wall_time_s=now - self._mark,
            cache_hits=hits - self._cache_seen[0],
            cache_misses=misses - self._cache_seen[1],
            ilp_nodes=ilp_nodes,
        )
        self.snapshots.append(snapshot)
        self._mark = now
        self._cache_seen = (hits, misses)
        self.metrics.counter("dse.iterations").add(1)
        self.metrics.histogram("dse.iteration.wall_s").observe(
            snapshot.wall_time_s
        )
        self.metrics.histogram("dse.iteration.cycle_time").observe(
            snapshot.cycle_time
        )
        return snapshot

    def end_run(self, result: object, engine: EngineLike) -> None:
        """Explorer hook: the run finished (any stop reason)."""
        self.metrics.merge_cache_stats(engine.stats_dict())

    # ------------------------------------------------------------------

    @staticmethod
    def _cache_totals(engine: EngineLike) -> tuple[int, int]:
        stats = engine.stats()["results"]
        return stats.hits, stats.misses

    def as_dicts(self) -> list[dict[str, object]]:
        """All snapshots, JSON-friendly (the ``ermes profile --json``
        ``iterations`` array)."""
        return [s.as_dict() for s in self.snapshots]


def format_convergence(
    snapshots: list[IterationSnapshot],
    cycle_time_unit: float = 1.0,
    area_unit: float = 1.0,
) -> str:
    """Fixed-width convergence timeline of a profiled run."""
    lines = [
        f"{'iter':>4} {'action':<20} {'cycle time':>12} {'area':>10} "
        f"{'ok':>3} {'wall (ms)':>10} {'hits':>6} {'miss':>6} "
        f"{'ilp nodes':>10}"
    ]
    for s in snapshots:
        lines.append(
            f"{s.iteration:>4} {s.action:<20} "
            f"{s.cycle_time / cycle_time_unit:>12.1f} "
            f"{s.area / area_unit:>10.3f} "
            f"{'y' if s.meets_target else 'n':>3} "
            f"{s.wall_time_s * 1000:>10.2f} {s.cache_hits:>6} "
            f"{s.cache_misses:>6} {s.ilp_nodes:>10}"
        )
    return "\n".join(lines)


def stall_attribution(
    stall_breakdown: Mapping[str, Mapping[str, int]],
    channel_peers: Mapping[str, tuple[str, str]] | None = None,
    limit: int = 10,
) -> list[tuple[str, str, str, int]]:
    """Rank (process, channel, waiting-on, cycles) stall rows, worst first.

    ``channel_peers`` maps channel name to ``(producer, consumer)``; the
    waiting-on column is the channel's *other* endpoint, or ``?`` when
    the topology is not provided.
    """
    rows: list[tuple[str, str, str, int]] = []
    for process, by_channel in stall_breakdown.items():
        for channel, cycles in by_channel.items():
            peer = "?"
            if channel_peers and channel in channel_peers:
                producer, consumer = channel_peers[channel]
                peer = consumer if process == producer else producer
            rows.append((process, channel, peer, cycles))
    rows.sort(key=lambda r: (-r[3], r[0], r[1]))
    return rows[:limit]
