"""A lightweight counter/timer/histogram registry.

The instrumentation substrate of the observability layer: the simulator,
the DSE explorer, the analysis cache, the ILP solver, and Algorithm 1 all
report through one :class:`MetricsRegistry` when a caller attaches one
(and cost nothing when none is attached — every call site is guarded by a
``metrics is not None`` check).

Metric *names* are a stable contract — dashboards, tests, and the
``ermes profile`` output key on them.  The catalog lives in
``docs/OBSERVABILITY.md``; add new names there when instrumenting new
code.  Names are dotted lowercase paths (``dse.ilp.nodes``,
``cache.results.hits``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from types import TracebackType
from typing import Iterator, Mapping


@dataclass
class Counter:
    """A monotonically increasing integer."""

    name: str
    value: int = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Timer:
    """Accumulated wall-clock time over any number of timed sections.

    Use as a context manager::

        with registry.timer("dse.analyze"):
            ...
    """

    name: str
    total_s: float = 0.0
    count: int = 0
    _started: float | None = field(default=None, repr=False)

    def observe(self, seconds: float) -> None:
        self.total_s += seconds
        self.count += 1

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        if self._started is not None:
            self.observe(time.perf_counter() - self._started)
            self._started = None

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


@dataclass
class Histogram:
    """A set of numeric observations with summary statistics.

    Keeps every observation (callers observe per-iteration quantities, so
    cardinality is bounded by run length); summaries are computed lazily.
    """

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def max(self) -> float:
        return max(self.values) if self.values else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (nearest-rank), 0 when empty."""
        if not self.values:
            return 0.0
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        ordered = sorted(self.values)
        rank = max(0, min(len(ordered) - 1,
                          round(p / 100 * (len(ordered) - 1))))
        return ordered[rank]


class MetricsRegistry:
    """Creates-or-returns named counters, timers, and histograms.

    One registry spans one observed activity (a profile run, a service
    lifetime); pass the same instance to every layer that should report
    into it.  ``snapshot()`` produces a JSON-friendly dict, and
    :func:`format_metrics` a fixed-width table.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._timers: dict[str, Timer] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        try:
            return self._counters[name]
        except KeyError:
            made = self._counters[name] = Counter(name)
            return made

    def timer(self, name: str) -> Timer:
        try:
            return self._timers[name]
        except KeyError:
            made = self._timers[name] = Timer(name)
            return made

    def histogram(self, name: str) -> Histogram:
        try:
            return self._histograms[name]
        except KeyError:
            made = self._histograms[name] = Histogram(name)
            return made

    # ------------------------------------------------------------------

    def counters(self) -> Iterator[Counter]:
        for name in sorted(self._counters):
            yield self._counters[name]

    def timers(self) -> Iterator[Timer]:
        for name in sorted(self._timers):
            yield self._timers[name]

    def histograms(self) -> Iterator[Histogram]:
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def merge_cache_stats(
        self, stats: Mapping[str, Mapping[str, int | float]],
        prefix: str = "cache",
    ) -> None:
        """Absorb :meth:`repro.perf.PerformanceEngine.stats_dict` counters
        under the stable ``cache.<name>.<counter>`` names (hit_rate, a
        derived ratio, is skipped — recompute it from hits/misses)."""
        for cache_name, entries in stats.items():
            for key, value in entries.items():
                if key == "hit_rate":
                    continue
                counter = self.counter(f"{prefix}.{cache_name}.{key}")
                counter.value = int(value)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """JSON-friendly view of everything recorded so far."""
        return {
            "counters": {c.name: c.value for c in self.counters()},
            "timers": {
                t.name: {
                    "total_s": round(t.total_s, 6),
                    "count": t.count,
                    "mean_s": round(t.mean_s, 6),
                }
                for t in self.timers()
            },
            "histograms": {
                h.name: {
                    "count": h.count,
                    "total": h.total,
                    "mean": round(h.mean, 6),
                    "min": h.min,
                    "max": h.max,
                    "p50": h.percentile(50),
                    "p95": h.percentile(95),
                }
                for h in self.histograms()
            },
        }


def format_metrics(registry: MetricsRegistry) -> str:
    """Fixed-width rendering of a registry (the ``ermes profile`` table)."""
    lines: list[str] = []
    timers = list(registry.timers())
    if timers:
        lines.append(f"{'timer':<32} {'total (s)':>12} {'calls':>8} "
                     f"{'mean (ms)':>12}")
        for t in timers:
            lines.append(f"{t.name:<32} {t.total_s:>12.4f} {t.count:>8} "
                         f"{t.mean_s * 1000:>12.3f}")
    counters = list(registry.counters())
    if counters:
        if lines:
            lines.append("")
        lines.append(f"{'counter':<32} {'value':>12}")
        for c in counters:
            lines.append(f"{c.name:<32} {c.value:>12}")
    histograms = list(registry.histograms())
    if histograms:
        if lines:
            lines.append("")
        lines.append(f"{'histogram':<32} {'count':>8} {'mean':>12} "
                     f"{'p95':>12} {'max':>12}")
        for h in histograms:
            lines.append(f"{h.name:<32} {h.count:>8} {h.mean:>12.2f} "
                         f"{h.percentile(95):>12.2f} {h.max:>12.2f}")
    return "\n".join(lines)
