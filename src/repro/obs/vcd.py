"""VCD waveform export: view simulator traces like RTL waveforms.

Renders a stream of :class:`~repro.sim.trace.TraceEvent` as a Value
Change Dump (IEEE 1364) that GTKWave & friends load directly — the
closest this reproduction gets to the RTL simulation the synthesized
system would undergo:

* per process: ``compute`` (high during computation) and ``stalled``
  (high while the process waits on a channel) 1-bit signals;
* per channel: ``occupancy`` (token count, 16-bit vector) plus ``full``
  and ``empty`` flags (``full`` needs the topology to know capacities).

One simulated cycle maps to one VCD time unit (``$timescale 1 ns``).
Timestamps are emitted strictly increasing, as the format requires.
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping

from repro.core.system import SystemGraph
from repro.sim.trace import TraceEvent

_OCC_WIDTH = 16


def _id_codes() -> Iterable[str]:
    """The VCD identifier-code sequence: ``!``, ``"`` … then two chars."""
    alphabet = [chr(c) for c in range(33, 127)]
    for code in alphabet:
        yield code
    for first in alphabet:
        for second in alphabet:
            yield first + second


def _merge_intervals(
    intervals: list[tuple[int, int]]
) -> list[tuple[int, int]]:
    """Merge overlapping/adjacent half-open ``[start, end)`` intervals."""
    merged: list[tuple[int, int]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


def to_vcd(
    events: Iterable[TraceEvent],
    system: SystemGraph | None = None,
    name: str = "ermes",
) -> str:
    """Render the events as a VCD document (a string).

    Args:
        events: Simulator events (any order; sorted internally).
        system: Optional topology; seeds channel occupancy with
            ``initial_tokens`` and enables the ``full`` flag (capacity is
            not recoverable from events alone).
        name: Top-level ``$scope`` module name.
    """
    ordered = sorted(events, key=lambda e: (e.time, e.kind, e.process))

    processes: list[str] = []
    channels: list[str] = []
    seen: set[str] = set()
    if system is not None:
        processes.extend(system.process_names)
        channels.extend(c.name for c in system.channels)
        seen.update(processes)
        seen.update(channels)
    for event in ordered:
        if event.process not in seen:
            seen.add(event.process)
            processes.append(event.process)
        if event.channel is not None and event.channel not in seen:
            seen.add(event.channel)
            channels.append(event.channel)

    codes = _id_codes()
    compute_id = {p: next(codes) for p in processes}
    stalled_id = {p: next(codes) for p in processes}
    occ_id = {c: next(codes) for c in channels}
    full_id = {c: next(codes) for c in channels}
    empty_id = {c: next(codes) for c in channels}

    # ---------------------------------------------------------- intervals
    compute_iv: dict[str, list[tuple[int, int]]] = {p: [] for p in processes}
    stall_iv: dict[str, list[tuple[int, int]]] = {p: [] for p in processes}
    #: channel -> [(time, delta)]
    occ_deltas: dict[str, list[tuple[int, int]]] = {c: [] for c in channels}
    for event in ordered:
        if event.kind == "compute":
            compute_iv[event.process].append(
                (event.time - event.duration, event.time)
            )
            continue
        if event.kind in ("put", "get") and event.channel is not None:
            if event.wait > 0:
                stall_iv[event.process].append(
                    (event.time - event.wait, event.time)
                )
            delta = 1 if event.kind == "put" else -1
            occ_deltas[event.channel].append((event.time, delta))

    #: time -> list of change strings, in deterministic signal order.
    changes: dict[int, list[str]] = {}

    def scalar(time: int, code: str, value: int) -> None:
        changes.setdefault(time, []).append(f"{value}{code}")

    def vector(time: int, code: str, value: int) -> None:
        changes.setdefault(time, []).append(f"b{value:b} {code}")

    initial: list[str] = []
    for proc in processes:
        initial.append(f"0{compute_id[proc]}")
        initial.append(f"0{stalled_id[proc]}")
        for iv, code in ((compute_iv, compute_id), (stall_iv, stalled_id)):
            for start, end in _merge_intervals(iv[proc]):
                scalar(start, code[proc], 1)
                scalar(end, code[proc], 0)

    initial_tokens: Mapping[str, int] = (
        {c.name: c.initial_tokens for c in system.channels}
        if system is not None else {}
    )
    capacities: Mapping[str, int] = (
        {c.name: c.effective_capacity for c in system.channels}
        if system is not None else {}
    )
    for channel in channels:
        tokens = initial_tokens.get(channel, 0)
        capacity = capacities.get(channel, 0)
        initial.append(f"b{tokens:b} {occ_id[channel]}")
        initial.append(f"{int(capacity > 0 and tokens >= capacity)}"
                       f"{full_id[channel]}")
        initial.append(f"{int(tokens == 0)}{empty_id[channel]}")
        # Coalesce same-cycle deltas (a rendezvous put+get) into one
        # sample so occupancy never glitches through the pair.
        per_time: dict[int, int] = {}
        for time, delta in occ_deltas[channel]:
            per_time[time] = per_time.get(time, 0) + delta
        was_full = capacity > 0 and tokens >= capacity
        was_empty = tokens == 0
        for time in sorted(per_time):
            if per_time[time] == 0:
                continue
            tokens = max(0, tokens + per_time[time])
            vector(time, occ_id[channel], tokens)
            is_full = capacity > 0 and tokens >= capacity
            is_empty = tokens == 0
            if is_full != was_full:
                scalar(time, full_id[channel], int(is_full))
                was_full = is_full
            if is_empty != was_empty:
                scalar(time, empty_id[channel], int(is_empty))
                was_empty = is_empty

    # ------------------------------------------------------------- header
    out = io.StringIO()
    out.write("$version ermes trace (DAC14 reproduction) $end\n")
    out.write("$timescale 1 ns $end\n")
    out.write(f"$scope module {_escape(name)} $end\n")
    for proc in processes:
        out.write(f"$scope module {_escape(proc)} $end\n")
        out.write(f"$var wire 1 {compute_id[proc]} compute $end\n")
        out.write(f"$var wire 1 {stalled_id[proc]} stalled $end\n")
        out.write("$upscope $end\n")
    if channels:
        out.write("$scope module channels $end\n")
        for channel in channels:
            esc = _escape(channel)
            out.write(f"$var wire {_OCC_WIDTH} {occ_id[channel]} "
                      f"{esc}_occupancy $end\n")
            out.write(f"$var wire 1 {full_id[channel]} {esc}_full $end\n")
            out.write(f"$var wire 1 {empty_id[channel]} {esc}_empty $end\n")
        out.write("$upscope $end\n")
    out.write("$upscope $end\n")
    out.write("$enddefinitions $end\n")

    out.write("$dumpvars\n")
    for line in initial:
        out.write(line + "\n")
    out.write("$end\n")

    for time in sorted(changes):
        if time < 0:
            continue
        out.write(f"#{time}\n")
        for line in changes[time]:
            out.write(line + "\n")
    return out.getvalue()


def _escape(identifier: str) -> str:
    """VCD identifiers cannot contain whitespace; spaces become ``_``."""
    return "_".join(identifier.split()) or "_"
