"""Observability: structured tracing, metrics, and DSE profiling.

The paper's whole argument is that *communication behaviour* — blocking
``put``/``get`` stalls, backpressure, critical cycles — determines system
performance; this package makes that behaviour observable instead of
summarized:

* **Tracing** — :mod:`repro.obs.sinks` provides the pluggable sink API
  the simulator streams :class:`~repro.sim.trace.TraceEvent` records
  into (in-memory, JSONL streaming, bounded ring buffer), and
  :mod:`repro.obs.perfetto` / :mod:`repro.obs.vcd` export collected
  traces to Chrome trace-event JSON (Perfetto) and VCD waveforms.
* **Metrics** — :mod:`repro.obs.metrics` is the counter/timer/histogram
  registry threaded through the simulator, the DSE explorer, the
  analysis cache, the ILP solver, and Algorithm 1; metric names are a
  documented contract (``docs/OBSERVABILITY.md``).
* **Profiling** — :mod:`repro.obs.profile` snapshots every DSE iteration
  (action, cost, cache behaviour, ILP effort) so a run replays as a
  convergence timeline; backs ``ermes profile``.

Everything here is pay-for-what-you-use: with no sink attached and no
registry passed, the instrumented code paths cost one predicate check
(guarded by ``benchmarks/test_bench_obs_overhead.py``).
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    format_metrics,
)
from repro.obs.perfetto import render_chrome_trace, to_chrome_trace
from repro.obs.profile import (
    DseProfiler,
    IterationSnapshot,
    format_convergence,
    stall_attribution,
)
from repro.obs.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    RingBufferSink,
    event_to_dict,
)
from repro.obs.vcd import to_vcd

__all__ = [
    "Counter",
    "DseProfiler",
    "Histogram",
    "IterationSnapshot",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullSink",
    "RingBufferSink",
    "Timer",
    "event_to_dict",
    "format_convergence",
    "format_metrics",
    "render_chrome_trace",
    "stall_attribution",
    "to_chrome_trace",
    "to_vcd",
]
