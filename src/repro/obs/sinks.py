"""Trace sinks: where a stream of simulator events goes.

A *sink* is any object with ``emit(event)`` / ``close()`` (the
:class:`repro.sim.trace.TraceSink` protocol).  The simulator calls
``emit`` once per event, in emission order; ``close`` flushes and releases
whatever the sink holds.  Stock sinks:

* :class:`MemorySink` — keep everything (the exporters' input).
* :class:`RingBufferSink` — keep the *last* ``capacity`` events (flight
  recorder for long runs: bounded memory, crash forensics).
* :class:`JsonlSink` — stream each event as one JSON line to a file
  object or path (the ``jsonl`` format of ``ermes trace``).
* :class:`NullSink` — accept and discard (overhead testing).

All sinks are synchronous and single-threaded, like the simulator.
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Deque

from repro.sim.trace import TraceEvent

#: The JSONL field order is part of the documented schema
#: (docs/OBSERVABILITY.md); keep it stable.
_FIELDS = ("time", "kind", "process", "channel", "iteration", "duration",
           "wait")


def event_to_dict(event: TraceEvent) -> dict[str, object]:
    """The documented JSON shape of one event (stable key set)."""
    return {name: getattr(event, name) for name in _FIELDS}


class MemorySink:
    """Collects every event in memory.

    ``events()`` returns them time-sorted (ties broken by process name),
    the order every exporter expects.
    """

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self._events.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(sorted(self._events, key=lambda e: (e.time, e.process)))


class RingBufferSink:
    """Keeps only the most recent ``capacity`` events (a flight recorder).

    Memory stays bounded no matter how long the run; ``dropped`` counts
    the events that scrolled out.
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be >= 1")
        self.capacity = capacity
        self.dropped = 0
        self._buffer: Deque[TraceEvent] = deque(maxlen=capacity)

    def emit(self, event: TraceEvent) -> None:
        if len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)

    def close(self) -> None:
        pass

    def __len__(self) -> int:
        return len(self._buffer)

    def events(self) -> tuple[TraceEvent, ...]:
        return tuple(sorted(self._buffer, key=lambda e: (e.time, e.process)))


class JsonlSink:
    """Streams one JSON object per event to ``stream`` (or a new file at
    ``path``) as the simulation runs — nothing buffered beyond the line
    being written, so arbitrarily long runs stream in constant memory.
    """

    def __init__(self, stream: IO[str] | None = None,
                 path: str | None = None):
        if (stream is None) == (path is None):
            raise ValueError("pass exactly one of stream= or path=")
        self._owns_stream = path is not None
        self._stream: IO[str] = (
            open(path, "w", encoding="utf-8") if path is not None
            else stream  # type: ignore[assignment]
        )
        self.count = 0

    def emit(self, event: TraceEvent) -> None:
        json.dump(event_to_dict(event), self._stream, separators=(",", ":"))
        self._stream.write("\n")
        self.count += 1

    def close(self) -> None:
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class NullSink:
    """Accepts and discards every event.

    Exists so the zero-overhead contract is testable: simulation results
    must be bit-identical with a :class:`NullSink` attached and with no
    sink at all (``tests/obs/test_zero_overhead.py``).
    """

    def emit(self, event: TraceEvent) -> None:
        pass

    def close(self) -> None:
        pass
