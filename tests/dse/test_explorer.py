"""The ERMES exploration loop (Fig. 5) on controlled systems."""

import pytest

from repro.core import ChannelOrdering
from repro.dse import (
    Explorer,
    SystemConfiguration,
    explore,
    iteration_table,
    summarize,
)
from repro.dse.report import series, to_csv
from repro.hls import Implementation, ImplementationLibrary, ParetoSet


@pytest.fixture()
def library(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    return ImplementationLibrary(sets)


@pytest.fixture()
def slow_config(motivating, library):
    return SystemConfiguration.initial(
        motivating,
        library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )


class TestTimingRun:
    def test_reaches_target(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert result.final_record.meets_target
        assert result.final_record.cycle_time <= 30

    def test_history_starts_with_start(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert result.history[0].action == "start"
        assert result.history[0].iteration == 0

    def test_first_action_is_timing(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert result.history[1].action == "timing_optimization"

    def test_speedup_property(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert result.speedup > 1.0

    def test_final_config_consistent_with_record(self, slow_config):
        from repro.model import analyze_system

        result = explore(slow_config, target_cycle_time=20)
        config = result.final
        perf = analyze_system(
            config.system, config.ordering,
            process_latencies=config.process_latencies(),
        )
        assert perf.cycle_time == result.final_record.cycle_time
        assert config.total_area() == result.final_record.area

    def test_unreachable_target_still_terminates(self, slow_config):
        result = explore(slow_config, target_cycle_time=1)
        assert result.stop_reason
        assert not result.final_record.meets_target


class TestAreaRun:
    def test_area_recovery_from_fast_start(self, motivating, library):
        config = SystemConfiguration.initial(
            motivating,
            library,
            ordering=ChannelOrdering.declaration_order(motivating),
            pick="fastest",
        )
        result = explore(config, target_cycle_time=200)
        assert result.history[1].action == "area_recovery"
        assert result.final_record.area < result.initial_record.area
        assert result.final_record.meets_target

    def test_area_change_negative(self, motivating, library):
        config = SystemConfiguration.initial(motivating, library,
                                             pick="fastest")
        result = explore(config, target_cycle_time=500)
        assert result.area_change < 0


class TestLoopMechanics:
    def test_iteration_limit_respected(self, slow_config):
        result = Explorer(target_cycle_time=20, max_iterations=1).run(
            slow_config
        )
        assert len(result.history) <= 2

    def test_reorder_disabled(self, slow_config):
        result = Explorer(target_cycle_time=20, reorder=False).run(slow_config)
        for record in result.history:
            assert record.reordered_processes == ()

    def test_visited_configurations_not_cycled(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        keys = [
            tuple(sorted(record.selection_changes))
            for record in result.history[1:]
            if record.selection_changes
        ]
        # the explorer never replays the exact same change set twice in a
        # row (would indicate an undetected cycle)
        for first, second in zip(keys, keys[1:]):
            assert first != second or first == ()

    def test_incumbent_is_best_feasible(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        feasible = [r for r in result.history if r.meets_target]
        assert feasible
        best_area = min(r.area for r in feasible)
        assert result.final_record.area == best_area


def _record(iteration, cycle_time, area=10.0):
    from repro.dse.explorer import IterationRecord

    return IterationRecord(
        iteration=iteration,
        action="start" if iteration == 0 else "timing_optimization",
        cycle_time=cycle_time,
        area=area,
        slack=0,
        meets_target=True,
        critical_processes=(),
        selection_changes=(),
        reordered_processes=(),
    )


class TestDegenerateMetrics:
    """Zero cycle times and zero areas must not crash the summary
    properties (regression: ZeroDivisionError on degenerate systems)."""

    def test_speedup_with_zero_final_ct(self):
        from repro.dse.explorer import ExplorationResult

        result = ExplorationResult(
            target_cycle_time=10,
            history=[_record(0, 8), _record(1, 0)],
            final_index=1,
        )
        assert result.speedup == float("inf")

    def test_speedup_with_both_cts_zero(self):
        from repro.dse.explorer import ExplorationResult

        result = ExplorationResult(
            target_cycle_time=10,
            history=[_record(0, 0), _record(1, 0)],
            final_index=1,
        )
        assert result.speedup == 1.0

    def test_area_change_with_zero_initial_area(self):
        from repro.dse.explorer import ExplorationResult

        result = ExplorationResult(
            target_cycle_time=10,
            history=[_record(0, 8, area=0.0), _record(1, 4, area=0.0)],
            final_index=1,
        )
        assert result.area_change == 0.0


class TestCacheStats:
    def test_result_carries_cache_stats(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert result.cache_stats is not None
        assert set(result.cache_stats) == {"results", "structures"}
        lookups = (result.cache_stats["results"]["hits"]
                   + result.cache_stats["results"]["misses"])
        # One analysis per record, except the converged "none" record,
        # which reuses the previous iteration's performance.
        analyzed = [r for r in result.history if r.action != "none"]
        assert lookups == len(analyzed)

    def test_shared_engine_stays_warm_across_runs(self, slow_config):
        from repro.perf import PerformanceEngine

        engine = PerformanceEngine()
        first = Explorer(target_cycle_time=20, perf_engine=engine).run(
            slow_config
        )
        second = Explorer(target_cycle_time=20, perf_engine=engine).run(
            slow_config
        )
        assert second.history == first.history
        # The replayed run is served entirely from the result cache.
        analyzed = [r for r in second.history if r.action != "none"]
        assert engine.results.stats.hits == len(analyzed)


class TestReporting:
    def test_iteration_table_renders(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        table = iteration_table(result)
        assert "timing_optimization" in table
        assert "stop:" in table

    def test_series_shape(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        data = series(result, cycle_time_unit=1.0)
        assert data[0]["iteration"] == 0
        assert {"cycle_time", "area", "action", "meets_target"} <= set(data[0])

    def test_csv_export(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        csv = to_csv(result.history)
        assert csv.splitlines()[0].startswith("iteration,action")
        assert len(csv.splitlines()) == len(result.history) + 1

    def test_summarize_mentions_speedup(self, slow_config):
        result = explore(slow_config, target_cycle_time=20)
        assert "speed-up" in summarize(result)
