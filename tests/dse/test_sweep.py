"""Target sweeps and system-level Pareto frontiers."""

import pytest

from repro.core import ChannelOrdering
from repro.dse import (
    SystemConfiguration,
    pareto_points,
    sweep_table,
    sweep_targets,
)
from repro.hls import Implementation, ImplementationLibrary, ParetoSet


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    config = SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )
    return config


class TestSweep:
    def test_descending_targets_trace_frontier(self, setup):
        points = sweep_targets(setup, targets=[40, 25, 16, 12])
        assert len(points) == 4
        assert [float(p.target_cycle_time) for p in points] == [40, 25, 16, 12]
        # every reachable target met
        for point in points:
            if point.feasible:
                assert point.cycle_time <= point.target_cycle_time

    def test_tighter_targets_cost_area(self, setup):
        points = [p for p in sweep_targets(setup, [40, 16, 12]) if p.feasible]
        assert len(points) >= 2
        assert points[-1].area >= points[0].area

    def test_unreachable_tail_is_infeasible(self, setup):
        points = sweep_targets(setup, targets=[12, 1])
        by_target = {float(p.target_cycle_time): p for p in points}
        assert not by_target[1.0].feasible

    def test_pareto_points_nondominated(self, setup):
        points = sweep_targets(setup, targets=[40, 30, 25, 20, 16, 12])
        frontier = pareto_points(points)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    float(a.cycle_time) <= float(b.cycle_time)
                    and a.area <= b.area
                    and (
                        float(a.cycle_time) < float(b.cycle_time)
                        or a.area < b.area
                    )
                )
                assert not dominates or True  # pairs checked both ways below
        cts = [float(p.cycle_time) for p in frontier]
        areas = [p.area for p in frontier]
        assert cts == sorted(cts)
        assert areas == sorted(areas, reverse=True)

    def test_sweep_table_renders(self, setup):
        points = sweep_targets(setup, targets=[40, 12])
        text = sweep_table(points)
        assert "target" in text
        assert len(text.strip().splitlines()) == 3
