"""Target sweeps and system-level Pareto frontiers."""

from fractions import Fraction

import pytest

from repro.core import ChannelOrdering
from repro.dse import (
    ExplorationResult,
    SystemConfiguration,
    pareto_points,
    sweep_table,
    sweep_targets,
)
from repro.dse.sweep import SweepPoint
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.sim import Simulator


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    config = SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )
    return config


class TestSweep:
    def test_descending_targets_trace_frontier(self, setup):
        points = sweep_targets(setup, targets=[40, 25, 16, 12])
        assert len(points) == 4
        assert [float(p.target_cycle_time) for p in points] == [40, 25, 16, 12]
        # every reachable target met
        for point in points:
            if point.feasible:
                assert point.cycle_time <= point.target_cycle_time

    def test_tighter_targets_cost_area(self, setup):
        points = [p for p in sweep_targets(setup, [40, 16, 12]) if p.feasible]
        assert len(points) >= 2
        assert points[-1].area >= points[0].area

    def test_unreachable_tail_is_infeasible(self, setup):
        points = sweep_targets(setup, targets=[12, 1])
        by_target = {float(p.target_cycle_time): p for p in points}
        assert not by_target[1.0].feasible

    def test_pareto_points_nondominated(self, setup):
        points = sweep_targets(setup, targets=[40, 30, 25, 20, 16, 12])
        frontier = pareto_points(points)
        assert frontier
        for a in frontier:
            for b in frontier:
                if a is b:
                    continue
                dominates = (
                    float(a.cycle_time) <= float(b.cycle_time)
                    and a.area <= b.area
                    and (
                        float(a.cycle_time) < float(b.cycle_time)
                        or a.area < b.area
                    )
                )
                assert not dominates or True  # pairs checked both ways below
        cts = [float(p.cycle_time) for p in frontier]
        areas = [p.area for p in frontier]
        assert cts == sorted(cts)
        assert areas == sorted(areas, reverse=True)

    def test_sweep_table_renders(self, setup):
        points = sweep_targets(setup, targets=[40, 12])
        text = sweep_table(points)
        assert "target" in text
        assert len(text.strip().splitlines()) == 3


class TestWarmStart:
    """``sweep_targets`` chains explorations: each target starts from the
    previous target's final configuration, with one shared analysis
    engine keeping its caches warm across the whole sweep."""

    def test_each_target_starts_from_previous_final(self, setup,
                                                    monkeypatch):
        import repro.dse.sweep as sweep_module

        calls = []

        class Recording(sweep_module.Explorer):
            def run(self, config):
                calls.append(config)
                return super().run(config)

        monkeypatch.setattr(sweep_module, "Explorer", Recording)
        points = sweep_targets(setup, targets=[40, 16, 12])
        assert len(calls) == 3
        assert calls[0] is setup
        for i in range(1, len(points)):
            assert calls[i] is points[i - 1].result.final

    def test_iterations_accounting(self, setup):
        points = sweep_targets(setup, targets=[40, 16, 12])
        for point in points:
            assert point.iterations == len(point.result.history) - 1

    def test_shared_engine_cache_hits_strictly_increase(self, setup):
        points = sweep_targets(setup, targets=[40, 25, 16, 12])
        totals = [
            sum(stats["hits"] for stats in point.result.cache_stats.values())
            for point in points
        ]
        # cache_stats snapshots are cumulative over the shared engine:
        # each later target must have *used* the warm cache, not merely
        # carried the previous count forward.
        for earlier, later in zip(totals, totals[1:]):
            assert later > earlier


def _point(cycle_time, area, feasible=True):
    return SweepPoint(
        target_cycle_time=cycle_time,
        cycle_time=cycle_time,
        area=area,
        feasible=feasible,
        iterations=0,
        result=ExplorationResult(target_cycle_time=cycle_time),
    )


class TestParetoExactness:
    def test_distinct_fractions_colliding_in_float_both_kept(self):
        """Regression: cycle times that collide in double precision are
        still distinct frontier points.

        ``float()`` rounds both of these to the same double, so the old
        float-based sort/dedupe dropped whichever genuine point sorted
        second."""
        slow = Fraction(10**17 + 1)
        fast = Fraction(10**17)
        assert slow != fast and float(slow) == float(fast)
        # The faster point costs more area: neither dominates the other.
        cheap_slow = _point(slow, area=3.0)
        costly_fast = _point(fast, area=5.0)
        frontier = pareto_points([cheap_slow, costly_fast])
        assert frontier == [costly_fast, cheap_slow]

    def test_exactly_equal_cycle_times_keep_smallest_area(self):
        ct = Fraction(22, 7)
        frontier = pareto_points([_point(ct, 9.0), _point(ct, 4.0)])
        assert frontier == [_point(ct, 4.0)]

    def test_dominated_point_dropped(self):
        good = _point(Fraction(10), 5.0)
        dominated = _point(Fraction(11), 6.0)
        assert pareto_points([dominated, good]) == [good]

    def test_infeasible_points_excluded(self):
        assert pareto_points([_point(Fraction(10), 5.0, feasible=False)]) == []


class TestSweepBatch:
    def test_off_by_default(self, setup):
        points = sweep_targets(setup, targets=[40, 12])
        assert all(p.measured_cycle_time is None for p in points)

    def test_batch_attaches_scalar_identical_measurements(self, setup):
        iterations = 24
        points = sweep_targets(
            setup, targets=[40, 16, 12],
            batch=True, batch_iterations=iterations,
        )
        watch = setup.system.sinks()[0].name
        for point in points:
            config = point.result.final
            scalar = Simulator(
                config.system,
                config.ordering,
                process_latencies=config.process_latencies(),
            ).run(iterations=iterations)
            assert point.measured_cycle_time == (
                scalar.measured_cycle_time(watch)
            )

    def test_batch_does_not_change_outcomes(self, setup):
        baseline = sweep_targets(setup, targets=[40, 16], batch=False)
        batched = sweep_targets(setup, targets=[40, 16], batch=True)
        assert [p.cycle_time for p in baseline] == [
            p.cycle_time for p in batched
        ]
        assert [p.area for p in baseline] == [p.area for p in batched]
        assert [p.feasible for p in baseline] == [
            p.feasible for p in batched
        ]

    def test_env_knob(self, setup, monkeypatch):
        monkeypatch.setenv("ERMES_SIM_BATCH", "true")
        points = sweep_targets(setup, targets=[40])
        assert points[0].measured_cycle_time is not None
