"""Batched simulation cross-validation of the exploration trajectory.

The ``batch`` knob (and ``ERMES_SIM_BATCH``) must only *add* measured
cycle times — the analytic trajectory, final configuration, and every
history record stay untouched — and the measurements must equal what the
scalar engine reports for each visited configuration individually.
"""

import pytest

from repro.core import ChannelOrdering
from repro.dse import Explorer, SystemConfiguration
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.sim import Simulator


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    return SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )


class TestExplorerBatch:
    def test_off_by_default(self, setup):
        result = Explorer(target_cycle_time=40).run(setup)
        assert result.measured_cycle_times is None

    def test_trajectory_identical_with_and_without_batch(self, setup):
        baseline = Explorer(target_cycle_time=40, batch=False).run(setup)
        batched = Explorer(target_cycle_time=40, batch=True).run(setup)
        assert batched.history == baseline.history
        assert batched.final_index == baseline.final_index
        assert batched.stop_reason == baseline.stop_reason
        assert batched.final.selection == baseline.final.selection

    def test_every_history_index_measured(self, setup):
        result = Explorer(target_cycle_time=40, batch=True).run(setup)
        assert result.measured_cycle_times is not None
        assert set(result.measured_cycle_times) == set(
            range(len(result.history))
        )

    def test_measurements_match_scalar_engine(self, setup):
        iterations = 24
        explorer = Explorer(
            target_cycle_time=40, batch=True, batch_iterations=iterations
        )
        result = explorer.run(setup)
        # Rebuild the visited configurations from history and check each
        # measured value against an individual scalar run.
        config = setup
        watch = setup.system.sinks()[0].name
        for index, record in enumerate(result.history):
            config = config.with_selection(dict(record.selection_changes))
            if record.reordered_processes:
                # The ordering changed here and persists downstream; the
                # rebuild above cannot follow it.  The differential suite
                # in tests/sim covers ordering variety.
                break
            scalar = Simulator(
                config.system,
                config.ordering,
                process_latencies=config.process_latencies(),
            ).run(iterations=iterations)
            assert result.measured_cycle_times[index] == (
                scalar.measured_cycle_time(watch)
            )

    def test_env_knob_enables_batch(self, setup, monkeypatch):
        monkeypatch.setenv("ERMES_SIM_BATCH", "1")
        result = Explorer(target_cycle_time=40).run(setup)
        assert result.measured_cycle_times is not None
        monkeypatch.setenv("ERMES_SIM_BATCH", "0")
        result = Explorer(target_cycle_time=40).run(setup)
        assert result.measured_cycle_times is None

    def test_explicit_batch_beats_env(self, setup, monkeypatch):
        monkeypatch.setenv("ERMES_SIM_BATCH", "1")
        result = Explorer(target_cycle_time=40, batch=False).run(setup)
        assert result.measured_cycle_times is None
