"""Design configurations and the Section 5 ILP formulations."""

import pytest

from repro.core import ChannelOrdering
from repro.dse import (
    LATENCY_BUDGET,
    SystemConfiguration,
    area_recovery_problem,
    timing_optimization_problem,
)
from repro.dse.problems import AREA_BUDGET, process_latency_caps
from repro.errors import ConfigurationError
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.ilp import branch_bound


@pytest.fixture()
def library(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    return ImplementationLibrary(sets)


@pytest.fixture()
def config(motivating, library):
    return SystemConfiguration.initial(
        motivating, library, ordering=ChannelOrdering.declaration_order(motivating)
    )


class TestSystemConfiguration:
    def test_initial_fastest(self, config, motivating):
        for process in motivating.workers():
            assert config.selection[process.name].endswith(".fast")
        assert config.process_latencies()["P2"] == 5

    def test_initial_smallest(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        assert cfg.process_latencies()["P2"] == 20
        assert cfg.total_area() == 50.0

    def test_invalid_pick_rejected(self, motivating, library):
        with pytest.raises(ConfigurationError):
            SystemConfiguration.initial(motivating, library, pick="median")

    def test_testbench_latency_from_system(self, config):
        assert config.process_latencies()["Psrc"] == 1

    def test_total_area(self, config):
        assert config.total_area() == 5 * 26.0

    def test_with_selection_immutable(self, config):
        updated = config.with_selection({"P2": "P2.small"})
        assert updated.selection["P2"] == "P2.small"
        assert config.selection["P2"] == "P2.fast"

    def test_missing_selection_rejected(self, motivating, library):
        with pytest.raises(ConfigurationError):
            SystemConfiguration(
                motivating, library, {"P2": "P2.fast"},
                ChannelOrdering.declaration_order(motivating),
            )

    def test_unknown_implementation_rejected(self, motivating, library, config):
        with pytest.raises(ConfigurationError):
            config.with_selection({"P2": "P2.warp"})

    def test_selection_key_stable(self, config):
        assert config.selection_key() == tuple(sorted(config.selection.items()))


class TestAreaRecovery:
    def test_shrinks_noncritical_freely(self, config):
        problem = area_recovery_problem(config, critical_processes=["P2"],
                                        slack=0.0)
        solution = branch_bound.solve(problem)
        # With zero slack P2 must keep its fast point; everyone else drops
        # to the smallest implementation.
        assert solution.selection["P2"] == "P2.fast"
        for process in ("P3", "P4", "P5", "P6"):
            assert solution.selection[process].endswith(".small")

    def test_slack_lets_critical_slow_down(self, config):
        # P2.mid costs 5 extra cycles; slack 5 admits it.
        problem = area_recovery_problem(config, ["P2"], slack=5.0)
        solution = branch_bound.solve(problem)
        assert solution.selection["P2"] == "P2.mid"

    def test_big_slack_smallest_everywhere(self, config):
        problem = area_recovery_problem(config, ["P2"], slack=1000.0)
        solution = branch_bound.solve(problem)
        assert all(name.endswith(".small") for name in solution.selection.values())

    def test_latency_budget_constraint_present(self, config):
        problem = area_recovery_problem(config, ["P2"], slack=3.0)
        (constraint,) = problem.constraints
        assert constraint.name == LATENCY_BUDGET
        assert constraint.rhs == 3.0

    def test_latency_caps_filter_choices(self, config):
        caps = {"P3": 2}  # only the fast point (latency 2) fits
        problem = area_recovery_problem(config, ["P2"], slack=0.0,
                                        latency_caps=caps)
        group = problem.group("P3")
        assert {c.name for c in group.choices} == {"P3.fast"}

    def test_caps_always_keep_current(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        problem = area_recovery_problem(cfg, [], slack=0.0,
                                        latency_caps={"P3": 1})
        group = problem.group("P3")
        assert "P3.small" in {c.name for c in group.choices}


class TestTimingOptimization:
    def test_without_budget_only_critical_groups(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        problem = timing_optimization_problem(cfg, ["P2", "P6"])
        assert {g.name for g in problem.groups} == {"P2", "P6"}
        solution = branch_bound.solve(problem)
        assert solution.selection["P2"] == "P2.fast"
        assert solution.selection["P6"] == "P6.fast"

    def test_objective_is_latency_gain(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        problem = timing_optimization_problem(cfg, ["P2"])
        solution = branch_bound.solve(problem)
        # P2: 20 -> 5 gives gain 15
        assert solution.objective == pytest.approx(15.0)

    def test_area_budget_activates_dual_form(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        problem = timing_optimization_problem(cfg, ["P2"], area_budget=10.0)
        assert {g.name for g in problem.groups} == {
            p.name for p in motivating.workers()
        }
        assert problem.constraints[0].name == AREA_BUDGET

    def test_area_budget_binds(self, motivating, library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        # fast costs +16 area; budget 10 only allows mid (+6)
        problem = timing_optimization_problem(cfg, ["P2"], area_budget=10.0)
        solution = branch_bound.solve(problem)
        assert solution.selection["P2"] == "P2.mid"

    def test_off_cycle_prefers_current_when_indifferent(self, motivating,
                                                        library):
        cfg = SystemConfiguration.initial(motivating, library, pick="smallest")
        problem = timing_optimization_problem(cfg, ["P2"], area_budget=100.0)
        solution = branch_bound.solve(problem)
        for process in ("P3", "P4", "P5", "P6"):
            assert solution.selection[process].endswith(".small")


class TestLatencyCaps:
    def test_caps_formula(self, config, motivating):
        caps = process_latency_caps(config, target_cycle_time=100)
        # P2's channels: a(2) + b(1) + d(3) + f(1) = 7 -> cap 93
        assert caps["P2"] == 93

    def test_caps_clamped_at_zero(self, config):
        caps = process_latency_caps(config, target_cycle_time=1)
        assert caps["P2"] == 0

    @staticmethod
    def _fifo_consumer_setup():
        """A consumer behind a high-latency FIFO input.

        The FIFO decouples the consumer: its serial chain dequeues in zero
        cycles, so the channel's 10-cycle transfer latency belongs to the
        *producer's* bound only.
        """
        from repro.core import SystemBuilder

        system = (
            SystemBuilder("fifo")
            .source("src", latency=1)
            .process("A", latency=2)
            .sink("snk", latency=1)
            .channel("i", "src", "A", latency=10, capacity=4)
            .channel("o", "A", "snk", latency=1)
            .build()
        )
        library = ImplementationLibrary([
            ParetoSet.from_points("A", [
                Implementation("A.slow", 8, 10.0),
                Implementation("A.fast", 2, 26.0),
            ]),
        ])
        config = SystemConfiguration.initial(
            system, library,
            ordering=ChannelOrdering.declaration_order(system),
        )
        return system, config

    def test_buffered_input_does_not_count(self):
        system, config = self._fifo_consumer_setup()
        caps = process_latency_caps(config, target_cycle_time=15)
        # A's bound: buffered input i contributes 0, output o contributes 1
        # -> cap 14.  Summing the raw latencies (10 + 1) would cap at 4 and
        # wrongly exclude A.slow (latency 8), which the next test shows is
        # feasible.
        assert caps["A"] == 14

    def test_excluded_implementation_is_actually_feasible(self):
        from repro.model import analyze_system

        system, config = self._fifo_consumer_setup()
        slow = config.with_selection({"A": "A.slow"})
        performance = analyze_system(
            system, slow.ordering,
            process_latencies=slow.process_latencies(),
        )
        assert performance.cycle_time <= 15

    def test_area_recovery_can_reach_the_implementation(self):
        system, config = self._fifo_consumer_setup()
        caps = process_latency_caps(config, target_cycle_time=15)
        problem = area_recovery_problem(config, [], slack=1000.0,
                                        latency_caps=caps)
        solution = branch_bound.solve(problem)
        assert solution.selection["A"] == "A.slow"
