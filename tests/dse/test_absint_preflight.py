"""The explorer's static preflight: prune, certify, or cross-check.

``Explorer._verify_ordering`` only touches ``config.system`` and
``config.ordering``, so a bare namespace stands in for a full
``SystemConfiguration`` — the point under test is the routing between
the abstract-interpretation preflight and the exhaustive BFS, not the
exploration loop around it.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.dse import Explorer
from repro.errors import DeadlockError
from repro.mpeg2 import build_mpeg2_system
from repro.obs import MetricsRegistry
from repro.ordering import channel_ordering


@pytest.fixture()
def explorer():
    return Explorer(target_cycle_time=10)


def _config(system, ordering):
    return SimpleNamespace(system=system, ordering=ordering)


class TestStaticPrune:
    def test_statically_deadlocked_orderings_are_pruned(
        self, explorer, motivating, deadlock_ordering
    ):
        metrics = MetricsRegistry()
        with pytest.raises(DeadlockError, match="static preflight"):
            explorer._verify_ordering(
                _config(motivating, deadlock_ordering), metrics
            )
        assert metrics.counter("dse.absint.runs").value == 1
        assert metrics.counter("dse.absint.deadlock_pruned").value == 1
        # No state-space search is ever spent on a pruned candidate.
        assert metrics.counter("dse.verify.runs").value == 0

    def test_prune_carries_the_witness_cycle(
        self, explorer, motivating, deadlock_ordering
    ):
        with pytest.raises(DeadlockError) as excinfo:
            explorer._verify_ordering(
                _config(motivating, deadlock_ordering), None
            )
        assert excinfo.value.cycle


class TestRouting:
    def test_small_systems_are_cross_checked_by_bfs(
        self, explorer, motivating, optimal_ordering
    ):
        metrics = MetricsRegistry()
        explorer._verify_ordering(
            _config(motivating, optimal_ordering), metrics
        )
        assert metrics.counter("dse.absint.runs").value == 1
        assert metrics.counter("dse.absint.bfs_crosschecks").value == 1
        assert metrics.counter("dse.verify.runs").value == 1
        assert metrics.counter("dse.absint.certified").value == 0

    def test_large_systems_rely_on_the_certificate(self, explorer):
        system = build_mpeg2_system()
        ordering = channel_ordering(system)
        metrics = MetricsRegistry()
        explorer._verify_ordering(_config(system, ordering), metrics)
        assert metrics.counter("dse.absint.certified").value == 1
        # Beyond SMALL_SYSTEM_LIMIT no BFS runs at all.
        assert metrics.counter("dse.verify.runs").value == 0
        assert metrics.counter("dse.absint.bfs_crosschecks").value == 0

    def test_verification_off_skips_the_preflight(
        self, motivating, deadlock_ordering
    ):
        explorer = Explorer(target_cycle_time=10, verify=False)
        metrics = MetricsRegistry()
        explorer._verify_ordering(
            _config(motivating, deadlock_ordering), metrics
        )
        assert metrics.counter("dse.absint.runs").value == 0
