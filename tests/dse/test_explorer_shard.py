"""Sharded DSE measurement: ``Explorer.run(workers=N)`` and
``sweep_targets(workers=N)`` equal their sequential counterparts.

The explorer's sharded measurement pass fans the visited configurations
out over a worker pool instead of the in-process batch engine; the
analytic trajectory is untouched either way, and the measured cycle
times are bit-identical (workers compute the same scalar simulations).
A store makes the measurements persistent — re-running the same sweep
against a warm store recomputes nothing.
"""

import pytest

from repro.core import ChannelOrdering
from repro.dse import Explorer, SystemConfiguration
from repro.dse.sweep import sweep_targets
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.store import ArtifactStore


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.mid", base * 2, 16.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    return SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )


class TestExplorerWorkers:
    def test_sharded_measurements_equal_batch(self, setup):
        batch = Explorer(target_cycle_time=40, batch=True).run(setup)
        sharded = Explorer(target_cycle_time=40, batch=True, workers=2).run(
            setup
        )
        assert sharded.history == batch.history
        assert sharded.measured_cycle_times == batch.measured_cycle_times

    def test_run_level_workers_override(self, setup):
        explorer = Explorer(target_cycle_time=40, batch=True)
        baseline = explorer.run(setup)
        overridden = explorer.run(setup, workers=2)
        assert overridden.measured_cycle_times == baseline.measured_cycle_times

    def test_store_fills_and_serves(self, setup, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        cold = Explorer(
            target_cycle_time=40, batch=True, workers=2, store=store
        ).run(setup)
        assert store.count("sim") > 0
        # Store writes happen in the worker processes, so parent-side
        # stats can't see them; the on-disk entries are the evidence.  A
        # warm re-run (fresh pool, cold memos) must be served entirely
        # from the store: same answers, not one entry rewritten.
        mtimes = {p: p.stat().st_mtime_ns for p in store.entries()}
        warm = Explorer(
            target_cycle_time=40, batch=True, workers=2, store=store
        ).run(setup)
        assert warm.measured_cycle_times == cold.measured_cycle_times
        assert {
            p: p.stat().st_mtime_ns for p in store.entries()
        } == mtimes


class TestSweepWorkers:
    TARGETS = (60, 40, 30)

    def test_sharded_sweep_equals_sequential(self, setup):
        sequential = sweep_targets(setup, self.TARGETS, batch=True)
        sharded = sweep_targets(setup, self.TARGETS, batch=True, workers=2)
        assert [
            (p.target_cycle_time, p.cycle_time, p.area, p.feasible,
             p.measured_cycle_time)
            for p in sharded
        ] == [
            (p.target_cycle_time, p.cycle_time, p.area, p.feasible,
             p.measured_cycle_time)
            for p in sequential
        ]

    def test_sweep_files_its_frontier(self, setup, tmp_path):
        from repro.ir import lower
        from repro.store import params_digest

        store = ArtifactStore(tmp_path / "store")
        points = sweep_targets(
            setup, self.TARGETS, batch=True, workers=2, store=store
        )
        assert points
        base_hash = lower(setup.system, setup.ordering).structural_hash
        digest = params_digest(
            {
                "op": "pareto",
                "targets": tuple(str(t) for t in sorted(self.TARGETS)),
            }
        )
        frontier = store.get(base_hash, "pareto", digest)
        assert isinstance(frontier, tuple) and frontier
        assert all(entry["feasible"] for entry in frontier)

    def test_analysis_artifacts_persist_across_engines(self, setup, tmp_path):
        from repro.perf.engine import PerformanceEngine

        store = ArtifactStore(tmp_path / "store")
        sweep_targets(setup, (40,), batch=False, store=store)
        assert store.count("analysis") > 0
        # A brand-new engine (fresh LRU) over the same disk answers from
        # the store instead of re-running the analysis.
        engine = PerformanceEngine(store=store)
        engine.analyze(
            setup.system,
            setup.ordering,
            process_latencies=setup.process_latencies(),
        )
        assert store.stats_dict()["analysis"]["hits"] > 0
