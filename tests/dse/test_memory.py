"""Memory co-optimization (the paper's future work, implemented)."""

import pytest

from repro.core import Channel, ChannelOrdering
from repro.dse import (
    SystemConfiguration,
    co_optimize,
    memory_area,
    volume_proportional_slot_area,
)
from repro.hls import Implementation, ImplementationLibrary, ParetoSet


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    return SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )


class TestMemoryModel:
    def test_slot_area_proportional_to_latency(self, motivating):
        model = volume_proportional_slot_area(area_per_latency_cycle=10.0)
        assert model(motivating.channel("d")) == 30.0  # latency 3
        assert model(motivating.channel("b")) == 10.0

    def test_zero_latency_slot_is_not_free(self, motivating):
        """Regression: a zero-latency buffered channel's slots must still
        cost storage.

        The model used to price a slot at ``area_per_latency_cycle *
        latency``, handing zero-latency channels unlimited free slots
        that ``co_optimize`` would happily buy.  The public constructor
        enforces ``latency >= 1``, so bypass validation the way a
        hand-built or future relaxed model could.
        """
        import copy

        zero = copy.copy(motivating.channel("b"))
        object.__setattr__(zero, "latency", 0)
        model = volume_proportional_slot_area(area_per_latency_cycle=10.0)
        assert model(zero) == 10.0  # floored at one latency cycle

    def test_min_slot_area_parameter(self, motivating):
        model = volume_proportional_slot_area(
            area_per_latency_cycle=10.0, min_slot_area=25.0
        )
        assert model(motivating.channel("b")) == 25.0  # latency 1, floored
        assert model(motivating.channel("d")) == 30.0  # latency 3, above

    def test_memory_area_sums_slots(self, motivating):
        model = volume_proportional_slot_area(10.0)
        total = memory_area(
            motivating, {"d": 2, "b": 1, "a": 0}, model
        )
        assert total == 2 * 30.0 + 10.0

    def test_rendezvous_costs_nothing(self, motivating):
        model = volume_proportional_slot_area(10.0)
        assert memory_area(
            motivating, {c.name: 0 for c in motivating.channels}, model
        ) == 0.0


class TestCoOptimize:
    def test_logic_only_when_target_easy(self, setup):
        # Target reachable by implementations alone: no buffers bought.
        result = co_optimize(setup, target_cycle_time=20)
        assert result.feasible
        assert result.cycle_time <= 20
        assert result.memory_area == 0.0
        assert result.sized_channels == ()

    def test_buffers_bought_below_logic_floor(self, setup):
        # The fastest-logic floor of the motivating example is 12 (P2's
        # serial cycle); going below needs FIFO slots.
        result = co_optimize(setup, target_cycle_time=10)
        assert result.feasible
        assert result.cycle_time <= 10
        assert result.memory_area > 0.0
        assert result.sized_channels

    def test_memory_charged_by_model(self, setup, motivating):
        expensive = volume_proportional_slot_area(1000.0)
        cheap = volume_proportional_slot_area(1.0)
        costly = co_optimize(setup, target_cycle_time=10,
                             slot_area=expensive)
        frugal = co_optimize(setup, target_cycle_time=10, slot_area=cheap)
        assert costly.capacities == frugal.capacities
        assert costly.memory_area == 1000.0 * frugal.memory_area

    def test_total_area_is_sum(self, setup):
        result = co_optimize(setup, target_cycle_time=10)
        assert result.total_area == result.logic_area + result.memory_area

    def test_infeasible_even_with_buffers(self, setup):
        result = co_optimize(setup, target_cycle_time=1, max_capacity=4)
        assert not result.feasible
        assert result.cycle_time > 1

    def test_expensive_slots_trimmed_to_rendezvous(self, setup):
        """Channels whose slot the target does not need fall back to the
        free rendezvous protocol."""
        result = co_optimize(setup, target_cycle_time=11)
        rendezvous = [n for n, c in result.capacities.items() if c == 0]
        assert rendezvous  # not every channel needs a buffer for CT 11
        assert result.feasible


class TestEscalationErrorHandling:
    """Regression: the reordering step used to swallow *every* exception
    ("ordering failures keep current"), hiding real programming errors.
    Only domain errors may keep the current ordering."""

    def test_programming_errors_propagate(self, setup, monkeypatch):
        import repro.ordering.algorithm as algorithm
        from repro.dse.memory import _escalate_with_buffers

        def broken(system, **kwargs):
            raise RuntimeError("bug in channel_ordering")

        monkeypatch.setattr(algorithm, "channel_ordering", broken)
        with pytest.raises(RuntimeError, match="bug in channel_ordering"):
            _escalate_with_buffers(setup, target_cycle_time=10,
                                   max_capacity=16)

    def test_domain_errors_keep_current_ordering(self, setup, monkeypatch):
        import repro.ordering.algorithm as algorithm
        from repro.dse.memory import _escalate_with_buffers
        from repro.errors import DeadlockError

        def refusing(system, **kwargs):
            raise DeadlockError("no live ordering from here")

        monkeypatch.setattr(algorithm, "channel_ordering", refusing)
        candidate, _, sized = _escalate_with_buffers(
            setup, target_cycle_time=10, max_capacity=16
        )
        # The escalation carried on with the configuration's own ordering.
        assert candidate.ordering is setup.ordering
        assert sized.feasible
