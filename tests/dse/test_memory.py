"""Memory co-optimization (the paper's future work, implemented)."""

import pytest

from repro.core import Channel, ChannelOrdering
from repro.dse import (
    SystemConfiguration,
    co_optimize,
    memory_area,
    volume_proportional_slot_area,
)
from repro.hls import Implementation, ImplementationLibrary, ParetoSet


@pytest.fixture()
def setup(motivating):
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(
            ParetoSet.from_points(
                process.name,
                [
                    Implementation(f"{process.name}.small", base * 4, 10.0),
                    Implementation(f"{process.name}.fast", base, 26.0),
                ],
            )
        )
    library = ImplementationLibrary(sets)
    return SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )


class TestMemoryModel:
    def test_slot_area_proportional_to_latency(self, motivating):
        model = volume_proportional_slot_area(area_per_latency_cycle=10.0)
        assert model(motivating.channel("d")) == 30.0  # latency 3
        assert model(motivating.channel("b")) == 10.0

    def test_memory_area_sums_slots(self, motivating):
        model = volume_proportional_slot_area(10.0)
        total = memory_area(
            motivating, {"d": 2, "b": 1, "a": 0}, model
        )
        assert total == 2 * 30.0 + 10.0

    def test_rendezvous_costs_nothing(self, motivating):
        model = volume_proportional_slot_area(10.0)
        assert memory_area(
            motivating, {c.name: 0 for c in motivating.channels}, model
        ) == 0.0


class TestCoOptimize:
    def test_logic_only_when_target_easy(self, setup):
        # Target reachable by implementations alone: no buffers bought.
        result = co_optimize(setup, target_cycle_time=20)
        assert result.feasible
        assert result.cycle_time <= 20
        assert result.memory_area == 0.0
        assert result.sized_channels == ()

    def test_buffers_bought_below_logic_floor(self, setup):
        # The fastest-logic floor of the motivating example is 12 (P2's
        # serial cycle); going below needs FIFO slots.
        result = co_optimize(setup, target_cycle_time=10)
        assert result.feasible
        assert result.cycle_time <= 10
        assert result.memory_area > 0.0
        assert result.sized_channels

    def test_memory_charged_by_model(self, setup, motivating):
        expensive = volume_proportional_slot_area(1000.0)
        cheap = volume_proportional_slot_area(1.0)
        costly = co_optimize(setup, target_cycle_time=10,
                             slot_area=expensive)
        frugal = co_optimize(setup, target_cycle_time=10, slot_area=cheap)
        assert costly.capacities == frugal.capacities
        assert costly.memory_area == 1000.0 * frugal.memory_area

    def test_total_area_is_sum(self, setup):
        result = co_optimize(setup, target_cycle_time=10)
        assert result.total_area == result.logic_area + result.memory_area

    def test_infeasible_even_with_buffers(self, setup):
        result = co_optimize(setup, target_cycle_time=1, max_capacity=4)
        assert not result.feasible
        assert result.cycle_time > 1

    def test_expensive_slots_trimmed_to_rendezvous(self, setup):
        """Channels whose slot the target does not need fall back to the
        free rendezvous protocol."""
        result = co_optimize(setup, target_cycle_time=11)
        rendezvous = [n for n, c in result.capacities.items() if c == 0]
        assert rendezvous  # not every channel needs a buffer for CT 11
        assert result.feasible
