"""Hypothesis strategies for property-based tests.

Generates random-but-valid systems and event graphs with the structural
guarantees the library expects (layered worker DAGs with a testbench, plus
optional pre-loaded feedback channels), so properties quantify over a rich
slice of real inputs instead of degenerate noise.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.builder import SystemBuilder
from repro.core.system import SystemGraph
from repro.tmg.graph import TimedMarkedGraph


@st.composite
def layered_systems(
    draw,
    max_layers: int = 4,
    max_width: int = 3,
    max_latency: int = 12,
    feedback: bool = True,
) -> SystemGraph:
    """A random layered system: source → worker layers → sink.

    Every worker reads from at least one earlier process and every
    worker's outputs eventually drain to the sink, so the result always
    passes validation.  With ``feedback=True`` up to two later→earlier
    channels (with one initial token each) may be added.
    """
    n_layers = draw(st.integers(1, max_layers))
    widths = [draw(st.integers(1, max_width)) for _ in range(n_layers)]
    latency = lambda: draw(st.integers(1, max_latency))  # noqa: E731

    builder = SystemBuilder("hyp")
    builder.source("src", latency=latency())
    layers: list[list[str]] = []
    count = 0
    for width in widths:
        layer = []
        for _ in range(width):
            name = f"w{count}"
            builder.process(name, latency=latency())
            layer.append(name)
            count += 1
        layers.append(layer)
    builder.sink("snk", latency=latency())

    channel = 0

    def add(producer: str, consumer: str, tokens: int = 0) -> None:
        nonlocal channel
        builder.channel(
            f"c{channel}",
            producer,
            consumer,
            latency=draw(st.integers(1, max_latency)),
            initial_tokens=tokens,
        )
        channel += 1

    # Source feeds every first-layer worker.
    for name in layers[0]:
        add("src", name)
    # Every later worker reads from one random earlier worker; extra
    # forward channels sprinkle reconvergence.
    for depth in range(1, n_layers):
        for name in layers[depth]:
            earlier_layer = layers[draw(st.integers(0, depth - 1))]
            producer = earlier_layer[draw(st.integers(0, len(earlier_layer) - 1))]
            add(producer, name)
    flat = [name for layer in layers for name in layer]
    extra = draw(st.integers(0, min(4, len(flat)))) if len(flat) >= 2 else 0
    for _ in range(extra):
        i = draw(st.integers(0, len(flat) - 2))
        j = draw(st.integers(i + 1, len(flat) - 1))
        if flat[i] != flat[j]:
            add(flat[i], flat[j])
    # Optional feedback with a pre-loaded token.
    if feedback and len(flat) >= 2:
        n_feedback = draw(st.integers(0, 2))
        for _ in range(n_feedback):
            j = draw(st.integers(1, len(flat) - 1))
            i = draw(st.integers(0, j - 1))
            add(flat[j], flat[i], tokens=draw(st.integers(1, 2)))

    # Drain everything that cannot reach the sink into the sink.
    system = builder.build(validate=False)
    for name in flat:
        if not system.output_channels(name):
            add(name, "snk")
    from repro.core.generators import _not_coreachable

    for name in _not_coreachable(system, "snk"):
        add(name, "snk")
    if not system.input_channels("snk"):
        add(flat[-1], "snk")
    return builder.build()


@st.composite
def replicated_lane_systems(
    draw,
    min_lanes: int = 2,
    max_lanes: int = 5,
    max_latency: int = 6,
    max_capacity: int = 3,
) -> SystemGraph:
    """A k-wide replicated fanout: per-lane source → worker → sink.

    Every lane is an identical copy (same latencies, same channel
    attributes, lane-local endpoints), so the strict automorphism group
    contains the full symmetric group on lanes — the canonical "family
    of interchangeable stages" the compositional flow produces.
    """
    k = draw(st.integers(min_lanes, max_lanes))
    src_latency = draw(st.integers(1, max_latency))
    worker_latency = draw(st.integers(1, max_latency))
    snk_latency = draw(st.integers(1, max_latency))
    in_latency = draw(st.integers(1, max_latency))
    out_latency = draw(st.integers(1, max_latency))
    capacity = draw(st.integers(0, max_capacity))

    builder = SystemBuilder("lanes")
    for i in range(k):
        builder.source(f"src{i}", latency=src_latency)
        builder.process(f"w{i}", latency=worker_latency)
        builder.sink(f"snk{i}", latency=snk_latency)
    for i in range(k):
        builder.channel(
            f"in{i}", f"src{i}", f"w{i}",
            latency=in_latency, capacity=capacity,
        )
    for i in range(k):
        builder.channel(
            f"out{i}", f"w{i}", f"snk{i}",
            latency=out_latency, capacity=capacity,
        )
    return builder.build()


@st.composite
def replicated_ring_systems(
    draw,
    min_stages: int = 3,
    max_stages: int = 6,
    max_latency: int = 4,
    max_capacity: int = 2,
) -> SystemGraph:
    """A k-stage rotationally symmetric ring with per-stage testbench.

    Channels are declared *grouped by role* (all ``in*``, then all
    ``ring*`` with one pre-loaded token each, then all ``out*``): the
    grouped declaration gives every stage the same statement order
    relative to the rotation, so the strict automorphism group contains
    the cyclic group Z_k.  Interleaving the declaration per stage would
    break that (a genuine per-lane asymmetry in the lowered programs).
    """
    k = draw(st.integers(min_stages, max_stages))
    stage_latency = draw(st.integers(1, max_latency))
    tb_latency = draw(st.integers(1, max_latency))
    ring_capacity = draw(st.integers(1, max_capacity))

    builder = SystemBuilder("ring")
    for i in range(k):
        builder.source(f"src{i}", latency=tb_latency)
        builder.process(f"st{i}", latency=stage_latency)
        builder.sink(f"snk{i}", latency=tb_latency)
    for i in range(k):
        builder.channel(f"in{i}", f"src{i}", f"st{i}", capacity=1)
    for i in range(k):
        builder.channel(
            f"ring{i}", f"st{i}", f"st{(i + 1) % k}",
            capacity=ring_capacity, initial_tokens=1,
        )
    for i in range(k):
        builder.channel(f"out{i}", f"st{i}", f"snk{i}", capacity=1)
    return builder.build()


@st.composite
def replicated_pipeline_systems(
    draw,
    min_lanes: int = 2,
    max_lanes: int = 4,
    min_depth: int = 2,
    max_depth: int = 3,
    max_latency: int = 6,
) -> SystemGraph:
    """k parallel pipelines of identical stages: src_i → s_i0 → … → snk_i.

    Depth-replicated *and* lane-replicated: lanes are interchangeable
    (full S_k on lanes) while stages within a lane are pinned by their
    depth.
    """
    k = draw(st.integers(min_lanes, max_lanes))
    depth = draw(st.integers(min_depth, max_depth))
    tb_latency = draw(st.integers(1, max_latency))
    stage_latencies = [
        draw(st.integers(1, max_latency)) for _ in range(depth)
    ]
    capacity = draw(st.integers(0, 2))

    builder = SystemBuilder("pipes")
    for i in range(k):
        builder.source(f"src{i}", latency=tb_latency)
        for d in range(depth):
            builder.process(f"s{i}_{d}", latency=stage_latencies[d])
        builder.sink(f"snk{i}", latency=tb_latency)
    for i in range(k):
        builder.channel(f"in{i}", f"src{i}", f"s{i}_0", capacity=capacity)
        for d in range(depth - 1):
            builder.channel(
                f"c{i}_{d}", f"s{i}_{d}", f"s{i}_{d + 1}", capacity=capacity
            )
        builder.channel(
            f"out{i}", f"s{i}_{depth - 1}", f"snk{i}", capacity=capacity
        )
    return builder.build()


def replicated_family_systems() -> st.SearchStrategy[SystemGraph]:
    """Any of the replicated-family shapes (lanes, rings, pipelines)."""
    return st.one_of(
        replicated_lane_systems(),
        replicated_ring_systems(),
        replicated_pipeline_systems(),
    )


@st.composite
def live_tmgs(
    draw,
    max_chains: int = 3,
    max_chain_length: int = 4,
    max_delay: int = 10,
) -> TimedMarkedGraph:
    """A random live TMG: token-carrying transition rings plus cross places.

    Construction: a few rings (each ring a cycle of transitions, with one
    token somewhere on it) connected by extra places that always carry at
    least one token, so no token-free cycle can arise.
    """
    tmg = TimedMarkedGraph("hyp")
    n_chains = draw(st.integers(1, max_chains))
    rings: list[list[str]] = []
    t_index = 0
    p_index = 0
    for c in range(n_chains):
        length = draw(st.integers(1, max_chain_length))
        ring = []
        for _ in range(length):
            name = f"t{t_index}"
            tmg.add_transition(name, delay=draw(st.integers(0, max_delay)))
            ring.append(name)
            t_index += 1
        token_at = draw(st.integers(0, length - 1))
        for i, producer in enumerate(ring):
            consumer = ring[(i + 1) % length]
            tmg.add_place(
                f"p{p_index}",
                producer,
                consumer,
                tokens=1 if i == token_at else 0,
            )
            p_index += 1
        rings.append(ring)
    # Cross links with >= 1 token each keep all mixed cycles live.
    n_cross = draw(st.integers(0, 2 * n_chains))
    all_transitions = [t for ring in rings for t in ring]
    for _ in range(n_cross):
        producer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        consumer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        tmg.add_place(
            f"p{p_index}",
            producer,
            consumer,
            tokens=draw(st.integers(1, 3)),
        )
        p_index += 1
    return tmg
