"""Hypothesis strategies for property-based tests.

Generates random-but-valid systems and event graphs with the structural
guarantees the library expects (layered worker DAGs with a testbench, plus
optional pre-loaded feedback channels), so properties quantify over a rich
slice of real inputs instead of degenerate noise.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.builder import SystemBuilder
from repro.core.system import SystemGraph
from repro.tmg.graph import TimedMarkedGraph


@st.composite
def layered_systems(
    draw,
    max_layers: int = 4,
    max_width: int = 3,
    max_latency: int = 12,
    feedback: bool = True,
) -> SystemGraph:
    """A random layered system: source → worker layers → sink.

    Every worker reads from at least one earlier process and every
    worker's outputs eventually drain to the sink, so the result always
    passes validation.  With ``feedback=True`` up to two later→earlier
    channels (with one initial token each) may be added.
    """
    n_layers = draw(st.integers(1, max_layers))
    widths = [draw(st.integers(1, max_width)) for _ in range(n_layers)]
    latency = lambda: draw(st.integers(1, max_latency))  # noqa: E731

    builder = SystemBuilder("hyp")
    builder.source("src", latency=latency())
    layers: list[list[str]] = []
    count = 0
    for width in widths:
        layer = []
        for _ in range(width):
            name = f"w{count}"
            builder.process(name, latency=latency())
            layer.append(name)
            count += 1
        layers.append(layer)
    builder.sink("snk", latency=latency())

    channel = 0

    def add(producer: str, consumer: str, tokens: int = 0) -> None:
        nonlocal channel
        builder.channel(
            f"c{channel}",
            producer,
            consumer,
            latency=draw(st.integers(1, max_latency)),
            initial_tokens=tokens,
        )
        channel += 1

    # Source feeds every first-layer worker.
    for name in layers[0]:
        add("src", name)
    # Every later worker reads from one random earlier worker; extra
    # forward channels sprinkle reconvergence.
    for depth in range(1, n_layers):
        for name in layers[depth]:
            earlier_layer = layers[draw(st.integers(0, depth - 1))]
            producer = earlier_layer[draw(st.integers(0, len(earlier_layer) - 1))]
            add(producer, name)
    flat = [name for layer in layers for name in layer]
    extra = draw(st.integers(0, min(4, len(flat)))) if len(flat) >= 2 else 0
    for _ in range(extra):
        i = draw(st.integers(0, len(flat) - 2))
        j = draw(st.integers(i + 1, len(flat) - 1))
        if flat[i] != flat[j]:
            add(flat[i], flat[j])
    # Optional feedback with a pre-loaded token.
    if feedback and len(flat) >= 2:
        n_feedback = draw(st.integers(0, 2))
        for _ in range(n_feedback):
            j = draw(st.integers(1, len(flat) - 1))
            i = draw(st.integers(0, j - 1))
            add(flat[j], flat[i], tokens=draw(st.integers(1, 2)))

    # Drain everything that cannot reach the sink into the sink.
    system = builder.build(validate=False)
    for name in flat:
        if not system.output_channels(name):
            add(name, "snk")
    from repro.core.generators import _not_coreachable

    for name in _not_coreachable(system, "snk"):
        add(name, "snk")
    if not system.input_channels("snk"):
        add(flat[-1], "snk")
    return builder.build()


@st.composite
def live_tmgs(
    draw,
    max_chains: int = 3,
    max_chain_length: int = 4,
    max_delay: int = 10,
) -> TimedMarkedGraph:
    """A random live TMG: token-carrying transition rings plus cross places.

    Construction: a few rings (each ring a cycle of transitions, with one
    token somewhere on it) connected by extra places that always carry at
    least one token, so no token-free cycle can arise.
    """
    tmg = TimedMarkedGraph("hyp")
    n_chains = draw(st.integers(1, max_chains))
    rings: list[list[str]] = []
    t_index = 0
    p_index = 0
    for c in range(n_chains):
        length = draw(st.integers(1, max_chain_length))
        ring = []
        for _ in range(length):
            name = f"t{t_index}"
            tmg.add_transition(name, delay=draw(st.integers(0, max_delay)))
            ring.append(name)
            t_index += 1
        token_at = draw(st.integers(0, length - 1))
        for i, producer in enumerate(ring):
            consumer = ring[(i + 1) % length]
            tmg.add_place(
                f"p{p_index}",
                producer,
                consumer,
                tokens=1 if i == token_at else 0,
            )
            p_index += 1
        rings.append(ring)
    # Cross links with >= 1 token each keep all mixed cycles live.
    n_cross = draw(st.integers(0, 2 * n_chains))
    all_transitions = [t for ring in rings for t in ring]
    for _ in range(n_cross):
        producer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        consumer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        tmg.add_place(
            f"p{p_index}",
            producer,
            consumer,
            tokens=draw(st.integers(1, 3)),
        )
        p_index += 1
    return tmg
