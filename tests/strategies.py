"""Hypothesis strategies for property-based tests.

Generates random-but-valid systems and event graphs with the structural
guarantees the library expects (layered worker DAGs with a testbench, plus
optional pre-loaded feedback channels), so properties quantify over a rich
slice of real inputs instead of degenerate noise.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.builder import SystemBuilder
from repro.core.system import SystemGraph
from repro.dsl import (
    butterfly,
    fanout,
    join,
    mesh,
    pipe,
    rate_chain,
    reduce_tree,
    replicate,
    ring,
    sink_stage,
    source_stage,
    stage,
    testbenched,
    wire_for_latency,
)
from repro.sdf import SdfGraph
from repro.tmg.graph import TimedMarkedGraph


@st.composite
def layered_systems(
    draw,
    max_layers: int = 4,
    max_width: int = 3,
    max_latency: int = 12,
    feedback: bool = True,
) -> SystemGraph:
    """A random layered system: source → worker layers → sink.

    Every worker reads from at least one earlier process and every
    worker's outputs eventually drain to the sink, so the result always
    passes validation.  With ``feedback=True`` up to two later→earlier
    channels (with one initial token each) may be added.
    """
    n_layers = draw(st.integers(1, max_layers))
    widths = [draw(st.integers(1, max_width)) for _ in range(n_layers)]
    latency = lambda: draw(st.integers(1, max_latency))  # noqa: E731

    builder = SystemBuilder("hyp")
    builder.source("src", latency=latency())
    layers: list[list[str]] = []
    count = 0
    for width in widths:
        layer = []
        for _ in range(width):
            name = f"w{count}"
            builder.process(name, latency=latency())
            layer.append(name)
            count += 1
        layers.append(layer)
    builder.sink("snk", latency=latency())

    channel = 0

    def add(producer: str, consumer: str, tokens: int = 0) -> None:
        nonlocal channel
        builder.channel(
            f"c{channel}",
            producer,
            consumer,
            latency=draw(st.integers(1, max_latency)),
            initial_tokens=tokens,
        )
        channel += 1

    # Source feeds every first-layer worker.
    for name in layers[0]:
        add("src", name)
    # Every later worker reads from one random earlier worker; extra
    # forward channels sprinkle reconvergence.
    for depth in range(1, n_layers):
        for name in layers[depth]:
            earlier_layer = layers[draw(st.integers(0, depth - 1))]
            producer = earlier_layer[draw(st.integers(0, len(earlier_layer) - 1))]
            add(producer, name)
    flat = [name for layer in layers for name in layer]
    extra = draw(st.integers(0, min(4, len(flat)))) if len(flat) >= 2 else 0
    for _ in range(extra):
        i = draw(st.integers(0, len(flat) - 2))
        j = draw(st.integers(i + 1, len(flat) - 1))
        if flat[i] != flat[j]:
            add(flat[i], flat[j])
    # Optional feedback with a pre-loaded token.
    if feedback and len(flat) >= 2:
        n_feedback = draw(st.integers(0, 2))
        for _ in range(n_feedback):
            j = draw(st.integers(1, len(flat) - 1))
            i = draw(st.integers(0, j - 1))
            add(flat[j], flat[i], tokens=draw(st.integers(1, 2)))

    # Drain everything that cannot reach the sink into the sink.
    system = builder.build(validate=False)
    for name in flat:
        if not system.output_channels(name):
            add(name, "snk")
    from repro.core.generators import _not_coreachable

    for name in _not_coreachable(system, "snk"):
        add(name, "snk")
    if not system.input_channels("snk"):
        add(flat[-1], "snk")
    return builder.build()


@st.composite
def replicated_lane_systems(
    draw,
    min_lanes: int = 2,
    max_lanes: int = 5,
    max_latency: int = 6,
    max_capacity: int = 3,
) -> SystemGraph:
    """A k-wide replicated fanout: per-lane source → worker → sink.

    Built through the DSL: :func:`repro.dsl.replicate` declares the
    ``lanes`` family and per-port :func:`repro.dsl.testbenched` closure
    keeps it exact, so the strict automorphism group contains the full
    symmetric group on lanes — the canonical "family of interchangeable
    stages" the compositional flow produces.
    """
    k = draw(st.integers(min_lanes, max_lanes))
    src_latency = draw(st.integers(1, max_latency))
    worker_latency = draw(st.integers(1, max_latency))
    snk_latency = draw(st.integers(1, max_latency))
    capacity = draw(st.integers(0, max_capacity))
    in_wire = wire_for_latency(
        draw(st.integers(1, max_latency)), depth=capacity
    )
    out_wire = wire_for_latency(
        draw(st.integers(1, max_latency)), depth=capacity
    )

    design = replicate(
        k,
        lambda i: stage(
            f"w{i}",
            latency=worker_latency,
            inputs=[("in", in_wire)],
            outputs=[("out", out_wire)],
        ),
        family="lanes",
    )
    testbenched(
        design, source_latency=src_latency, sink_latency=snk_latency
    )
    return design.build(name="lanes")


@st.composite
def replicated_ring_systems(
    draw,
    min_stages: int = 3,
    max_stages: int = 6,
    max_latency: int = 4,
    max_capacity: int = 2,
) -> SystemGraph:
    """A k-stage rotationally symmetric ring with per-stage testbench.

    Built through :func:`repro.dsl.ring`: every stage declares its ports
    in the same order (ring hop first, then the testbench tap), the hop
    channels carry one pre-loaded token each, and the per-port testbench
    closure keeps every stage's statement order aligned with the
    rotation — so the strict automorphism group contains the cyclic
    group Z_k and the declared ``ring`` family verifies exactly.
    """
    k = draw(st.integers(min_stages, max_stages))
    stage_latency = draw(st.integers(1, max_latency))
    tb_latency = draw(st.integers(1, max_latency))
    ring_capacity = draw(st.integers(1, max_capacity))
    hop_wire = wire_for_latency(1, depth=ring_capacity)
    tb_wire = wire_for_latency(1, depth=1)

    parts = [
        stage(
            f"st{i}",
            latency=stage_latency,
            inputs=[("ring_in", hop_wire), ("in", tb_wire)],
            outputs=[("ring_out", hop_wire), ("out", tb_wire)],
        )
        for i in range(k)
    ]
    design = ring(parts, tokens=1, family="ring")
    testbenched(
        design, source_latency=tb_latency, sink_latency=tb_latency
    )
    return design.build(name="ring")


@st.composite
def replicated_pipeline_systems(
    draw,
    min_lanes: int = 2,
    max_lanes: int = 4,
    min_depth: int = 2,
    max_depth: int = 3,
    max_latency: int = 6,
) -> SystemGraph:
    """k parallel pipelines of identical stages: src_i → s_i0 → … → snk_i.

    Depth-replicated *and* lane-replicated: lanes are interchangeable
    (full S_k on lanes) while stages within a lane are pinned by their
    depth.
    """
    k = draw(st.integers(min_lanes, max_lanes))
    depth = draw(st.integers(min_depth, max_depth))
    tb_latency = draw(st.integers(1, max_latency))
    stage_latencies = [
        draw(st.integers(1, max_latency)) for _ in range(depth)
    ]
    lane_wire = wire_for_latency(1, depth=draw(st.integers(0, 2)))

    design = replicate(
        k,
        lambda i: pipe(
            *(
                stage(
                    f"s{i}_{d}",
                    latency=stage_latencies[d],
                    wire=lane_wire,
                )
                for d in range(depth)
            )
        ),
        family="pipes",
    )
    testbenched(
        design, source_latency=tb_latency, sink_latency=tb_latency
    )
    return design.build(name="pipes")


def replicated_family_systems() -> st.SearchStrategy[SystemGraph]:
    """Any of the replicated-family shapes (lanes, rings, pipelines)."""
    return st.one_of(
        replicated_lane_systems(),
        replicated_ring_systems(),
        replicated_pipeline_systems(),
    )


# ----------------------------------------------------------------------
# One strategy per DSL combinator: each yields a *closed* SystemGraph
# elaborated through that combinator, so properties can quantify over
# the whole catalog (tests/dsl/test_combinator_properties.py).
# ----------------------------------------------------------------------


def _stage_wire(draw, max_latency: int = 6) -> "object":
    return wire_for_latency(
        draw(st.integers(1, max_latency)), depth=draw(st.integers(0, 2))
    )


@st.composite
def dsl_pipe_systems(draw, max_stages: int = 5) -> SystemGraph:
    """source_stage → pipe of worker stages → sink_stage."""
    n = draw(st.integers(1, max_stages))
    wire = _stage_wire(draw)
    design = pipe(
        source_stage("src", latency=draw(st.integers(1, 4)), wire=wire),
        *(
            stage(f"w{i}", latency=draw(st.integers(1, 8)), wire=wire)
            for i in range(n)
        ),
        sink_stage("snk", latency=draw(st.integers(1, 4)), wire=wire),
    )
    return design.build(name="dsl_pipe")


@st.composite
def dsl_parallel_systems(draw, max_lanes: int = 4) -> SystemGraph:
    """replicate() lanes closed per-port: the declared 'lanes' family."""
    k = draw(st.integers(2, max_lanes))
    wire = _stage_wire(draw)
    latency = draw(st.integers(1, 8))
    design = replicate(
        k,
        lambda i: stage(f"w{i}", latency=latency, wire=wire),
        family="lanes",
    )
    testbenched(design)
    return design.build(name="dsl_parallel")


@st.composite
def dsl_fanout_join_systems(draw, max_lanes: int = 4) -> SystemGraph:
    """fanout() from one source over lanes, joined into one sink."""
    k = draw(st.integers(2, max_lanes))
    wire = _stage_wire(draw)
    latency = draw(st.integers(1, 8))
    head = source_stage(
        "src", latency=draw(st.integers(1, 4)), outputs=k, wire=wire
    )
    lanes = [stage(f"w{i}", latency=latency, wire=wire) for i in range(k)]
    design = fanout(head, *lanes, family="lanes")
    design = join(
        design,
        tail=sink_stage(
            "snk", latency=draw(st.integers(1, 4)), inputs=k, wire=wire
        ),
    )
    return design.build(name="dsl_fanout_join")


@st.composite
def dsl_reduce_tree_systems(draw, max_leaves: int = 6) -> SystemGraph:
    """reduce_tree() over single-output leaf stages, closed by testbench."""
    n = draw(st.integers(2, max_leaves))
    arity = draw(st.integers(2, 3))
    wire = _stage_wire(draw)
    leaf_latency = draw(st.integers(1, 6))
    node_latency = draw(st.integers(1, 6))
    leaves = [
        stage(f"leaf{i}", latency=leaf_latency, wire=wire)
        for i in range(n)
    ]
    design = reduce_tree(
        leaves,
        lambda level, index, fan_in: stage(
            f"red{level}_{index}",
            latency=node_latency,
            inputs=fan_in,
            wire=wire,
        ),
        arity=arity,
    )
    testbenched(design)
    return design.build(name="dsl_reduce_tree")


@st.composite
def dsl_ring_systems(draw, max_stages: int = 5) -> SystemGraph:
    """ring() of tapped stages, closed per-port (exact Z_k family)."""
    k = draw(st.integers(2, max_stages))
    hop = _stage_wire(draw)
    tap = _stage_wire(draw)
    latency = draw(st.integers(1, 6))
    tokens = draw(st.integers(1, 2))
    parts = [
        stage(
            f"st{i}",
            latency=latency,
            inputs=[("ring_in", hop), ("in", tap)],
            outputs=[("ring_out", hop), ("out", tap)],
        )
        for i in range(k)
    ]
    design = ring(parts, tokens=tokens, family="ring")
    testbenched(design)
    return design.build(name="dsl_ring")


@st.composite
def dsl_mesh_systems(draw, max_edge: int = 3) -> SystemGraph:
    """mesh() fabrics, open grid or wrapped torus, closed per-port."""
    rows = draw(st.integers(1, max_edge))
    cols = draw(st.integers(2 if rows == 1 else 1, max_edge))
    wrap = draw(st.booleans())
    design = mesh(
        rows,
        cols,
        latency=draw(st.integers(1, 4)),
        wire=_stage_wire(draw),
        wrap=wrap,
        tokens=draw(st.integers(1, 2)),
    )
    testbenched(design)
    return design.build(name="dsl_mesh")


@st.composite
def dsl_butterfly_systems(draw, max_bits: int = 3) -> SystemGraph:
    """butterfly() networks closed per-port (exact bit-flip families)."""
    bits = draw(st.integers(1, max_bits))
    design = butterfly(
        bits,
        latency=draw(st.integers(1, 4)),
        wire=_stage_wire(draw),
    )
    testbenched(design)
    return design.build(name="dsl_butterfly")


@st.composite
def dsl_rate_chains(draw, max_stages: int = 3) -> SdfGraph:
    """rate_chain() with small consistent rates (bounded expansion)."""
    n = draw(st.integers(1, max_stages))
    menu = [(1, 1), (1, 2), (2, 1), (2, 3), (3, 2), (1, 3), (3, 1)]
    rates = [draw(st.sampled_from(menu)) for _ in range(n)]
    times = [draw(st.integers(1, 6)) for _ in range(n + 1)]
    return rate_chain(
        "hyp_chain",
        rates,
        execution_times=times,
        channel_latency=draw(st.integers(1, 4)),
    )


def dsl_combinator_systems() -> st.SearchStrategy[SystemGraph]:
    """A closed system from any combinator in the catalog."""
    return st.one_of(
        dsl_pipe_systems(),
        dsl_parallel_systems(),
        dsl_fanout_join_systems(),
        dsl_reduce_tree_systems(),
        dsl_ring_systems(),
        dsl_mesh_systems(),
        dsl_butterfly_systems(),
    )


@st.composite
def live_tmgs(
    draw,
    max_chains: int = 3,
    max_chain_length: int = 4,
    max_delay: int = 10,
) -> TimedMarkedGraph:
    """A random live TMG: token-carrying transition rings plus cross places.

    Construction: a few rings (each ring a cycle of transitions, with one
    token somewhere on it) connected by extra places that always carry at
    least one token, so no token-free cycle can arise.
    """
    tmg = TimedMarkedGraph("hyp")
    n_chains = draw(st.integers(1, max_chains))
    rings: list[list[str]] = []
    t_index = 0
    p_index = 0
    for c in range(n_chains):
        length = draw(st.integers(1, max_chain_length))
        ring = []
        for _ in range(length):
            name = f"t{t_index}"
            tmg.add_transition(name, delay=draw(st.integers(0, max_delay)))
            ring.append(name)
            t_index += 1
        token_at = draw(st.integers(0, length - 1))
        for i, producer in enumerate(ring):
            consumer = ring[(i + 1) % length]
            tmg.add_place(
                f"p{p_index}",
                producer,
                consumer,
                tokens=1 if i == token_at else 0,
            )
            p_index += 1
        rings.append(ring)
    # Cross links with >= 1 token each keep all mixed cycles live.
    n_cross = draw(st.integers(0, 2 * n_chains))
    all_transitions = [t for ring in rings for t in ring]
    for _ in range(n_cross):
        producer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        consumer = all_transitions[draw(st.integers(0, len(all_transitions) - 1))]
        tmg.add_place(
            f"p{p_index}",
            producer,
            consumer,
            tokens=draw(st.integers(1, 3)),
        )
        p_index += 1
    return tmg
