"""Sharded execution is bit-identical to sequential execution.

The differential contract: for the same units, the ``measurement()``
projection of every outcome — index, IR hash, params digest, measured
cycle time, deadlock flag/cycle, full simulation result — is identical
whether the units ran inline (``workers=1``), across a pool
(``workers=2``), against a cold store, or against a warm one.  Only
provenance (``source``, ``worker_pid``) may differ.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service import (
    SOURCE_COMPUTED,
    SOURCE_MEMORY,
    SOURCE_STORE,
    Candidate,
    ShardedRunner,
    WorkUnit,
    evaluate_candidates,
)
from repro.store import ArtifactStore


def _candidates(system):
    """A small mixed sweep: latency tweaks plus one structural override."""
    names = [p.name for p in system.processes]
    out = [Candidate.of()]
    for name in names[:3]:
        out.append(Candidate.of({name: system.process(name).latency + 1}))
    out.append(Candidate.of({names[0]: 1, names[-1]: 2}))
    channel = system.channels[0].name
    out.append(Candidate.of(channel_capacities={channel: 4}))
    return out


def _measurements(outcomes):
    return [o.measurement() for o in outcomes]


class TestDifferential:
    def test_two_workers_match_sequential(self, motivating, optimal_ordering):
        candidates = _candidates(motivating)
        sequential = evaluate_candidates(
            motivating, optimal_ordering, candidates, iterations=24
        )
        parallel = evaluate_candidates(
            motivating, optimal_ordering, candidates, iterations=24, workers=2
        )
        assert _measurements(sequential) == _measurements(parallel)

    def test_store_temperature_does_not_change_measurements(
        self, motivating, optimal_ordering, tmp_path
    ):
        candidates = _candidates(motivating)
        store = ArtifactStore(tmp_path / "store")
        cold = evaluate_candidates(
            motivating, optimal_ordering, candidates,
            iterations=24, workers=2, store=store,
        )
        warm = evaluate_candidates(
            motivating, optimal_ordering, candidates,
            iterations=24, workers=2, store=store,
        )
        bare = evaluate_candidates(
            motivating, optimal_ordering, candidates, iterations=24
        )
        assert _measurements(cold) == _measurements(warm) == _measurements(bare)
        # The second pool started fresh (reset initializer), so its
        # answers came from the shared store, not worker memos.
        assert all(o.source == SOURCE_STORE for o in warm)

    def test_outcomes_arrive_in_submission_order(
        self, motivating, optimal_ordering
    ):
        candidates = _candidates(motivating)
        with ShardedRunner(workers=2, chunk_size=1) as runner:
            units = [
                WorkUnit(index=i, candidate=c, iterations=16)
                for i, c in enumerate(candidates)
            ]
            outcomes = runner.run(motivating, optimal_ordering, units)
        assert [o.index for o in outcomes] == list(range(len(candidates)))


class TestProvenance:
    def test_cold_run_computes_then_memoizes(self, motivating, optimal_ordering):
        from repro.service import invalidate_worker_state

        invalidate_worker_state()
        unit = WorkUnit(index=0, candidate=Candidate.of(), iterations=16)
        with ShardedRunner(workers=1) as runner:
            first = runner.run(motivating, optimal_ordering, [unit])
            second = runner.run(motivating, optimal_ordering, [unit])
        assert first[0].source == SOURCE_COMPUTED
        assert second[0].source == SOURCE_MEMORY

    def test_capacity_override_changes_ir_hash(
        self, motivating, optimal_ordering
    ):
        outcomes = evaluate_candidates(
            motivating,
            optimal_ordering,
            [
                Candidate.of(),
                Candidate.of(
                    channel_capacities={motivating.channels[0].name: 7}
                ),
            ],
            iterations=16,
        )
        assert outcomes[0].ir_hash != outcomes[1].ir_hash

    def test_latency_override_changes_digest_not_hash(
        self, motivating, optimal_ordering
    ):
        name = motivating.processes[0].name
        outcomes = evaluate_candidates(
            motivating,
            optimal_ordering,
            [Candidate.of(), Candidate.of({name: 9})],
            iterations=16,
        )
        assert outcomes[0].ir_hash == outcomes[1].ir_hash
        assert outcomes[0].params_digest != outcomes[1].params_digest


class TestDeadlock:
    def test_deadlocking_ordering_is_captured_not_raised(
        self, motivating, deadlock_ordering
    ):
        outcomes = evaluate_candidates(
            motivating, deadlock_ordering, [Candidate.of()], iterations=16
        )
        assert outcomes[0].deadlocked
        assert outcomes[0].deadlock_cycle
        assert outcomes[0].measured_cycle_time is None

    def test_deadlock_is_stored_and_replayed(
        self, motivating, deadlock_ordering, tmp_path
    ):
        from repro.service import invalidate_worker_state

        store = ArtifactStore(tmp_path / "store")
        # workers=1 runs inline in this process; start cold so the first
        # run computes (and files) the artifact rather than answering
        # from a memo another test happened to warm.
        invalidate_worker_state()
        first = evaluate_candidates(
            motivating, deadlock_ordering, [Candidate.of()],
            iterations=16, store=store,
        )
        # workers=1 runs inline in this process; drop the in-process memo
        # so the replay must come from the on-disk store.
        invalidate_worker_state()
        replay = evaluate_candidates(
            motivating, deadlock_ordering, [Candidate.of()],
            iterations=16, store=store,
        )
        assert first[0].source == SOURCE_COMPUTED
        assert replay[0].source == SOURCE_STORE
        assert _measurements(first) == _measurements(replay)


class TestMetrics:
    def test_shard_metric_names(self, motivating, optimal_ordering, tmp_path):
        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        candidates = _candidates(motivating)
        evaluate_candidates(
            motivating, optimal_ordering, candidates,
            iterations=16, workers=2, store=store, metrics=metrics,
        )
        snapshot = metrics.snapshot()
        counters = snapshot["counters"]
        assert counters["dse.shard.units"] == len(candidates)
        assert counters["dse.shard.chunks"] >= 1
        assert counters["dse.shard.computed"] == len(candidates)
        assert counters["dse.shard.memo_hits"] == 0
        assert counters["dse.shard.store_hits"] == 0
        assert counters["dse.shard.deadlocks"] == 0
        assert "dse.shard.run" in snapshot["timers"]
        assert "dse.shard.units_per_worker" in snapshot["histograms"]

    def test_store_stats_merged_under_store_prefix(
        self, motivating, optimal_ordering, tmp_path
    ):
        metrics = MetricsRegistry()
        store = ArtifactStore(tmp_path / "store")
        evaluate_candidates(
            motivating, optimal_ordering, [Candidate.of()],
            iterations=16, store=store, metrics=metrics,
        )
        snapshot = metrics.snapshot()
        assert any(
            name.startswith("store.") for name in snapshot["counters"]
        ), snapshot["counters"]


class TestEdges:
    def test_empty_units_is_empty(self, motivating, optimal_ordering):
        with ShardedRunner(workers=2) as runner:
            assert runner.run(motivating, optimal_ordering, []) == []
        # No units means the pool was never created.

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError):
            ShardedRunner(workers=-1)

    def test_default_ordering_is_declaration_order(self, tiny_pipeline):
        outcomes = evaluate_candidates(
            tiny_pipeline, None, [Candidate.of()], iterations=16
        )
        assert not outcomes[0].deadlocked
        assert outcomes[0].measured_cycle_time is not None
