"""docs/SERVICE.md stays executable.

Every fenced ``bash`` block's ``ermes ...`` lines and every fenced
``python`` block in the service guide run here, verbatim, against the
bundled ``examples/designs/`` — the same docs-as-tests contract the
observability guide carries.  Long-running forms are fenced as ``text``
in the document and are deliberately not executed.
"""

import re
import shlex
import shutil
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "SERVICE.md"


def _fenced_blocks(language):
    pattern = rf"```{language}\n(.*?)```"
    return re.findall(pattern, DOC.read_text(), flags=re.DOTALL)


def _ermes_commands():
    commands = []
    for block in _fenced_blocks("bash"):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("ermes "):
                commands.append(line)
    return commands


@pytest.fixture()
def docs_cwd(tmp_path, monkeypatch):
    """A scratch cwd with the bundled designs at their documented path."""
    shutil.copytree(
        REPO_ROOT / "examples" / "designs",
        tmp_path / "examples" / "designs",
    )
    monkeypatch.chdir(tmp_path)
    return tmp_path


def test_doc_has_commands_and_code():
    assert _ermes_commands()
    assert len(_fenced_blocks("python")) >= 3


@pytest.mark.parametrize(
    "command", _ermes_commands(), ids=lambda c: c[len("ermes "):40]
)
def test_bash_blocks_run(command, docs_cwd, capsys):
    argv = shlex.split(command)[1:]
    assert main(argv) == 0, f"documented command failed: {command}"
    capsys.readouterr()  # swallow the (verified-elsewhere) output


@pytest.mark.parametrize(
    "index,block",
    list(enumerate(_fenced_blocks("python"))),
    ids=lambda value: str(value) if isinstance(value, int) else "block",
)
def test_python_blocks_run(index, block, docs_cwd):
    exec(compile(block, f"SERVICE.md:python[{index}]", "exec"), {})
