"""End-to-end HTTP smoke of ``ermes serve``'s service layer.

A real :class:`~repro.service.ErmesService` on an ephemeral port,
exercised with stdlib ``urllib`` only — submit, poll, fetch, and the
documented error statuses (400 malformed, 404 unknown, 410 failed).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.serialization import ordering_to_dict, system_to_dict
from repro.service import ErmesService


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(url, body):
    request = urllib.request.Request(
        url,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read())


def _poll(base, job_id, deadline_s=30.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        _, job = _get(f"{base}/v1/jobs/{job_id}")
        if job["status"] in ("done", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not settle within {deadline_s}s")


@pytest.fixture(scope="module")
def service():
    with ErmesService(port=0, workers=1, threads=2) as running:
        yield running


@pytest.fixture(scope="module")
def base(service):
    return service.url


def _submit_and_fetch(base, body):
    status, accepted = _post(f"{base}/v1/jobs", body)
    assert status == 202
    job = _poll(base, accepted["id"])
    assert job["status"] == "done", job.get("error")
    status, payload = _get(f"{base}/v1/jobs/{accepted['id']}/result")
    assert status == 200
    return payload["result"]


class TestHappyPath:
    def test_health(self, base, service):
        status, health = _get(f"{base}/v1/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["workers"] == service.workers

    def test_analyze(self, base, motivating, optimal_ordering):
        result = _submit_and_fetch(
            base,
            {
                "op": "analyze",
                "system": system_to_dict(motivating),
                "ordering": ordering_to_dict(optimal_ordering),
            },
        )
        assert result["deadlocked"] is False
        assert result["cycle_time"]["value"] > 0
        assert result["critical_processes"]

    def test_analyze_reports_deadlock_as_result(
        self, base, motivating, deadlock_ordering
    ):
        result = _submit_and_fetch(
            base,
            {
                "op": "analyze",
                "system": system_to_dict(motivating),
                "ordering": ordering_to_dict(deadlock_ordering),
            },
        )
        assert result["deadlocked"] is True
        assert result["cycle"]

    def test_order(self, base, motivating):
        result = _submit_and_fetch(
            base, {"op": "order", "system": system_to_dict(motivating)}
        )
        assert result["ordering"]["gets"]
        assert result["ordering"]["puts"]

    def test_simulate(self, base, motivating, optimal_ordering):
        result = _submit_and_fetch(
            base,
            {
                "op": "simulate",
                "system": system_to_dict(motivating),
                "ordering": ordering_to_dict(optimal_ordering),
                "params": {"iterations": 16},
            },
        )
        assert result["deadlocked"] is False
        assert result["measured_cycle_time"]["value"] > 0

    def test_sweep(self, base, motivating, optimal_ordering):
        name = motivating.processes[0].name
        result = _submit_and_fetch(
            base,
            {
                "op": "sweep",
                "system": system_to_dict(motivating),
                "ordering": ordering_to_dict(optimal_ordering),
                "params": {
                    "iterations": 16,
                    "candidates": [
                        {},
                        {"process_latencies": {name: 2}},
                    ],
                },
            },
        )
        assert len(result["candidates"]) == 2
        assert all(
            c["measured_cycle_time"]["value"] > 0
            for c in result["candidates"]
        )

    def test_jobs_listing_and_metrics(self, base):
        status, listing = _get(f"{base}/v1/jobs")
        assert status == 200
        assert listing["jobs"]
        status, metrics = _get(f"{base}/v1/metrics")
        assert status == 200
        assert metrics["counters"]["service.jobs.submitted"] >= len(
            listing["jobs"]
        )


class TestErrorPaths:
    def _status_of(self, call):
        try:
            call()
        except urllib.error.HTTPError as error:
            body = json.loads(error.read())
            return error.code, body
        raise AssertionError("expected an HTTP error status")

    def test_unknown_op_is_400(self, base, motivating):
        code, body = self._status_of(
            lambda: _post(
                f"{base}/v1/jobs",
                {"op": "frobnicate", "system": system_to_dict(motivating)},
            )
        )
        assert code == 400
        assert "frobnicate" in body["error"]

    def test_invalid_json_is_400(self, base):
        request = urllib.request.Request(
            f"{base}/v1/jobs", data=b"{not json", method="POST"
        )
        code, _ = self._status_of(
            lambda: urllib.request.urlopen(request, timeout=10)
        )
        assert code == 400

    def test_malformed_system_is_400(self, base):
        code, _ = self._status_of(
            lambda: _post(
                f"{base}/v1/jobs", {"op": "analyze", "system": {"bogus": 1}}
            )
        )
        assert code == 400

    def test_unknown_job_is_404(self, base):
        code, _ = self._status_of(lambda: _get(f"{base}/v1/jobs/job-999999"))
        assert code == 404
        code, _ = self._status_of(
            lambda: _get(f"{base}/v1/jobs/job-999999/result")
        )
        assert code == 404

    def test_unknown_route_is_404(self, base):
        code, _ = self._status_of(lambda: _get(f"{base}/v1/nope"))
        assert code == 404

    def test_failed_job_result_is_410(self, base, motivating):
        # A sweep naming a process that does not exist fails the job
        # (not the submission): validation happens at execution time.
        status, accepted = _post(
            f"{base}/v1/jobs",
            {
                "op": "sweep",
                "system": system_to_dict(motivating),
                "params": {
                    "candidates": [{"process_latencies": {"no_such": 1}}]
                },
            },
        )
        assert status == 202
        job = _poll(base, accepted["id"])
        assert job["status"] == "failed"
        code, body = self._status_of(
            lambda: _get(f"{base}/v1/jobs/{accepted['id']}/result")
        )
        assert code == 410
        assert "no_such" in body["error"]
