"""Regression: cache clears propagate to worker processes.

A ``store.clear()`` in the parent bumps the store's *generation stamp*;
every :class:`~repro.service.worker.ShardTask` carries the generation
the parent observed at submit time, and a worker whose process-local
memos were built under an older stamp drops them before touching the
chunk.  Without the stamp (the original bug) a worker would keep serving
``source == "memory"`` answers for artifacts the parent had just
invalidated — these tests pin the computed → memory → *clear* →
computed lifecycle on both the inline and the pooled path.
"""

from __future__ import annotations

import pytest

from repro.service import (
    SOURCE_COMPUTED,
    SOURCE_MEMORY,
    Candidate,
    ShardedRunner,
    WorkUnit,
    invalidate_worker_state,
)
from repro.service import worker as worker_module
from repro.store import ArtifactStore


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def cold_parent():
    """Inline (workers<=1) execution shares this process's memos; start
    each test cold so earlier tests cannot leak warmth in."""
    invalidate_worker_state()
    worker_module._MEMO_GENERATION = None
    yield


UNIT = WorkUnit(index=0, candidate=Candidate.of(), iterations=16)


class TestInlinePath:
    def test_clear_invalidates_the_memo(
        self, motivating, optimal_ordering, store
    ):
        with ShardedRunner(workers=1, store=store) as runner:
            first = runner.run(motivating, optimal_ordering, [UNIT])
            second = runner.run(motivating, optimal_ordering, [UNIT])
            assert first[0].source == SOURCE_COMPUTED
            assert second[0].source == SOURCE_MEMORY

            store.clear()

            third = runner.run(motivating, optimal_ordering, [UNIT])
        # The regression: pre-stamp this answered "memory" — a memo for
        # an artifact the parent had just invalidated.
        assert third[0].source == SOURCE_COMPUTED
        assert third[0].measurement() == first[0].measurement()
        assert third[0].generation == first[0].generation + 1

    def test_same_generation_keeps_memos_warm(
        self, motivating, optimal_ordering, store
    ):
        with ShardedRunner(workers=1, store=store) as runner:
            runner.run(motivating, optimal_ordering, [UNIT])
            for _ in range(3):
                again = runner.run(motivating, optimal_ordering, [UNIT])
                assert again[0].source == SOURCE_MEMORY

    def test_storeless_runs_are_generation_zero(
        self, motivating, optimal_ordering
    ):
        with ShardedRunner(workers=1) as runner:
            outcome = runner.run(motivating, optimal_ordering, [UNIT])[0]
        assert outcome.generation == 0


class TestPooledPath:
    def test_clear_reaches_forked_workers(
        self, motivating, optimal_ordering, store
    ):
        units = [
            WorkUnit(
                index=i,
                candidate=Candidate.of(
                    {motivating.processes[0].name: 1 + i}
                ),
                iterations=16,
            )
            for i in range(4)
        ]
        with ShardedRunner(workers=2, store=store) as runner:
            first = runner.run(motivating, optimal_ordering, units)
            assert all(o.source == SOURCE_COMPUTED for o in first)
            # Same pool, same generation: every answer comes from a
            # worker memo or from the store — nothing is recomputed.
            again = runner.run(motivating, optimal_ordering, units)
            assert all(o.source != SOURCE_COMPUTED for o in again)

            store.clear()

            third = runner.run(motivating, optimal_ordering, units)
            # Store emptied *and* worker memos stamped out: the workers
            # must recompute, and the answers must not change.
            assert all(o.source == SOURCE_COMPUTED for o in third)
        assert [o.measurement() for o in third] == [
            o.measurement() for o in first
        ]

    def test_fresh_pool_starts_cold(self, motivating, optimal_ordering):
        # No store: a brand-new pool inherits nothing from this process
        # (reset initializer), so it must compute even though the parent
        # just did.
        with ShardedRunner(workers=1) as runner:
            runner.run(motivating, optimal_ordering, [UNIT])
        with ShardedRunner(workers=2) as runner:
            outcome = runner.run(motivating, optimal_ordering, [UNIT])[0]
        assert outcome.source == SOURCE_COMPUTED


class TestStampMechanics:
    def test_first_generation_is_adopted_without_invalidation(self):
        worker_module._sync_generation(7)
        assert worker_module._MEMO_GENERATION == 7
        worker_module._MEMO.put("k", "v")
        worker_module._sync_generation(7)
        assert worker_module._MEMO.get("k") == "v"

    def test_generation_change_flushes_memo(self):
        worker_module._sync_generation(7)
        worker_module._MEMO.put("k", "v")
        worker_module._sync_generation(8)
        from repro.perf.cache import MISS

        assert worker_module._MEMO.get("k") is MISS
        assert worker_module._MEMO_GENERATION == 8
