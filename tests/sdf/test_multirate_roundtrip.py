"""Property tests: DSL multirate chains round-trip through repro.sdf.

The ``rate_chain`` front end produces :class:`SdfGraph` specifications;
``streaming_design`` expands them homogeneously and closes the expansion
with a streaming testbench.  These properties pin the contract: the
repetition vector balances every edge, the expansion honors it instance
for instance, and the closed system passes full structural validation
with the ERM1xx lint family clean.
"""

from hypothesis import given, settings

from repro.core import validate_system
from repro.dsl import streaming_design
from repro.lint import lint_system

from tests.strategies import dsl_rate_chains


@given(graph=dsl_rate_chains())
@settings(max_examples=30, deadline=None)
def test_repetition_vector_balances_every_edge(graph):
    assert graph.is_consistent()
    vector = graph.repetition_vector()
    assert all(count >= 1 for count in vector.values())
    for edge in graph.edges:
        assert (
            edge.production * vector[edge.producer]
            == edge.consumption * vector[edge.consumer]
        )
    assert graph.firings_per_iteration() == sum(vector.values())


@given(graph=dsl_rate_chains())
@settings(max_examples=15, deadline=None)
def test_expansion_honors_the_repetition_vector(graph):
    compiled = streaming_design(graph)
    assert compiled.repetitions == graph.repetition_vector()
    for actor in graph.actors:
        instances = compiled.instances_of(actor.name)
        assert len(instances) == compiled.repetitions[actor.name]
        for instance in instances:
            process = compiled.system.process(instance)
            assert process.latency == actor.execution_time


@given(graph=dsl_rate_chains())
@settings(max_examples=15, deadline=None)
def test_streamed_expansion_validates_and_lints_clean(graph):
    compiled = streaming_design(graph)
    validate_system(compiled.system)
    result = lint_system(
        compiled.system, compiled.ordering, select=["ERM1"]
    )
    assert not result.diagnostics
