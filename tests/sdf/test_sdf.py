"""SDF graphs: repetition vectors, HSDF expansion, throughput."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.model import analyze_system
from repro.sdf import SdfGraph, sdf_to_system
from repro.tmg import measured_cycle_time
from repro.model import build_tmg


def rate_pair_graph():
    """The textbook two-actor example: a --(2,3)--> b."""
    graph = SdfGraph("pair")
    graph.add_actor("a", execution_time=1)
    graph.add_actor("b", execution_time=1)
    graph.add_edge("e", "a", "b", production=2, consumption=3)
    return graph


class TestRepetitionVector:
    def test_textbook_pair(self):
        assert rate_pair_graph().repetition_vector() == {"a": 3, "b": 2}

    def test_homogeneous_graph(self):
        graph = SdfGraph()
        graph.add_actor("x")
        graph.add_actor("y")
        graph.add_edge("e", "x", "y")
        assert graph.repetition_vector() == {"x": 1, "y": 1}

    def test_three_actor_chain(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_actor("c")
        graph.add_edge("e1", "a", "b", production=3, consumption=2)
        graph.add_edge("e2", "b", "c", production=1, consumption=3)
        # a:2, b:3, c:1 balances both edges (6 tokens, 3 tokens).
        assert graph.repetition_vector() == {"a": 2, "b": 3, "c": 1}

    def test_inconsistent_cycle_detected(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("e1", "a", "b", production=2, consumption=1)
        graph.add_edge("e2", "b", "a", production=1, consumption=1)
        assert not graph.is_consistent()
        with pytest.raises(ValidationError, match="inconsistent"):
            graph.repetition_vector()

    def test_disconnected_components_each_minimal(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_actor("lonely")
        graph.add_edge("e", "a", "b", production=2, consumption=4)
        vector = graph.repetition_vector()
        assert vector["a"] == 2 and vector["b"] == 1
        assert vector["lonely"] >= 1

    def test_firings_per_iteration(self):
        assert rate_pair_graph().firings_per_iteration() == 5

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            SdfGraph().repetition_vector()

    def test_cd_to_dat_canonical_vector(self):
        """The literature's CD (44.1 kHz) -> DAT (48 kHz) sample-rate
        converter: the canonical repetition vector (147, 147, 98, 28, 32,
        160)."""
        graph = SdfGraph("cd2dat")
        for name in ("cd", "s1", "s2", "s3", "s4", "dat"):
            graph.add_actor(name)
        graph.add_edge("e1", "cd", "s1", production=1, consumption=1)
        graph.add_edge("e2", "s1", "s2", production=2, consumption=3)
        graph.add_edge("e3", "s2", "s3", production=2, consumption=7)
        graph.add_edge("e4", "s3", "s4", production=8, consumption=7)
        graph.add_edge("e5", "s4", "dat", production=5, consumption=1)
        assert graph.repetition_vector() == {
            "cd": 147, "s1": 147, "s2": 98, "s3": 28, "s4": 32, "dat": 160,
        }

    @settings(max_examples=40, deadline=None)
    @given(p=st.integers(1, 6), c=st.integers(1, 6))
    def test_balance_property(self, p, c):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("e", "a", "b", production=p, consumption=c)
        vector = graph.repetition_vector()
        assert p * vector["a"] == c * vector["b"]
        from math import gcd

        assert gcd(vector["a"], vector["b"]) == 1


class TestExpansion:
    def test_instance_counts(self):
        compiled = sdf_to_system(rate_pair_graph())
        assert compiled.instances_of("a") == ("a#0", "a#1", "a#2")
        assert compiled.instances_of("b") == ("b#0", "b#1")
        assert len(compiled.system.processes) == 5

    def test_single_instance_keeps_actor_name(self):
        graph = SdfGraph()
        graph.add_actor("x")
        graph.add_actor("y")
        graph.add_edge("e", "x", "y")
        compiled = sdf_to_system(graph)
        assert compiled.instances_of("x") == ("x",)

    def test_dependency_tokens(self):
        """a fires 3x producing 2 tokens each; b#0 pops tokens 0..2 (needs
        a#0, a#1), b#1 pops 3..5 (needs a#1, a#2) — all same-iteration."""
        compiled = sdf_to_system(rate_pair_graph())
        system = compiled.system
        pairs = {
            (c.producer, c.consumer): c.initial_tokens
            for c in system.channels
            if not c.name.startswith("__serial")
        }
        assert pairs == {
            ("a#0", "b#0"): 0,
            ("a#1", "b#0"): 0,
            ("a#1", "b#1"): 0,
            ("a#2", "b#1"): 0,
        }

    def test_delay_shifts_iterations(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("e", "a", "b", delay=1)  # rates 1:1, one token ahead
        compiled = sdf_to_system(graph)
        (channel,) = [
            c for c in compiled.system.channels
            if not c.name.startswith("__serial")
        ]
        assert channel.initial_tokens == 1

    def test_serialization_chain(self):
        compiled = sdf_to_system(rate_pair_graph())
        serial = [
            c for c in compiled.system.channels
            if c.name.startswith("__serial")
        ]
        # a: 3 instances -> 3 chain edges; b: 2 instances -> 2 edges.
        assert len(serial) == 5
        loopbacks = [c for c in serial if c.initial_tokens == 1]
        assert len(loopbacks) == 2  # one circulating token per actor

    def test_underdelayed_self_loop_rejected(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_edge("e", "a", "a", production=2, consumption=2, delay=1)
        with pytest.raises(ValidationError, match="self-loop"):
            sdf_to_system(graph)

    def test_sufficient_self_loop_dropped(self):
        graph = SdfGraph()
        graph.add_actor("a")
        graph.add_actor("b")
        graph.add_edge("io", "a", "b")
        graph.add_edge("state", "a", "a", delay=1)
        compiled = sdf_to_system(graph)
        assert all("state" not in c.name for c in compiled.system.channels)


@st.composite
def consistent_sdf_chains(draw):
    """Random consistent SDF chains with small rates (bounded expansion)."""
    graph = SdfGraph("hyp")
    n_actors = draw(st.integers(2, 4))
    for i in range(n_actors):
        graph.add_actor(f"a{i}", execution_time=draw(st.integers(1, 8)))
    for i in range(n_actors - 1):
        graph.add_edge(
            f"e{i}", f"a{i}", f"a{i + 1}",
            production=draw(st.integers(1, 3)),
            consumption=draw(st.integers(1, 3)),
            delay=draw(st.integers(0, 2)),
            latency=draw(st.integers(1, 3)),
        )
    return graph


class TestExpansionProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph=consistent_sdf_chains())
    def test_expansion_always_analyzable(self, graph):
        compiled = sdf_to_system(graph)
        vector = graph.repetition_vector()
        assert len(compiled.system.processes) == sum(vector.values())
        perf = analyze_system(compiled.system, compiled.ordering)
        assert perf.cycle_time > 0

    @settings(max_examples=20, deadline=None)
    @given(graph=consistent_sdf_chains())
    def test_iteration_period_covers_serial_work(self, graph):
        """One iteration must last at least every actor's total serial
        compute (its q firings on one hardware unit)."""
        compiled = sdf_to_system(graph)
        vector = graph.repetition_vector()
        period = analyze_system(compiled.system, compiled.ordering).cycle_time
        for actor in graph.actors:
            assert period >= vector[actor.name] * actor.execution_time

    @settings(max_examples=15, deadline=None)
    @given(graph=consistent_sdf_chains())
    def test_execution_matches_analysis(self, graph):
        compiled = sdf_to_system(graph)
        perf = analyze_system(compiled.system, compiled.ordering)
        model = build_tmg(compiled.system, compiled.ordering)
        measured = measured_cycle_time(model.tmg, iterations=100)
        if measured is None or perf.cycle_time == 0:
            return
        assert abs(float(measured) - float(perf.cycle_time)) <= \
            float(perf.cycle_time) * 0.12

    def test_reconvergent_expansion_needs_the_shipped_ordering(self):
        """A reconvergent multirate expansion whose declaration order
        deadlocks — the paper's Section 2 problem resurfacing at the
        instance level — while the compilation's Algorithm-1 ordering
        stays live."""
        from repro.errors import DeadlockError
        from repro.model import is_deadlock_free

        graph = SdfGraph("reconv")
        graph.add_actor("a0", execution_time=8)
        graph.add_actor("a1", execution_time=2)
        graph.add_actor("a2", execution_time=3)
        graph.add_edge("e0", "a0", "a1", production=3, consumption=4,
                       delay=0, latency=3)
        graph.add_edge("e1", "a1", "a2", production=4, consumption=4,
                       delay=3, latency=1)
        graph.add_edge("skip", "a0", "a2", production=3, consumption=4,
                       delay=0, latency=1)
        compiled = sdf_to_system(graph)
        assert not is_deadlock_free(compiled.system)  # declaration order
        assert is_deadlock_free(compiled.system, compiled.ordering)
        perf = analyze_system(compiled.system, compiled.ordering)
        assert perf.cycle_time > 0


class TestThroughput:
    def test_homogeneous_chain_matches_plain_system(self):
        graph = SdfGraph()
        graph.add_actor("x", execution_time=4)
        graph.add_actor("y", execution_time=2)
        graph.add_edge("e", "x", "y", latency=2)
        compiled = sdf_to_system(graph)
        perf = analyze_system(compiled.system)
        # x's serial cycle: exec 4 + channel 2 = 6 bounds the rate.
        assert perf.cycle_time == 6

    def test_multirate_iteration_period(self):
        """With serialization, one graph iteration runs a 3 times (exec 2)
        and b 2 times (exec 1): the analytic period must cover the serial
        a-chain: 3 firings x (exec + sync)."""
        graph = SdfGraph("mr")
        graph.add_actor("a", execution_time=2)
        graph.add_actor("b", execution_time=1)
        graph.add_edge("e", "a", "b", production=2, consumption=3)
        compiled = sdf_to_system(graph)
        perf = analyze_system(compiled.system)
        assert perf.cycle_time >= 3 * 2  # at least the serial a work

    def test_analysis_matches_timed_execution(self):
        compiled = sdf_to_system(rate_pair_graph())
        perf = analyze_system(compiled.system)
        model = build_tmg(compiled.system)
        measured = measured_cycle_time(model.tmg, iterations=120)
        assert measured is not None
        assert abs(float(measured) - float(perf.cycle_time)) <= \
            float(perf.cycle_time) * 0.1

    def test_delay_tokens_pipeline_iterations(self):
        """Extra initial delay on the edge decouples producer and consumer
        iterations: throughput can only improve."""
        def build(delay):
            graph = SdfGraph()
            graph.add_actor("a", execution_time=5)
            graph.add_actor("b", execution_time=5)
            graph.add_edge("e", "a", "b", delay=delay, latency=2)
            return sdf_to_system(graph).system

        tight = analyze_system(build(0)).cycle_time
        slack = analyze_system(build(2)).cycle_time
        assert slack <= tight
