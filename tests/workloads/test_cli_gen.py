"""The ``ermes gen`` subcommand, end to end through ``main()``."""

import json

from repro.cli import main
from repro.core import system_from_dict, system_to_dict, validate_system
from repro.workloads import FAMILIES, generate


class TestList:
    def test_lists_every_family(self, capsys):
        assert main(["gen", "--list"]) == 0
        out = capsys.readouterr().out
        for name in FAMILIES:
            assert name in out

    def test_list_shows_size_semantics(self, capsys):
        main(["gen", "--list"])
        out = capsys.readouterr().out
        assert "subcarrier lanes" in out
        assert "default size" in out


class TestGenerate:
    def test_stdout_json_round_trips(self, capsys):
        assert main(["gen", "ofdm-rx", "--seed", "3", "--size", "3"]) == 0
        data = json.loads(capsys.readouterr().out)
        system = system_from_dict(data)
        validate_system(system)
        assert system_to_dict(system) == system_to_dict(
            generate("ofdm-rx", seed=3, size=3).system
        )

    def test_declared_families_survive_the_json(self, capsys):
        main(["gen", "noc-torus", "--size", "2"])
        data = json.loads(capsys.readouterr().out)
        names = {entry["name"] for entry in data["families"]}
        assert names == {"torus-rows", "torus-cols"}

    def test_output_file_and_summary(self, tmp_path, capsys):
        target = tmp_path / "wl.json"
        code = main(["gen", "butterfly", "--seed", "1", "-o", str(target)])
        assert code == 0
        out = capsys.readouterr().out
        assert "butterfly-s2-seed1" in out
        assert f"written to {target}" in out
        assert "declared families" in out
        system = system_from_dict(json.loads(target.read_text()))
        validate_system(system)


class TestErrors:
    def test_missing_family_exits_two(self, capsys):
        assert main(["gen"]) == 2
        assert "family name is required" in capsys.readouterr().err

    def test_unknown_family_exits_two(self, capsys):
        assert main(["gen", "warp-core"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload family 'warp-core'" in err
        assert "ofdm-rx" in err  # the catalog is listed in the error

    def test_undersized_request_exits_two(self, capsys):
        assert main(["gen", "noc-torus", "--size", "1"]) == 2
        assert "at least a 2x2" in capsys.readouterr().err
