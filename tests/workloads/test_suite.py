"""The workload suite: five seeded families, deterministic and validated."""

import random

import pytest

from repro.core import ChannelOrdering, system_to_dict, validate_system
from repro.errors import ValidationError
from repro.ir import lower
from repro.sym import verify_families
from repro.workloads import FAMILIES, Workload, family_names, generate
from repro.workloads.suite import synthetic_soc_seeded


class TestCatalog:
    def test_five_families_published(self):
        assert family_names() == tuple(FAMILIES)
        assert set(family_names()) == {
            "bursty-soc", "butterfly", "noc-torus", "ofdm-rx",
            "rate-converter",
        }

    def test_every_spec_has_size_help(self):
        for spec in FAMILIES.values():
            assert spec.default_size >= 1
            assert spec.size_help

    def test_unknown_family_rejected(self):
        with pytest.raises(ValidationError, match="unknown workload family"):
            generate("fft-banks")

    def test_unknown_family_error_lists_the_catalog(self):
        with pytest.raises(ValidationError, match="noc-torus"):
            generate("nope")


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestEveryFamily:
    def test_generates_a_valid_system(self, family):
        workload = generate(family, seed=1)
        assert isinstance(workload, Workload)
        assert workload.family == family
        validate_system(workload.system)

    def test_default_size_applied(self, family):
        workload = generate(family, seed=0)
        assert workload.size == FAMILIES[family].default_size

    def test_deterministic_per_seed(self, family):
        first = generate(family, seed=5)
        second = generate(family, seed=5)
        assert system_to_dict(first.system) == system_to_dict(second.system)

    def test_seed_matters(self, family):
        a = system_to_dict(generate(family, seed=0).system)
        b = system_to_dict(generate(family, seed=1).system)
        assert a != b

    def test_declared_families_verify(self, family):
        system = generate(family, seed=2).system
        ir = lower(system, ChannelOrdering.declaration_order(system))
        verified = verify_families(ir, system.declared_families)
        assert len(verified) == len(system.declared_families)


class TestSizes:
    def test_size_scales_ofdm_lanes(self):
        small = generate("ofdm-rx", size=2)
        large = generate("ofdm-rx", size=5)
        assert len(large.system.processes) > len(small.system.processes)

    def test_ofdm_declares_the_subcarrier_family(self):
        system = generate("ofdm-rx", size=3).system
        (family,) = system.declared_families
        assert family.name == "subcarriers"
        assert family.replicas == 3

    def test_undersized_request_rejected(self):
        with pytest.raises(ValidationError):
            generate("ofdm-rx", size=1)

    def test_rate_converter_expansion_is_bounded(self):
        for seed in range(6):
            workload = generate("rate-converter", seed=seed)
            # The generator redraws rate menus until the homogeneous
            # expansion stays small enough to analyze in a test suite.
            assert len(workload.system.processes) <= 64


class TestSeededSoc:
    def test_matches_core_generator_stream(self):
        ours = synthetic_soc_seeded(16, random.Random(3))
        from repro.core.generators import synthetic_soc

        theirs = synthetic_soc(16, rng=random.Random(3))
        assert system_to_dict(ours) == system_to_dict(theirs)
