"""Tests for the seeded workload suite (repro.workloads)."""
