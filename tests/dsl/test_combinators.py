"""The combinator catalog: composition shapes and call-site errors."""

import pytest

from repro.core import validate_system
from repro.dsl import (
    Wire,
    butterfly,
    fanout,
    join,
    mesh,
    parallel,
    pipe,
    reduce_tree,
    replicate,
    ring,
    sink_stage,
    source_stage,
    stage,
)
from repro.dsl import testbenched as close_ports  # avoid pytest collection
from repro.errors import CompositionError


def lane(i, latency=3, wire=Wire()):
    return stage(f"w{i}", latency=latency, wire=wire)


class TestStageFactories:
    def test_stage_exposes_typed_ports(self):
        wire = Wire(elements=4, rate=2)
        design = stage("s", latency=2, inputs=2, outputs=[("a", wire)])
        assert [str(p) for p in design.inputs] == ["s.in0", "s.in1"]
        (out,) = design.outputs
        assert (out.label, out.wire) == ("a", wire)

    def test_source_and_sink_are_testbench_kinds(self):
        system = pipe(
            source_stage("src"), stage("w"), sink_stage("snk")
        ).build()
        assert [p.name for p in system.sources()] == ["src"]
        assert [p.name for p in system.sinks()] == ["snk"]
        assert [p.name for p in system.workers()] == ["w"]


class TestPipe:
    def test_channels_follow_the_producer_port(self):
        system = pipe(
            source_stage("src"), stage("a"), stage("b"), sink_stage("snk")
        ).build()
        assert system.channel_names == ("src.out", "a.out", "b.out")

    def test_arity_mismatch_names_both_sides(self):
        with pytest.raises(
            CompositionError,
            match=r"pipe: 'a' exposes 2 output\(s\) but 'b' expects "
                  r"1 input\(s\)",
        ):
            pipe(stage("a", outputs=2), stage("b"))

    def test_port_type_checked_per_connection(self):
        with pytest.raises(CompositionError, match="port type mismatch"):
            pipe(
                stage("a", wire=Wire(elements=8)),
                stage("b", wire=Wire(elements=2)),
            )

    def test_empty_pipe_rejected(self):
        with pytest.raises(CompositionError, match="needs at least one"):
            pipe()


class TestParallelAndReplicate:
    def test_aligned_lanes_declare_interchangeable_family(self):
        design = close_ports(
            parallel(*(lane(i) for i in range(3)), family="lanes")
        )
        (family,) = design.build(name="p").declared_families
        assert (family.name, family.kind) == ("lanes", "interchangeable")
        assert family.replicas == 3

    def test_aligned_lanes_get_an_auto_named_claim(self):
        design = close_ports(parallel(lane(0), lane(1)))
        (family,) = design.build(name="p").declared_families
        assert family.name == "lanes:w0"

    def test_misaligned_lanes_without_family_declare_nothing(self):
        design = close_ports(
            parallel(lane(0), pipe(stage("a"), stage("b")))
        )
        assert design.build(name="p").declared_families == ()

    def test_misaligned_lanes_with_family_rejected(self):
        with pytest.raises(
            CompositionError, match="do not structurally align"
        ):
            parallel(lane(0), stage("two", inputs=2), family="lanes")

    def test_replicate_builds_fresh_lanes(self):
        design = close_ports(replicate(4, lane, family="lanes"))
        (family,) = design.build(name="r").declared_families
        assert family.replicas == 4

    def test_replicate_count_must_be_positive(self):
        with pytest.raises(CompositionError, match="count must be >= 1"):
            replicate(0, lane)


class TestFanoutJoinReduce:
    def test_fanout_spreads_head_over_lanes(self):
        head = stage("split", outputs=3)
        tail = stage("merge", inputs=3)
        design = fanout(head, *(lane(i) for i in range(3)), family="lanes")
        system = close_ports(pipe(design, tail)).build(name="fj")
        validate_system(system)
        assert {f.name for f in system.declared_families} == {"lanes"}
        assert system.successors("split") == ("w0", "w1", "w2")

    def test_join_gathers_lanes_into_tail(self):
        system = close_ports(
            pipe(
                stage("split", outputs=2),
                join(lane(0), lane(1), tail=stage("merge", inputs=2),
                     family="lanes"),
            )
        ).build(name="j")
        assert system.predecessors("merge") == ("w0", "w1")

    def test_fanout_needs_a_lane(self):
        with pytest.raises(CompositionError, match="at least one lane"):
            fanout(stage("h", outputs=0))

    def test_reduce_tree_shape(self):
        design = reduce_tree(
            [stage(f"leaf{i}") for i in range(4)],
            lambda level, index, fan_in: stage(
                f"red{level}_{index}", inputs=fan_in
            ),
            arity=2,
        )
        system = close_ports(design).build(name="tree")
        assert system.predecessors("red1_0") == ("red0_0", "red0_1")

    def test_reduce_tree_arity_floor(self):
        with pytest.raises(CompositionError, match="arity must be >= 2"):
            reduce_tree([stage("a")], lambda *_: stage("r"), arity=1)


class TestFabrics:
    def test_ring_declares_cyclic_family(self):
        parts = [
            stage(f"st{i}", inputs=["ring_in", "in"],
                  outputs=["ring_out", "out"])
            for i in range(4)
        ]
        system = close_ports(ring(parts, tokens=1, family="ring")) \
            .build(name="ring4")
        (family,) = system.declared_families
        assert (family.kind, family.replicas) == ("cyclic", 4)

    def test_tokenless_ring_rejected(self):
        parts = [stage(f"st{i}") for i in range(2)]
        with pytest.raises(CompositionError, match="deadlocks under every"):
            ring(parts, tokens=0)

    def test_torus_declares_row_and_column_families(self):
        system = close_ports(mesh(3, 3, wrap=True, tokens=1)) \
            .build(name="torus")
        assert {f.name for f in system.declared_families} == {
            "torus-rows", "torus-cols",
        }
        assert all(f.kind == "cyclic" for f in system.declared_families)

    def test_open_mesh_declares_nothing(self):
        system = close_ports(mesh(2, 3)).build(name="mesh")
        assert system.declared_families == ()
        validate_system(system)

    def test_wrapped_mesh_needs_tokens(self):
        with pytest.raises(CompositionError, match="at least one token"):
            mesh(2, 2, wrap=True, tokens=0)

    def test_butterfly_declares_one_family_per_bit(self):
        system = close_ports(butterfly(3)).build(name="bfly")
        assert {f.name for f in system.declared_families} == {
            "bit0", "bit1", "bit2",
        }

    def test_butterfly_bits_floor(self):
        with pytest.raises(CompositionError, match="bits must be >= 1"):
            butterfly(0)


class TestTestbenched:
    def test_per_port_mode_keeps_lane_symmetry(self):
        design = close_ports(replicate(2, lane, family="lanes"))
        (family,) = design.build(name="tb").declared_families
        # Each lane's private source and sink joined its replica block.
        assert all(len(block) == 3 for block in family.process_blocks)

    def test_shared_mode_uses_one_source_and_sink(self):
        system = close_ports(
            replicate(2, lane, family="lanes"), shared=True
        ).build(name="tb")
        assert len(system.sources()) == 1
        assert len(system.sinks()) == 1
