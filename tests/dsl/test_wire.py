"""Wire: typed port metadata and the latency/capacity derivation."""

import pytest

from repro.dsl import Wire, wire_for_latency
from repro.errors import ValidationError


class TestValidation:
    def test_elements_must_be_positive(self):
        with pytest.raises(ValidationError, match="elements must be >= 1"):
            Wire(elements=0)

    def test_rate_must_be_positive(self):
        with pytest.raises(ValidationError, match="rate must be >= 1"):
            Wire(rate=0)

    def test_setup_must_be_nonnegative(self):
        with pytest.raises(ValidationError, match="setup must be >= 0"):
            Wire(setup=-1)

    def test_depth_must_be_nonnegative(self):
        with pytest.raises(ValidationError, match="depth must be >= 0"):
            Wire(depth=-1)

    def test_tokens_must_be_nonnegative(self):
        with pytest.raises(ValidationError, match="tokens must be >= 0"):
            Wire(tokens=-2)


class TestDerivation:
    def test_latency_is_ceil_elements_over_rate(self):
        assert Wire(elements=32, rate=16).latency == 2
        assert Wire(elements=33, rate=16).latency == 3
        assert Wire(elements=8, rate=8).latency == 1

    def test_setup_adds_handshake_cycles(self):
        assert Wire(elements=4, rate=2, setup=3).latency == 5

    def test_latency_floor_is_one(self):
        assert Wire().latency == 1

    def test_capacity_is_depth(self):
        assert Wire(depth=4).capacity == 4
        assert Wire().capacity == 0


class TestComposition:
    def test_compatible_ignores_buffering(self):
        a = Wire(elements=8, rate=2, depth=0)
        b = Wire(elements=8, rate=2, depth=7, setup=3, tokens=1)
        assert a.compatible(b) and b.compatible(a)

    def test_incompatible_payloads(self):
        assert not Wire(elements=8).compatible(Wire(elements=4))
        assert not Wire(rate=2).compatible(Wire(rate=1))

    def test_merged_takes_conservative_union(self):
        a = Wire(elements=8, rate=2, setup=1, depth=3, tokens=0)
        b = Wire(elements=8, rate=2, setup=2, depth=1, tokens=1)
        merged = a.merged(b)
        assert merged == Wire(elements=8, rate=2, setup=2, depth=3, tokens=1)

    def test_buffered_and_preloaded_return_new_wires(self):
        base = Wire(elements=4)
        assert base.buffered(5).depth == 5
        assert base.preloaded(2).tokens == 2
        assert base.depth == 0 and base.tokens == 0  # frozen original


class TestWireForLatency:
    @pytest.mark.parametrize("latency", [1, 2, 5, 16])
    def test_round_trips_the_derivation(self, latency):
        assert wire_for_latency(latency).latency == latency

    def test_buffering_passthrough(self):
        wire = wire_for_latency(3, depth=4, tokens=1)
        assert (wire.capacity, wire.tokens) == (4, 1)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValidationError, match="latency must be >= 1"):
            wire_for_latency(0)
