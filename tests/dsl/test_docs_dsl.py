"""docs/DSL.md stays executable.

Every fenced ``python`` block in the DSL guide runs here verbatim, and
every ``ermes ...`` line inside the fenced ``bash`` blocks runs through
``main()`` — **sequentially, in document order, in one shared scratch
directory**, so the guide can document real pipelines whose later
commands consume files the earlier ones wrote (``gen`` → ``lint`` →
``order`` → ``analyze`` → ``verify``).  That is the one deliberate
departure from the per-command fresh-cwd contract of the service guide.
"""

import re
import shlex
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC = REPO_ROOT / "docs" / "DSL.md"


def _fenced_blocks(language):
    pattern = rf"```{language}\n(.*?)```"
    return re.findall(pattern, DOC.read_text(), flags=re.DOTALL)


def _ermes_pipeline():
    commands = []
    for block in _fenced_blocks("bash"):
        for line in block.splitlines():
            line = line.strip()
            if line.startswith("ermes "):
                commands.append(line)
    return commands


def test_doc_has_commands_and_code():
    assert len(_ermes_pipeline()) >= 4
    assert len(_fenced_blocks("python")) >= 3


def test_bash_pipeline_runs_in_order(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    for command in _ermes_pipeline():
        argv = shlex.split(command)[1:]
        assert main(argv) == 0, f"documented command failed: {command}"
        capsys.readouterr()  # swallow the (verified-elsewhere) output


@pytest.mark.parametrize(
    "index, block",
    list(enumerate(_fenced_blocks("python"))),
    ids=lambda value: value if isinstance(value, int) else "code",
)
def test_python_blocks_run(index, block):
    namespace = {"__name__": f"docs_dsl_block_{index}"}
    exec(compile(block, f"docs/DSL.md#python-{index}", "exec"), namespace)
