"""Tests for the compositional design DSL (repro.dsl)."""
