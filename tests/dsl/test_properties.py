"""Property tests: every combinator elaborates to a valid, honest system."""

from hypothesis import given, settings

from repro.core import ChannelOrdering, validate_system
from repro.ir import lower
from repro.model import analyze_system
from repro.ordering import channel_ordering
from repro.sym import verify_families

from tests.strategies import (
    dsl_combinator_systems,
    replicated_family_systems,
)


@given(system=dsl_combinator_systems())
@settings(max_examples=40, deadline=None)
def test_combinator_systems_are_valid(system):
    """Whatever a combinator builds passes full structural validation."""
    validate_system(system)


@given(system=dsl_combinator_systems())
@settings(max_examples=30, deadline=None)
def test_declared_families_always_verify(system):
    """A family the DSL declares is a fact, never an overclaim: every
    claim on the elaborated system verifies against the lowered program
    (exactly, or up to statement reordering for shared endpoints)."""
    ir = lower(system, ChannelOrdering.declaration_order(system))
    verified = verify_families(ir, system.declared_families)
    assert len(verified) == len(system.declared_families)


@given(system=dsl_combinator_systems())
@settings(max_examples=20, deadline=None)
def test_combinator_systems_are_analyzable(system):
    """Algorithm 1 finds a deadlock-free ordering and the TMG analysis
    yields a finite positive cycle time for every composition."""
    performance = analyze_system(system, channel_ordering(system))
    assert performance.cycle_time >= 1


@given(system=replicated_family_systems())
@settings(max_examples=25, deadline=None)
def test_replicated_strategies_declare_verifying_families(system):
    assert system.declared_families
    ir = lower(system, ChannelOrdering.declaration_order(system))
    verified = verify_families(ir, system.declared_families)
    assert len(verified) == len(system.declared_families)
    for family in verified:
        assert family.family.replicas >= 2
