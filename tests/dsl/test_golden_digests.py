"""Golden structural digests: the DSL refactor changed no elaborated system.

Every hand-built generator was rebuilt on top of ``repro.dsl``; these
digests pin the exact lowered-program identity (process/channel tables,
latencies, capacities, tokens, default statement order) each produced
*before* the refactor.  A digest change here means the refactor altered
a published system — never accept a new value without diffing the
elaborated graphs.
"""

import pytest

from repro.core import (
    ChannelOrdering,
    fork_join,
    mesh_soc,
    motivating_example,
    pipeline,
    ring_soc,
    synthetic_soc,
)
from repro.ir import structural_hash_of

GOLDEN = {
    "motivating": (
        lambda: motivating_example(),
        "e58609bdcd544c1b07ddbd91a9f196f4e35a20347339da124c6079dc4281dcdf",
    ),
    "synthetic_soc_24_seed0": (
        lambda: synthetic_soc(24, seed=0),
        "75f9e0274632f7485138c5dc368f477938fee806e7c8570b7fa99a178739ac90",
    ),
    "synthetic_soc_60_seed7": (
        lambda: synthetic_soc(60, seed=7),
        "3bdd654c1324d6cd1ee998d653532169331b72659f6ec0e34feb46cd44e7c267",
    ),
    "pipeline_5": (
        lambda: pipeline(5),
        "f7b28a7474f420f6b81f26510af4dbd567f9243579d43d52195409239313d03f",
    ),
    "fork_join_3": (
        lambda: fork_join(3),
        "969d8e959e28c5086dd2ec46e334372b1bf981e921c3ea20ffc4ed5f88f461e9",
    ),
    "ring_soc_6": (
        lambda: ring_soc(6),
        "b833de5d19105dee5f72149957cd7abd2abfa58e053f4b0fdfe26bf83e672547",
    ),
    "mesh_soc_3x4": (
        lambda: mesh_soc(3, 4),
        "ec68c78403d587d9a7e0981cf0472c73bb3db8ca74b965f2e5c8a2d8d37308fa",
    ),
}


@pytest.mark.parametrize("case", sorted(GOLDEN))
def test_generator_digest_is_pinned(case):
    factory, expected = GOLDEN[case]
    system = factory()
    digest = structural_hash_of(
        system, ChannelOrdering.declaration_order(system)
    )
    assert digest == expected, (
        f"{case}: structural hash drifted — the DSL elaboration no longer "
        "reproduces the pre-refactor system"
    )
