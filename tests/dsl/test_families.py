"""Declared families: verification, serialization, and the ERM701 fast path."""

import pytest

from repro.core import ChannelOrdering, system_from_dict, system_to_dict
from repro.dsl import Wire, pipe, replicate, ring, sink_stage, stage
from repro.dsl import testbenched as close_ports
from repro.ir import lower
from repro.lint import lint_system
from repro.lint.context import LintContext
from repro.sym import verify_families


def lanes_system(k=3, latency=3):
    design = close_ports(
        replicate(
            k,
            lambda i: stage(f"w{i}", latency=latency),
            family="lanes",
        )
    )
    return design.build(name="lanes")


def shared_tail_system(k=3):
    """Lanes gathered into one shared sink: symmetric only up to ordering."""
    design = close_ports(
        pipe(
            replicate(k, lambda i: stage(f"w{i}", latency=3), family="lanes"),
            sink_stage("gather", inputs=k),
        )
    )
    return design.build(name="gathered")


def ring_system(k=4):
    parts = [
        stage(f"st{i}", inputs=["ring_in", "in"],
              outputs=["ring_out", "out"], wire=Wire())
        for i in range(k)
    ]
    return close_ports(ring(parts, tokens=1, family="ring")) \
        .build(name=f"ring{k}")


def lowered(system):
    return lower(system, ChannelOrdering.declaration_order(system))


class TestVerification:
    def test_per_lane_testbenches_verify_exactly(self):
        system = lanes_system()
        (verified,) = verify_families(
            lowered(system), system.declared_families
        )
        assert verified.exact
        assert len(verified.generators) == 2  # k-1 adjacent transpositions

    def test_shared_endpoint_downgrades_to_order_relaxed(self):
        system = shared_tail_system()
        (verified,) = verify_families(
            lowered(system), system.declared_families
        )
        assert not verified.exact

    def test_cyclic_ring_verifies_exactly(self):
        system = ring_system()
        (verified,) = verify_families(
            lowered(system), system.declared_families
        )
        assert verified.exact
        assert verified.family.kind == "cyclic"
        assert len(verified.generators) == 1  # one rotation generator

    def test_latency_drift_alone_keeps_the_family(self):
        # Process latencies are configuration (DSE reassigns them per
        # implementation), not structure: the family survives.
        system = lanes_system()
        slowed = system.with_process_latencies({"w0": 99})
        (verified,) = verify_families(
            lowered(slowed), slowed.declared_families
        )
        assert verified.exact

    def test_channel_attribute_drift_drops_the_family(self):
        system = lanes_system()
        # Deepen one lane's FIFO after declaration: the lanes are no
        # longer copies under any policy, so the claim is dropped.
        asymmetric = system.with_channel_capacities({"w0.out": 5})
        assert verify_families(
            lowered(asymmetric), asymmetric.declared_families
        ) == ()


class TestSerialization:
    def test_families_round_trip_through_dict(self):
        system = lanes_system()
        clone = system_from_dict(system_to_dict(system))
        assert clone.declared_families == system.declared_families
        (verified,) = verify_families(
            lowered(clone), clone.declared_families
        )
        assert verified.exact

    def test_families_survive_capacity_resizing(self):
        system = lanes_system()
        resized = system.with_channel_capacities(
            {name: 2 for name in system.channel_names}
        )
        assert resized.declared_families == system.declared_families


class TestErm701FastPath:
    def test_declared_family_is_reported_as_declared(self):
        result = lint_system(lanes_system(), select=["ERM701"])
        findings = [d for d in result.diagnostics if d.rule == "ERM701"]
        # One diagnostic per orbit: workers, per-lane sources, per-lane sinks.
        assert len(findings) == 3
        assert all(
            "declared by the composition layer as 'lanes'" in d.message
            for d in findings
        )
        (worker_finding,) = [d for d in findings if "'w0'" in d.message]
        assert "'w0', 'w1', 'w2'" in worker_finding.message

    def test_shared_endpoint_wording_names_the_serialization(self):
        result = lint_system(shared_tail_system(), select=["ERM701"])
        findings = [d for d in result.diagnostics if d.rule == "ERM701"]
        assert findings
        assert all(
            "up to statement reordering" in d.message for d in findings
        )
        assert all("shared" in d.message for d in findings)

    def test_declared_families_skip_the_canonical_search(self, monkeypatch):
        """ERM701's fast path must not run canonical labeling at all."""

        def forbidden(self, policy, small_only=False):
            raise AssertionError(
                "ERM701 ran the canonical-labeling search despite "
                "declared families"
            )

        monkeypatch.setattr(LintContext, "_analyze_symmetry", forbidden)
        result = lint_system(lanes_system(), select=["ERM701"])
        assert any(d.rule == "ERM701" for d in result.diagnostics)

    def test_undeclared_replication_still_rediscovered(self):
        """Without declarations the search path still finds the family."""
        design = close_ports(
            replicate(2, lambda i: stage(f"w{i}", latency=3))
        )
        system = design.build(name="anon")
        # Auto-named claim exists; strip it to exercise the search path.
        bare = system_from_dict(
            {
                key: value
                for key, value in system_to_dict(system).items()
                if key != "families"
            }
        )
        assert bare.declared_families == ()
        result = lint_system(bare, select=["ERM701"])
        findings = [d for d in result.diagnostics if d.rule == "ERM701"]
        assert findings
        assert all("declared" not in d.message for d in findings)
        assert any("'w0', 'w1'" in d.message for d in findings)
