"""Design: the open netlist, its call-site errors, and elaboration."""

import pytest

from repro.core import ProcessKind, validate_system
from repro.dsl import Design, Wire, wire_for_latency
from repro.errors import CompositionError


def linear_design():
    design = Design("lin")
    design.source("src", latency=1)
    design.worker("mid", latency=4)
    design.sink("snk", latency=1)
    design.connect("i", "src", "mid", wire=wire_for_latency(2))
    design.connect("o", "mid", "snk", wire=wire_for_latency(1))
    return design


class TestNodes:
    def test_duplicate_node_rejected(self):
        design = Design("d")
        design.worker("a")
        with pytest.raises(CompositionError, match="duplicate node 'a'"):
            design.source("a")

    def test_kinds_reach_the_elaborated_system(self):
        system = linear_design().build()
        assert system.process("src").kind is ProcessKind.SOURCE
        assert system.process("mid").kind is ProcessKind.WORKER
        assert system.process("snk").kind is ProcessKind.SINK

    def test_node_latency_of_unknown_node(self):
        with pytest.raises(CompositionError, match="unknown node 'ghost'"):
            Design("d").node_latency("ghost")


class TestConnect:
    def test_unknown_producer_fails_at_call_site(self):
        design = Design("d")
        design.worker("a")
        with pytest.raises(
            CompositionError,
            match="channel 'c' producer 'ghost' is not a node of this design",
        ):
            design.connect("c", "ghost", "a")

    def test_unknown_consumer_names_the_role(self):
        design = Design("d")
        design.worker("a")
        with pytest.raises(
            CompositionError,
            match="channel 'c' consumer 'typo' is not a node",
        ):
            design.connect("c", "a", "typo")

    def test_self_loop_rejected(self):
        design = Design("d")
        design.worker("a")
        with pytest.raises(CompositionError, match="self-loop on 'a'"):
            design.connect("c", "a", "a")

    def test_duplicate_channel_rejected(self):
        design = Design("d")
        design.worker("a")
        design.worker("b")
        design.connect("c", "a", "b")
        with pytest.raises(CompositionError, match="duplicate channel 'c'"):
            design.connect("c", "a", "b")

    def test_channel_physics_derived_from_wire(self):
        system = (
            Design("d")
            .merge(linear_design())
            .build()
        )
        assert system.channel("i").latency == 2
        wired = Design("w")
        wired.source("s")
        wired.worker("a")
        wired.sink("k")
        wired.connect("x", "s", "a", wire=Wire(elements=6, rate=2, depth=3,
                                               tokens=1))
        wired.connect("y", "a", "k")
        built = wired.build()
        channel = built.channel("x")
        assert (channel.latency, channel.capacity, channel.initial_tokens) \
            == (3, 3, 1)


class TestPorts:
    def test_port_on_unknown_node_rejected(self):
        with pytest.raises(CompositionError, match="unknown node 'a'"):
            Design("d").input("a")

    def test_duplicate_port_rejected(self):
        design = Design("d")
        design.worker("a")
        design.output("a", "out")
        with pytest.raises(
            CompositionError, match="duplicate output port a.out"
        ):
            design.output("a", "out")

    def test_wire_ports_type_mismatch(self):
        design = Design("d")
        design.worker("a")
        design.worker("b")
        out_port = design.output("a", wire=Wire(elements=8, rate=4))
        in_port = design.input("b", wire=Wire(elements=2, rate=1))
        with pytest.raises(CompositionError, match="port type mismatch"):
            design.wire_ports(out_port, in_port)

    def test_wire_ports_merges_buffering_and_consumes_ports(self):
        design = Design("d")
        design.source("s")
        design.worker("a")
        design.sink("k")
        out_port = design.output("s", wire=Wire(elements=4, rate=2, depth=2))
        in_port = design.input("a", wire=Wire(elements=4, rate=2, setup=1))
        name = design.wire_ports(out_port, in_port)
        assert name == "s.out"
        assert design.inputs == () and design.outputs == ()
        design.connect("o", "a", "k")
        channel = design.build().channel("s.out")
        assert (channel.latency, channel.capacity) == (3, 2)

    def test_foreign_port_rejected(self):
        design = Design("d")
        design.worker("a")
        other = Design("o")
        other.worker("b")
        foreign = other.output("b")
        own = design.input("a")
        with pytest.raises(
            CompositionError, match="not a dangling output of this design"
        ):
            design.wire_ports(foreign, own)


class TestMergeAndBuild:
    def test_merge_collision_on_nodes(self):
        left = Design("l")
        left.worker("a")
        right = Design("r")
        right.worker("a")
        with pytest.raises(
            CompositionError, match="merging 'r' collides on node"
        ):
            left.merge(right)

    def test_build_rejects_dangling_ports(self):
        design = Design("d")
        design.worker("a")
        design.input("a", "in")
        design.output("a", "out")
        with pytest.raises(
            CompositionError,
            match=r"cannot elaborate with unconnected port\(s\): "
                  r"->a.in, a.out->",
        ):
            design.build()

    def test_allow_dangling_skips_the_check(self):
        design = Design("d")
        design.worker("a")
        design.input("a")
        system = design.build(validate=False, allow_dangling=True)
        assert system.has_process("a")

    def test_declaration_order_is_composition_order(self):
        system = linear_design().build(name="renamed")
        assert system.name == "renamed"
        assert system.process_names == ("src", "mid", "snk")
        assert system.channel_names == ("i", "o")
        validate_system(system)


class TestFamilies:
    def _two_lane_design(self):
        design = Design("lanes")
        design.source("src")
        design.sink("snk")
        for i in range(2):
            design.worker(f"w{i}", latency=3)
            design.connect(f"i{i}", "src", f"w{i}")
            design.connect(f"o{i}", f"w{i}", "snk")
        return design

    def test_declare_family_unknown_member_rejected(self):
        design = self._two_lane_design()
        with pytest.raises(
            CompositionError,
            match="family 'lanes' references unknown node 'w9'",
        ):
            design.declare_family("lanes", "interchangeable",
                                  [["w0"], ["w9"]])

    def test_declared_family_survives_elaboration(self):
        design = self._two_lane_design()
        design.declare_family(
            "lanes", "interchangeable",
            [["w0"], ["w1"]], [["i0", "o0"], ["i1", "o1"]],
        )
        system = design.build()
        (family,) = system.declared_families
        assert family.name == "lanes"
        assert family.process_blocks == (("w0",), ("w1",))

    def test_cross_lane_edge_retracts_interchangeable_claim(self):
        design = self._two_lane_design()
        design.declare_family(
            "lanes", "interchangeable",
            [["w0"], ["w1"]], [["i0", "o0"], ["i1", "o1"]],
        )
        # A hand edge between two lanes contradicts interchangeability:
        # the family must be retracted, not declared falsely.
        design.connect("sneak", "w0", "w1")
        system = design.build()
        assert system.declared_families == ()

    def test_later_connection_extends_the_blocks(self):
        design = self._two_lane_design()
        design.declare_family(
            "lanes", "interchangeable",
            [["w0"], ["w1"]], [["i0", "o0"], ["i1", "o1"]],
        )
        design.worker("t0")
        design.worker("t1")
        design.adopt_process_into_family("w0", "t0")
        design.adopt_process_into_family("w1", "t1")
        design.connect("x0", "w0", "t0")
        design.connect("x1", "w1", "t1")
        design.connect("d0", "t0", "snk")
        design.connect("d1", "t1", "snk")
        (family,) = design.build().declared_families
        assert family.process_blocks == (("w0", "t0"), ("w1", "t1"))
        assert family.channel_blocks == (
            ("i0", "o0", "x0", "d0"), ("i1", "o1", "x1", "d1"),
        )

    def test_misaligned_blocks_freeze_to_nothing(self):
        design = self._two_lane_design()
        design.declare_family(
            "lanes", "interchangeable",
            [["w0"], ["w1"]], [["i0", "o0"], ["i1", "o1"]],
        )
        # Extending only one lane misaligns the blocks: the claim dies
        # quietly at build() instead of overclaiming.
        design.worker("t0")
        design.adopt_process_into_family("w0", "t0")
        design.connect("x0", "w0", "t0")
        design.connect("d0", "t0", "snk")
        assert design.build().declared_families == ()
