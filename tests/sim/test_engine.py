"""Engine-level simulator tests: timing, payloads, deadlock diagnosis."""

import pytest

from repro.core import SystemBuilder, pipeline
from repro.errors import SimulationDeadlock, SimulationError
from repro.model import analyze_system
from repro.sim import Simulator, simulate, utilizations


class TestTimingAgainstPaper:
    def test_suboptimal_measures_20(self, motivating, suboptimal_ordering):
        result = simulate(motivating, suboptimal_ordering, iterations=100)
        assert result.measured_cycle_time("Psnk") == 20

    def test_optimal_measures_12(self, motivating, optimal_ordering):
        result = simulate(motivating, optimal_ordering, iterations=100)
        assert result.measured_cycle_time("Psnk") == 12

    def test_deadlock_raises_with_wait_cycle(self, motivating,
                                             deadlock_ordering):
        with pytest.raises(SimulationDeadlock) as excinfo:
            simulate(motivating, deadlock_ordering, iterations=10)
        assert set(excinfo.value.cycle) == {"P2", "P6", "P5"}

    def test_feedback_system(self, feedback_system):
        result = simulate(feedback_system, iterations=80)
        predicted = analyze_system(feedback_system).cycle_time
        assert result.measured_cycle_time("snk") == predicted


class TestPayloads:
    def test_functional_pipeline(self):
        system = pipeline(2)
        behaviors = {
            "src": lambda k, ins: {"c0": k},
            "stage0": lambda k, ins: {"c1": ins["c0"] * 10},
            "stage1": lambda k, ins: {"c2": ins["c1"] + 1},
        }
        result = simulate(system, behaviors=behaviors, iterations=5)
        assert result.sink_payloads["snk"] == [1, 11, 21, 31, 41]

    def test_stateful_behavior(self):
        system = pipeline(1)
        total = {"sum": 0}

        def accumulate(k, ins):
            total["sum"] += ins["c0"]
            return {"c1": total["sum"]}

        behaviors = {"src": lambda k, ins: {"c0": k + 1},
                     "stage0": accumulate}
        result = simulate(system, behaviors=behaviors, iterations=4)
        assert result.sink_payloads["snk"] == [1, 3, 6, 10]

    def test_preloaded_payload_consumed_first(self, feedback_system):
        seen = []

        def record_a(k, ins):
            seen.append(ins["y"])
            return {"x": f"A{k}"}

        behaviors = {
            "A": record_a,
            "B": lambda k, ins: {"y": f"B{k}", "o": ins["x"]},
        }
        simulate(
            feedback_system,
            behaviors=behaviors,
            iterations=3,
            initial_payloads={"y": ("boot",)},
        )
        assert seen[0] == "boot"
        assert seen[1] == "B0"


class TestEngineMechanics:
    def test_iteration_counts(self, tiny_pipeline):
        result = simulate(tiny_pipeline, iterations=7)
        assert result.iterations["snk"] == 7
        # Upstream processes may run at most a couple of iterations ahead.
        assert result.iterations["A"] >= 7

    def test_invalid_iterations(self, tiny_pipeline):
        with pytest.raises(SimulationError):
            simulate(tiny_pipeline, iterations=0)

    def test_unknown_watch_rejected(self, tiny_pipeline):
        with pytest.raises(SimulationError):
            Simulator(tiny_pipeline).run(iterations=1, watch="ghost")

    def test_trace_recording(self, tiny_pipeline):
        result = Simulator(tiny_pipeline, record_trace=True).run(iterations=2)
        kinds = {event.kind for event in result.trace}
        assert "compute" in kinds
        assert "put" in kinds or "get" in kinds

    def test_trace_disabled_by_default(self, tiny_pipeline):
        assert simulate(tiny_pipeline, iterations=2).trace == ()

    def test_channel_transfer_counts(self, tiny_pipeline):
        result = simulate(tiny_pipeline, iterations=5)
        assert result.channel_transfers["x"] >= 5

    def test_stall_accounting(self, motivating, suboptimal_ordering):
        result = simulate(motivating, suboptimal_ordering, iterations=50)
        # Cycle time 20 with P2 busy only 5 cycles per iteration: most of
        # its time is stalled.
        stats = utilizations(result)
        assert stats["P2"].stall_cycles > 0
        assert 0 < stats["P2"].utilization < 0.5

    def test_stall_plus_compute_bounded_by_time(self, motivating,
                                                suboptimal_ordering):
        result = simulate(motivating, suboptimal_ordering, iterations=50)
        for name, time in result.times.items():
            assert result.compute_cycles[name] + result.stall_cycles[name] \
                <= time


class TestCustomLatencies:
    def test_latency_override_affects_measurement(self, tiny_pipeline):
        slow = Simulator(
            tiny_pipeline, process_latencies={"A": 30}
        ).run(iterations=40)
        assert slow.measured_cycle_time("snk") >= 30

    def test_override_matches_analysis(self, motivating, optimal_ordering):
        overrides = {"P2": 11}
        result = Simulator(
            motivating, optimal_ordering, process_latencies=overrides
        ).run(iterations=60)
        predicted = analyze_system(
            motivating, optimal_ordering, process_latencies=overrides
        ).cycle_time
        assert result.measured_cycle_time("Psnk") == predicted
