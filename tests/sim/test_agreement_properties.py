"""The headline integration property: simulation == analysis.

The paper's claim for the Section 3 model is that the TMG predicts the
performance of the synthesized hardware without simulation.  Here the
discrete-event simulator plays the role of the hardware: for random
systems and random (live) orderings, the steady-state period it measures
must equal the analytic cycle time exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeadlockError, SimulationDeadlock
from repro.model import analyze_system
from repro.ordering import channel_ordering, random_ordering
from repro.sim import agreement_error, simulate
from tests.strategies import layered_systems


def _watch(system):
    sinks = system.sinks()
    return sinks[0].name if sinks else system.process_names[0]


@settings(max_examples=40, deadline=None)
@given(system=layered_systems())
def test_simulation_matches_analysis_under_algorithm_ordering(system):
    ordering = channel_ordering(system)
    predicted = analyze_system(system, ordering).cycle_time
    result = simulate(system, ordering, iterations=60)
    error = agreement_error(result, _watch(system), predicted)
    if predicted == 0:
        return
    assert error is not None
    # Finite-window burst residue only; exact in the common 1-token case.
    assert error <= 0.12


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(), seed=st.integers(0, 50))
def test_simulation_and_analysis_agree_on_deadlock(system, seed):
    """Analysis says deadlock <=> the simulator actually deadlocks."""
    ordering = random_ordering(system, seed=seed)
    try:
        predicted = analyze_system(system, ordering).cycle_time
        analytic_deadlock = False
    except DeadlockError:
        analytic_deadlock = True
        predicted = None
    try:
        result = simulate(system, ordering, iterations=40)
        simulated_deadlock = False
    except SimulationDeadlock:
        simulated_deadlock = True
        result = None
    assert analytic_deadlock == simulated_deadlock
    if not analytic_deadlock and predicted:
        error = agreement_error(result, _watch(system), predicted)
        assert error is not None and error <= 0.12
