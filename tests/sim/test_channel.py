"""Unit tests for simulator channel state (rendezvous and buffered)."""

import pytest

from repro.core import Channel
from repro.errors import SimulationError
from repro.sim import ChannelState


def rendezvous(latency=3) -> ChannelState:
    return ChannelState(Channel("c", "p", "q", latency=latency))


def buffered(latency=3, capacity=2, tokens=0, payloads=()) -> ChannelState:
    return ChannelState(
        Channel("c", "p", "q", latency=latency, capacity=capacity,
                initial_tokens=tokens),
        initial_payloads=tuple(payloads),
    )


class TestRendezvous:
    def test_put_first_blocks(self):
        state = rendezvous()
        outcome = state.offer_put(5, "data")
        assert not outcome.complete
        assert state.waiting_put()

    def test_get_completes_pending_put(self):
        state = rendezvous(latency=3)
        state.offer_put(5, "data")
        outcome = state.offer_get(9)
        assert outcome.complete
        assert outcome.time == 12  # max(5, 9) + 3
        assert outcome.payload == "data"
        assert outcome.peer_wait == 4  # the producer waited 9 - 5

    def test_put_completes_pending_get(self):
        state = rendezvous(latency=2)
        state.offer_get(1)
        outcome = state.offer_put(6, 42)
        assert outcome.complete
        assert outcome.time == 8
        assert outcome.payload == 42
        assert outcome.peer_wait == 5

    def test_simultaneous_arrival_no_wait(self):
        state = rendezvous(latency=1)
        state.offer_get(4)
        outcome = state.offer_put(4, None)
        assert outcome.time == 5
        assert outcome.peer_wait == 0

    def test_fifo_pairing(self):
        state = rendezvous(latency=1)
        state.offer_get(0)
        state.offer_get(10)
        first = state.offer_put(2, "a")
        second = state.offer_put(3, "b")
        assert first.time == 3  # pairs with the get at 0
        assert second.time == 11  # pairs with the get at 10

    def test_transfer_count(self):
        state = rendezvous()
        state.offer_get(0)
        state.offer_put(0, None)
        assert state.transfers == 1

    def test_initial_payloads_rejected(self):
        with pytest.raises(SimulationError):
            ChannelState(Channel("c", "p", "q"), initial_payloads=("x",))


class TestBuffered:
    def test_put_takes_credit_immediately(self):
        state = buffered(latency=3, capacity=2)
        outcome = state.offer_put(4, "d")
        assert outcome.complete
        assert outcome.time == 7  # starts at 4, item visible at 7

    def test_put_blocks_without_credit(self):
        state = buffered(capacity=1)
        assert state.offer_put(0, "a").complete
        assert not state.offer_put(0, "b").complete
        assert state.waiting_put()

    def test_get_blocks_on_empty(self):
        state = buffered()
        assert not state.offer_get(0).complete
        assert state.waiting_get()

    def test_get_waits_for_item_time(self):
        state = buffered(latency=5, capacity=1)
        state.offer_put(0, "x")
        outcome = state.offer_get(1)
        assert outcome.complete
        assert outcome.time == 5
        assert outcome.payload == "x"

    def test_initial_tokens_served_first(self):
        state = buffered(capacity=2, tokens=2, payloads=("a", "b"))
        first = state.offer_get(3)
        assert first.complete and first.payload == "a" and first.time == 3
        second = state.offer_get(4)
        assert second.payload == "b"

    def test_get_releases_credit_for_blocked_put(self):
        state = buffered(latency=1, capacity=1, tokens=1, payloads=("old",))
        blocked = state.offer_put(0, "new")
        assert not blocked.complete
        got = state.offer_get(2)
        assert got.payload == "old"
        resumed = state.resolve_blocked_put()
        assert resumed is not None
        assert resumed.time == 2 + 1  # credit at 2, latency 1

    def test_resolve_blocked_get(self):
        state = buffered(latency=2, capacity=1)
        assert not state.offer_get(0).complete
        state.offer_put(1, "late")
        resumed = state.resolve_blocked_get()
        assert resumed is not None
        assert resumed.payload == "late"
        assert resumed.time == 3
        assert resumed.peer_wait == 3

    def test_resolve_without_blocked_returns_none(self):
        state = buffered()
        assert state.resolve_blocked_put() is None
        assert state.resolve_blocked_get() is None

    def test_too_many_initial_payloads_rejected(self):
        with pytest.raises(SimulationError):
            buffered(tokens=1, payloads=("a", "b"))

    def test_effective_capacity(self):
        assert buffered(capacity=2, tokens=0).effective_capacity == 2
        assert buffered(capacity=1, tokens=3).effective_capacity == 3


class TestPromotion:
    """capacity == 0 with initial tokens is a buffered FIFO, not a
    rendezvous — and the state must mirror the Channel's own verdict."""

    def test_zero_capacity_zero_tokens_is_rendezvous(self):
        state = ChannelState(Channel("c", "p", "q"))
        assert not state.buffered
        assert not state.offer_put(0, "x").complete  # blocks: rendezvous

    def test_zero_capacity_with_tokens_is_buffered(self):
        state = ChannelState(
            Channel("c", "p", "q", initial_tokens=2),
            initial_payloads=("a", "b"),
        )
        assert state.buffered
        assert state.effective_capacity == 2
        # The pre-loaded items serve gets with no producer in sight.
        assert state.offer_get(0).payload == "a"
        assert state.offer_get(1).payload == "b"

    def test_state_agrees_with_channel_properties(self):
        for capacity, tokens in ((0, 0), (0, 2), (3, 1), (2, 0)):
            channel = Channel("c", "p", "q", capacity=capacity,
                              initial_tokens=tokens)
            state = ChannelState(channel, initial_payloads=(None,) * tokens)
            assert state.buffered == channel.is_buffered
            if channel.is_buffered:
                assert state.effective_capacity == channel.effective_capacity
