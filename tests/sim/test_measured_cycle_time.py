"""The warm-up windowing of ``SimulationResult.measured_cycle_time``.

The estimator discards the first half of the completion-time series (the
start-up transient) and averages the second half:

    half  = len(times) // 2
    rate  = (times[-1] - times[half]) / (len(times) - 1 - half)

These tests pin the window arithmetic for odd and even lengths, the
``< 4 -> None`` contract, and the agreement with the analytic cycle time
pi(G) on a known two-process system.
"""

from fractions import Fraction

from repro.model import analyze_system
from repro.sim import SimulationResult, simulate


def result_with(times: list[int], process: str = "P") -> SimulationResult:
    return SimulationResult(
        iterations={process: len(times)},
        times={process: times[-1] if times else 0},
        completion_times={process: times},
        compute_cycles={process: 0},
        stall_cycles={process: 0},
        channel_transfers={},
    )


class TestWindowing:
    def test_even_length(self):
        # 6 samples: window is times[3:], 2 steps -> (62 - 30) / 2
        times = [1, 9, 20, 30, 45, 62]
        assert result_with(times).measured_cycle_time("P") == Fraction(32, 2)

    def test_odd_length(self):
        # 5 samples: window is times[2:], 2 steps -> (40 - 18) / 2
        times = [1, 9, 18, 28, 40]
        assert result_with(times).measured_cycle_time("P") == Fraction(22, 2)

    def test_minimum_length_four(self):
        # 4 samples: window is times[2:], 1 step -> 21 - 14
        times = [2, 7, 14, 21]
        assert result_with(times).measured_cycle_time("P") == Fraction(7)

    def test_transient_is_excluded(self):
        # A huge start-up spike in the first half must not bias the rate.
        slow_start = [100, 101, 102, 103, 105, 107]
        assert result_with(slow_start).measured_cycle_time("P") == Fraction(2)

    def test_steady_series_gives_exact_period(self):
        times = list(range(0, 70, 7))
        assert result_with(times).measured_cycle_time("P") == Fraction(7)


class TestTooShort:
    def test_lengths_below_four_return_none(self):
        for n in range(4):
            times = list(range(0, n * 5, 5))
            assert result_with(times).measured_cycle_time("P") is None

    def test_unknown_process_returns_none(self):
        assert result_with([1, 2, 3, 4]).measured_cycle_time("ghost") is None

    def test_non_monotone_window_returns_none(self):
        # A decreasing tail would yield a negative span; the estimator
        # refuses rather than reporting a nonsense period.
        assert result_with([1, 2, 30, 4]).measured_cycle_time("P") is None


class TestAnalyticAgreement:
    def test_two_process_pipeline_matches_pi(self, tiny_pipeline):
        # tiny_pipeline: src -> A(3) -> B(2) -> snk over rendezvous
        # channels; the simulator's steady-state period must equal the
        # TMG's maximum cycle ratio exactly.
        predicted = analyze_system(tiny_pipeline).cycle_time
        result = simulate(tiny_pipeline, iterations=60)
        for process in ("A", "B"):
            assert result.measured_cycle_time(process) == predicted

    def test_feedback_system_matches_pi(self, feedback_system):
        predicted = analyze_system(feedback_system).cycle_time
        result = simulate(feedback_system, iterations=60)
        assert result.measured_cycle_time("B") == predicted
