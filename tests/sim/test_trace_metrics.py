"""Trace formatting and metrics helpers."""

from fractions import Fraction

from repro.core import pipeline
from repro.sim import (
    SimulationResult,
    Simulator,
    agreement_error,
    format_trace,
    throughput,
    utilizations,
)


def _traced_run(iterations=3):
    return Simulator(pipeline(2), record_trace=True).run(iterations=iterations)


class TestTraceFormatting:
    def test_format_contains_events(self):
        result = _traced_run()
        text = format_trace(result.trace)
        assert "compute" in text
        assert "iter" in text

    def test_format_limit(self):
        result = _traced_run()
        text = format_trace(result.trace, limit=3)
        lines = text.splitlines()
        assert len(lines) == 4  # 3 events + truncation marker
        assert lines[-1].startswith("...")

    def test_trace_sorted_by_time(self):
        result = _traced_run()
        times = [event.time for event in result.trace]
        assert times == sorted(times)

    def test_block_events_recorded(self):
        result = _traced_run()
        kinds = {event.kind for event in result.trace}
        assert kinds & {"block-put", "block-get"}


class TestMetrics:
    def test_throughput_reciprocal(self):
        result = Simulator(pipeline(2)).run(iterations=40)
        period = result.measured_cycle_time("snk")
        assert throughput(result, "snk") == 1 / Fraction(period)

    def test_throughput_none_for_short_run(self):
        result = Simulator(pipeline(2)).run(iterations=2)
        assert throughput(result, "snk") is None

    def test_agreement_error_none_cases(self):
        result = Simulator(pipeline(2)).run(iterations=2)
        assert agreement_error(result, "snk", 10) is None
        full = Simulator(pipeline(2)).run(iterations=40)
        assert agreement_error(full, "snk", 0) is None

    def test_utilization_bounds(self):
        result = Simulator(pipeline(3)).run(iterations=30)
        for stats in utilizations(result).values():
            assert 0.0 <= stats.utilization <= 1.0
            assert 0.0 <= stats.stall_fraction <= 1.0

    def test_utilization_zero_time(self):
        stats = SimulationResult(
            iterations={"p": 0}, times={"p": 0},
            completion_times={"p": []}, compute_cycles={"p": 0},
            stall_cycles={"p": 0}, channel_transfers={},
        )
        util = utilizations(stats)["p"]
        assert util.utilization == 0.0
        assert util.stall_fraction == 0.0

    def test_measured_cycle_time_requires_history(self):
        stats = SimulationResult(
            iterations={"p": 1}, times={"p": 5},
            completion_times={"p": [5]}, compute_cycles={"p": 5},
            stall_cycles={"p": 0}, channel_transfers={},
        )
        assert stats.measured_cycle_time("p") is None
        assert stats.measured_cycle_time("ghost") is None
