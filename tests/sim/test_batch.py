"""The batch engine is bit-identical to the scalar/reference engines.

The vectorized :class:`repro.sim.BatchSimulator` exists for throughput
(``benchmarks/test_bench_simd.py`` gates that); these tests pin down the
other half of its contract: every lane's :class:`SimulationResult` —
results, traces, sink streams, deadlock diagnoses — equals what the
frozen :class:`ReferenceSimulator` produces for that lane alone.
"""

import glob
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChannelOrdering, load_system
from repro.errors import SimulationDeadlock, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import MemorySink
from repro.sim import (
    BatchLane,
    BatchSimulator,
    ReferenceSimulator,
    Simulator,
    batch_enabled_by_env,
    simulate_batch,
)
from tests.strategies import layered_systems

SEED_SYSTEMS = sorted(
    path
    for path in glob.glob("examples/designs/*.json")
    if not path.endswith(".ordering.json")
)


def _reference(system, ordering, lane, iterations):
    """One lane through the reference engine: result or deadlock triple."""
    try:
        return ReferenceSimulator(
            system.with_channel_capacities(lane.channel_capacities or {}),
            ordering,
            process_latencies=lane.process_latencies or {},
        ).run(iterations=iterations)
    except SimulationDeadlock as deadlock:
        return (str(deadlock), deadlock.cycle, deadlock.waiting)


def _latency_lanes(system, seed, count):
    rng = random.Random(seed)
    names = list(system.process_names)
    return [BatchLane()] + [
        BatchLane(
            process_latencies={n: rng.randint(1, 20) for n in names}
        )
        for _ in range(count - 1)
    ]


class TestDifferential:
    @pytest.mark.parametrize("path", SEED_SYSTEMS)
    def test_lanes_match_reference_on_seed_examples(self, path):
        system = load_system(path)
        ordering = ChannelOrdering.declaration_order(system)
        lanes = _latency_lanes(system, seed=11, count=8)
        outcomes = BatchSimulator(system, ordering, lanes=lanes).run(
            iterations=30, on_deadlock="capture"
        )
        for lane, outcome in zip(lanes, outcomes):
            expected = _reference(system, ordering, lane, iterations=30)
            if isinstance(outcome, SimulationDeadlock):
                outcome = (str(outcome), outcome.cycle, outcome.waiting)
            assert outcome == expected

    @pytest.mark.parametrize("path", SEED_SYSTEMS)
    def test_capacity_override_lanes_match_reference(self, path):
        system = load_system(path)
        ordering = ChannelOrdering.declaration_order(system)
        rng = random.Random(5)
        channels = [c.name for c in system.channels]
        caps = {name: rng.randint(1, 4) for name in channels[:2]}
        lanes = [
            BatchLane(),
            BatchLane(channel_capacities=caps),
            BatchLane(
                channel_capacities=dict(caps),
                process_latencies={
                    n: rng.randint(1, 15) for n in system.process_names
                },
            ),
        ]
        simulator = BatchSimulator(system, ordering, lanes=lanes)
        # Two distinct capacity signatures -> two lock-step groups.
        assert simulator.n_groups == 2
        outcomes = simulator.run(iterations=25, on_deadlock="capture")
        for lane, outcome in zip(lanes, outcomes):
            expected = _reference(system, ordering, lane, iterations=25)
            if isinstance(outcome, SimulationDeadlock):
                outcome = (str(outcome), outcome.cycle, outcome.waiting)
            assert outcome == expected

    @settings(max_examples=25, deadline=None)
    @given(system=layered_systems(), seed=st.integers(0, 1000))
    def test_lanes_match_reference_on_random_systems(self, system, seed):
        ordering = ChannelOrdering.declaration_order(system)
        lanes = _latency_lanes(system, seed=seed, count=5)
        outcomes = BatchSimulator(system, ordering, lanes=lanes).run(
            iterations=20, on_deadlock="capture"
        )
        for lane, outcome in zip(lanes, outcomes):
            expected = _reference(system, ordering, lane, iterations=20)
            if isinstance(outcome, SimulationDeadlock):
                outcome = (str(outcome), outcome.cycle, outcome.waiting)
            assert outcome == expected


class TestTraces:
    def test_traces_and_sink_streams_match_scalar(self):
        system = load_system("examples/designs/motivating.json")
        ordering = ChannelOrdering.declaration_order(system)
        overrides = {n: 3 for n in system.process_names}
        sink_batch, sink_scalar = MemorySink(), MemorySink()
        lanes = [
            BatchLane(record_trace=True, sinks=(sink_batch,)),
            BatchLane(process_latencies=overrides, record_trace=True),
        ]
        results = simulate_batch(system, lanes, ordering, iterations=20)
        expected0 = Simulator(
            system, ordering, record_trace=True, sinks=(sink_scalar,)
        ).run(iterations=20)
        expected1 = ReferenceSimulator(
            system, ordering,
            process_latencies=overrides, record_trace=True,
        ).run(iterations=20)
        assert results[0].trace == expected0.trace
        assert results[1].trace == expected1.trace
        assert results[0] == expected0
        assert results[1] == expected1
        # Streaming sinks see the identical event sequence, in the
        # identical emission order (not just after sorting).
        assert sink_batch._events == sink_scalar._events

    def test_untraced_lanes_pay_nothing(self):
        system = load_system("examples/designs/pipeline.json")
        results = simulate_batch(
            system, [BatchLane(), BatchLane()], iterations=10
        )
        assert all(r.trace == () for r in results)


class TestDeadlock:
    def test_raise_mode_matches_reference_diagnosis(self, motivating,
                                                    deadlock_ordering):
        with pytest.raises(SimulationDeadlock) as expected:
            ReferenceSimulator(motivating, deadlock_ordering).run(iterations=5)
        with pytest.raises(SimulationDeadlock) as got:
            BatchSimulator(
                motivating, deadlock_ordering, lanes=[BatchLane()] * 3
            ).run(iterations=5)
        assert str(got.value) == str(expected.value)
        assert got.value.cycle == expected.value.cycle
        assert got.value.waiting == expected.value.waiting

    def test_capture_mode_fills_every_lane(self, motivating,
                                           deadlock_ordering):
        outcomes = BatchSimulator(
            motivating, deadlock_ordering, lanes=[BatchLane()] * 3
        ).run(iterations=5, on_deadlock="capture")
        assert len(outcomes) == 3
        assert all(isinstance(o, SimulationDeadlock) for o in outcomes)

    def test_capture_mode_keeps_healthy_groups_running(self, motivating,
                                                       deadlock_ordering,
                                                       optimal_ordering):
        # One batch cannot mix orderings, but capacity groups can diverge:
        # a deadlocking group must not take the healthy ones down.
        # The deadlock ordering deadlocks at every capacity, so instead
        # run the live ordering and check capture mode returns results.
        outcomes = BatchSimulator(
            motivating, optimal_ordering, lanes=[BatchLane()] * 2
        ).run(iterations=5, on_deadlock="capture")
        assert all(not isinstance(o, SimulationDeadlock) for o in outcomes)


class TestValidation:
    def test_iterations_must_be_positive(self, motivating):
        with pytest.raises(SimulationError, match="iterations must be >= 1"):
            BatchSimulator(motivating, lanes=[BatchLane()]).run(iterations=0)

    def test_unknown_watch_rejected(self, motivating):
        with pytest.raises(SimulationError, match="unknown watch process"):
            BatchSimulator(motivating, lanes=[BatchLane()]).run(
                iterations=5, watch="nope"
            )

    def test_unknown_capacity_override_rejected(self, motivating):
        with pytest.raises(SimulationError, match="unknown channel"):
            BatchSimulator(
                motivating,
                lanes=[BatchLane(channel_capacities={"zzz": 3})],
            )

    def test_bad_on_deadlock_rejected(self, motivating):
        with pytest.raises(SimulationError, match="on_deadlock"):
            BatchSimulator(motivating, lanes=[BatchLane()]).run(
                iterations=5, on_deadlock="ignore"
            )

    def test_empty_batch_returns_no_outcomes(self, motivating):
        assert BatchSimulator(motivating, lanes=[]).run(iterations=5) == []

    def test_latency_only_lanes_are_one_group(self, motivating):
        lanes = _latency_lanes(motivating, seed=1, count=16)
        assert BatchSimulator(motivating, lanes=lanes).n_groups == 1


class TestMetrics:
    def test_batch_counters_recorded(self, motivating):
        metrics = MetricsRegistry()
        lanes = _latency_lanes(motivating, seed=2, count=4)
        simulate_batch(motivating, lanes, iterations=10, metrics=metrics)
        counters = metrics.snapshot()["counters"]
        assert counters["sim.batch.runs"] == 1
        assert counters["sim.batch.lanes"] == 4
        assert counters["sim.batch.groups"] == 1
        assert counters["sim.batch.deadlocked_lanes"] == 0
        assert counters["sim.batch.steps"] > 0
        assert counters["sim.batch.iterations"] > 0


class TestEnvKnob:
    def test_truthy_and_falsy_values(self, monkeypatch):
        for raw, expected in [
            ("1", True), ("true", True), ("YES", True), ("on", True),
            ("0", False), ("false", False), ("off", False), ("junk", False),
        ]:
            monkeypatch.setenv("ERMES_SIM_BATCH", raw)
            assert batch_enabled_by_env() is expected
        monkeypatch.delenv("ERMES_SIM_BATCH")
        assert batch_enabled_by_env() is False
        assert batch_enabled_by_env(default=True) is True
