"""Agreement between the buffered simulator and the buffered TMG model.

Extends the headline simulation==analysis property to FIFO channels: for
random systems with random capacities, the DES and the split-transition
TMG must agree on steady-state throughput, and deeper FIFOs must never
slow the system down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Channel, SystemGraph, pipeline
from repro.model import analyze_system
from repro.sim import simulate
from tests.strategies import layered_systems


def _with_capacities(system: SystemGraph, capacities) -> SystemGraph:
    clone = system.copy()
    for name, capacity in capacities.items():
        channel = clone.channel(name)
        clone._channels[name] = Channel(
            channel.name, channel.producer, channel.consumer,
            latency=channel.latency,
            capacity=max(capacity, channel.initial_tokens),
            initial_tokens=channel.initial_tokens,
        )
    return clone


class TestBufferedPipeline:
    def test_fifo_pipeline_matches_analysis(self):
        system = _with_capacities(
            pipeline(3, process_latency=5, channel_latency=2),
            {f"c{i}": 2 for i in range(4)},
        )
        predicted = analyze_system(system).cycle_time
        result = simulate(system, iterations=80)
        assert result.measured_cycle_time("snk") == predicted

    def test_fifo_faster_than_rendezvous(self):
        rendezvous = pipeline(3, process_latency=5, channel_latency=2)
        buffered = _with_capacities(
            rendezvous, {f"c{i}": 4 for i in range(4)}
        )
        ct_r = simulate(rendezvous, iterations=60).measured_cycle_time("snk")
        ct_b = simulate(buffered, iterations=60).measured_cycle_time("snk")
        assert ct_b <= ct_r


@settings(max_examples=30, deadline=None)
@given(system=layered_systems(), depth=st.integers(1, 4))
def test_buffered_simulation_matches_analysis(system, depth):
    buffered = _with_capacities(
        system, {c.name: depth for c in system.channels}
    )
    predicted = analyze_system(buffered).cycle_time
    result = simulate(buffered, iterations=60)
    watch = system.sinks()[0].name
    measured = result.measured_cycle_time(watch)
    if predicted == 0:
        return
    assert measured is not None
    assert abs(float(measured) - float(predicted)) <= float(predicted) * 0.12


@settings(max_examples=25, deadline=None)
@given(system=layered_systems(), shallow=st.integers(1, 2),
       extra=st.integers(1, 3))
def test_capacity_monotone_in_analysis(system, shallow, extra):
    """Deeper FIFOs never increase the analytic cycle time."""
    small = _with_capacities(
        system, {c.name: shallow for c in system.channels}
    )
    big = _with_capacities(
        system, {c.name: shallow + extra for c in system.channels}
    )
    assert analyze_system(big).cycle_time <= analyze_system(small).cycle_time
