"""The budgeted explicit-state checker: verdicts, budgets, strictness."""

import pytest

from repro.core import SystemBuilder
from repro.core.generators import fork_join, pipeline
from repro.errors import BudgetExceeded, DeadlockError
from repro.obs import MetricsRegistry
from repro.verify import (
    SMALL_SYSTEM_LIMIT,
    Verdict,
    check_deadlock,
    is_small_system,
    verify_ordering,
)


class TestVerdicts:
    def test_live_ordering_is_proven_free(self, motivating,
                                          optimal_ordering):
        result = check_deadlock(motivating, optimal_ordering)
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.proven_free and result.conclusive
        assert result.witness is None
        assert 0 < result.states_explored <= result.state_space_bound

    def test_dead_ordering_yields_a_witness(self, motivating,
                                            deadlock_ordering):
        result = check_deadlock(motivating, deadlock_ordering)
        assert result.verdict is Verdict.DEADLOCKED
        assert result.deadlocked and result.conclusive
        witness = result.witness
        assert witness is not None
        assert witness.cycle  # alternating process/channel names
        assert witness.blocked
        assert "steps" in result.reason

    def test_bfs_witness_is_shortest(self, motivating, deadlock_ordering):
        """BFS + POR still finds the 3-step route into the Listing-1
        deadlock (the reduction preserves shortest deadlock distance
        here; a longer schedule would mean wasted diagnosis reading)."""
        result = check_deadlock(motivating, deadlock_ordering)
        assert len(result.witness.schedule) == 3

    def test_single_chain_system_is_free(self):
        system = (
            SystemBuilder("lonely")
            .source("src", latency=1)
            .process("w", latency=1)
            .sink("snk", latency=1)
            .channel("i", "src", "w", latency=1)
            .channel("o", "w", "snk", latency=1)
            .build()
        )
        result = check_deadlock(system)
        assert result.verdict is Verdict.DEADLOCK_FREE

    def test_por_off_reaches_the_same_verdicts(self, motivating,
                                               deadlock_ordering,
                                               optimal_ordering):
        for ordering, expected in (
            (deadlock_ordering, Verdict.DEADLOCKED),
            (optimal_ordering, Verdict.DEADLOCK_FREE),
        ):
            naive = check_deadlock(motivating, ordering, por=False)
            assert naive.verdict is expected
            assert naive.por_pruned == 0

    def test_por_explores_no_more_states_than_naive(self):
        system = pipeline(4)
        reduced = check_deadlock(system)
        naive = check_deadlock(system, por=False)
        assert reduced.verdict is naive.verdict is Verdict.DEADLOCK_FREE
        assert reduced.states_explored <= naive.states_explored
        assert reduced.por_pruned > 0


class TestBudgets:
    def test_state_budget_yields_inconclusive(self, motivating):
        result = check_deadlock(motivating, budget_states=2)
        assert result.verdict is Verdict.INCONCLUSIVE
        assert not result.conclusive
        assert "state budget exceeded" in result.reason
        assert result.witness is None

    def test_budget_never_silently_passes(self, motivating):
        """An exhausted budget is an explicit third verdict — it must
        not be confused with either proof."""
        result = check_deadlock(motivating, budget_states=2)
        assert not result.proven_free
        assert not result.deadlocked

    def test_invalid_budget_rejected(self, motivating):
        with pytest.raises(ValueError):
            check_deadlock(motivating, budget_states=0)


class TestVerifyOrdering:
    def test_passes_through_on_freedom(self, motivating, optimal_ordering):
        result = verify_ordering(motivating, optimal_ordering)
        assert result.verdict is Verdict.DEADLOCK_FREE

    def test_raises_deadlock_error_with_cycle(self, motivating,
                                              deadlock_ordering):
        with pytest.raises(DeadlockError) as exc:
            verify_ordering(motivating, deadlock_ordering)
        assert exc.value.cycle  # the witness circular wait rides along
        assert "witness schedule" in str(exc.value)

    def test_raises_budget_exceeded_on_inconclusive(self, motivating,
                                                    optimal_ordering):
        with pytest.raises(BudgetExceeded):
            verify_ordering(motivating, optimal_ordering, budget_states=2)


class TestMetrics:
    def test_run_reports_verify_counters(self, motivating,
                                         deadlock_ordering):
        registry = MetricsRegistry()
        result = check_deadlock(motivating, deadlock_ordering,
                                metrics=registry)
        counters = registry.snapshot()["counters"]
        assert counters["verify.runs"] == 1
        assert counters["verify.states.explored"] == result.states_explored
        assert counters["verify.deadlocks"] == 1
        assert "verify.search" in registry.snapshot()["timers"]


class TestSmallSystemGate:
    def test_examples_within_limit(self, motivating):
        assert is_small_system(motivating)
        assert is_small_system(fork_join(4))

    def test_limit_counts_processes_plus_channels(self):
        builder = SystemBuilder("wide").source("src").sink("snk")
        for i in range(SMALL_SYSTEM_LIMIT):
            builder.process(f"w{i}", latency=1)
            builder.channel(f"i{i}", "src", f"w{i}")
            builder.channel(f"o{i}", f"w{i}", "snk")
        system = builder.build()
        assert not is_small_system(system)
