"""The stubborn-set reduction: soundness invariants and actual savings."""

from repro.core import SystemBuilder
from repro.core.generators import fork_join
from repro.verify import (
    TransitionSystem,
    Verdict,
    check_deadlock,
    stubborn_set,
)


def buffered_pipeline(n_stages: int, capacity: int = 1):
    """src -> s0 -> ... -> s(n-1) -> snk with buffered inner channels.

    Buffered endpoints move independently, so the naive interleaving
    explodes while one canonical schedule suffices for deadlock
    detection — the reduction's showcase.
    """
    builder = SystemBuilder(f"bufpipe{n_stages}")
    builder.source("src", latency=1)
    names = [f"s{i}" for i in range(n_stages)]
    for name in names:
        builder.process(name, latency=1)
    builder.sink("snk", latency=1)
    chain = ["src"] + names + ["snk"]
    for i in range(len(chain) - 1):
        builder.channel(
            f"c{i}", chain[i], chain[i + 1], latency=1, capacity=capacity
        )
    return builder.build()


class TestInvariants:
    def exhaustive_states(self, system):
        """Every reachable state, via the naive (unreduced) relation."""
        ts = TransitionSystem(system, None)
        seen = {ts.initial_state()}
        frontier = [ts.initial_state()]
        while frontier:
            state = frontier.pop()
            for action in ts.enabled_actions(state):
                successor = ts.successor(state, action)
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return ts, seen

    def test_stubborn_set_is_a_nonempty_subset_of_enabled(self):
        for system in (fork_join(3), buffered_pipeline(3)):
            ts, states = self.exhaustive_states(system)
            for state in states:
                enabled = ts.enabled_actions(state)
                if not enabled:
                    continue
                stubborn = stubborn_set(ts, state, enabled)
                assert stubborn
                assert set(stubborn) <= set(enabled)

    def test_stubborn_set_is_deterministic(self):
        ts, states = self.exhaustive_states(buffered_pipeline(3))
        for state in states:
            enabled = ts.enabled_actions(state)
            if not enabled:
                continue
            assert stubborn_set(ts, state, enabled) == stubborn_set(
                ts, state, enabled
            )


class TestReduction:
    def test_big_savings_on_buffered_pipelines(self):
        """The acceptance ratio: >= 5x fewer states than naive on a
        6-stage pipeline (the benchmark tracks the exact numbers)."""
        system = buffered_pipeline(6)
        reduced = check_deadlock(system)
        naive = check_deadlock(system, por=False)
        assert reduced.verdict is naive.verdict is Verdict.DEADLOCK_FREE
        assert naive.states_explored >= 5 * reduced.states_explored

    def test_same_verdict_across_many_topologies(self, motivating,
                                                 deadlock_ordering):
        cases = [
            (fork_join(4), None),
            (buffered_pipeline(4), None),
            (motivating, deadlock_ordering),
        ]
        for system, ordering in cases:
            reduced = check_deadlock(system, ordering)
            naive = check_deadlock(system, ordering, por=False)
            assert reduced.verdict is naive.verdict
