"""Property: the exhaustive checker and the structural TMG test agree.

On rendezvous-only systems (capacity 0, no initial tokens in the
forward DAG) the paper's structural criterion — deadlock iff the
token-free TMG subgraph has a cycle — is exact, so the explicit-state
search must reproduce its verdict on *every* system and *every*
ordering.  These properties quantify that agreement over hundreds of
random systems; a single disagreement is a bug in one of the engines
(the same invariant ERM502 guards in production).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import ChannelOrdering
from repro.errors import BudgetExceeded
from repro.model import deadlock_cycle
from repro.ordering import channel_ordering, declaration_ordering
from repro.verify import Verdict, check_deadlock, verify_ordering
from tests.strategies import (
    layered_systems,
    replicated_lane_systems,
    replicated_pipeline_systems,
    replicated_ring_systems,
)


def small_replicated_families():
    """Replicated families kept small enough for repeated *plain* BFS.

    The quotient side would happily take larger instances; the plain
    reference search it is compared against would not.
    """
    return st.one_of(
        replicated_lane_systems(max_lanes=3, max_latency=3, max_capacity=1),
        replicated_ring_systems(max_stages=4, max_latency=3, max_capacity=1),
        replicated_pipeline_systems(
            max_lanes=2, max_depth=2, max_latency=3
        ),
    )


@st.composite
def random_orderings(draw, system):
    """A uniformly shuffled per-process statement ordering."""
    base = declaration_ordering(system)
    gets = {
        name: tuple(draw(st.permutations(list(base.gets_of(name)))))
        for name in system.process_names
    }
    puts = {
        name: tuple(draw(st.permutations(list(base.puts_of(name)))))
        for name in system.process_names
    }
    return ChannelOrdering(gets=gets, puts=puts)


@settings(max_examples=80, deadline=None)
@given(system=layered_systems(feedback=False))
def test_checker_agrees_with_structural_on_declaration_order(system):
    structural_dead = deadlock_cycle(system, None) is not None
    result = check_deadlock(system)
    assert result.conclusive, result.reason
    assert result.deadlocked == structural_dead


@settings(max_examples=120, deadline=None)
@given(data=st.data(), system=layered_systems(feedback=False))
def test_checker_agrees_with_structural_on_random_orderings(data, system):
    ordering = data.draw(random_orderings(system))
    structural_dead = deadlock_cycle(system, ordering) is not None
    result = check_deadlock(system, ordering)
    assert result.conclusive, result.reason
    assert result.deadlocked == structural_dead
    if result.deadlocked:
        # Every deadlock verdict ships a decodable, replayable witness.
        from repro.verify import replay_witness

        replay_witness(system, ordering, result.witness)


@settings(max_examples=25, deadline=None)
@given(system=layered_systems(feedback=False))
def test_quotient_agrees_with_plain_on_layered_systems(system):
    """Symmetry reduction never changes the verdict (mostly trivial
    groups here — the reduction must be a sound no-op)."""
    plain = check_deadlock(system)
    quotient = check_deadlock(system, sym=True)
    assert plain.conclusive and quotient.conclusive
    assert quotient.deadlocked == plain.deadlocked


@settings(max_examples=15, deadline=None)
@given(system=small_replicated_families())
def test_quotient_agrees_with_plain_on_replicated_families(system):
    """On genuinely symmetric designs the quotient search explores a
    subset of the states but must reach the same verdict, with and
    without stubborn sets."""
    for por in (True, False):
        plain = check_deadlock(system, por=por)
        quotient = check_deadlock(system, por=por, sym=True)
        assert plain.conclusive and quotient.conclusive, (
            plain.reason,
            quotient.reason,
        )
        assert quotient.deadlocked == plain.deadlocked
        if quotient.deadlocked:
            # Witnesses found at orbit representatives pull back through
            # the automorphism trail to concrete, replayable schedules.
            from repro.verify import replay_witness

            replay_witness(system, None, quotient.witness)


@settings(max_examples=15, deadline=None)
@given(data=st.data(), system=small_replicated_families())
def test_quotient_witnesses_replay_on_shuffled_orderings(data, system):
    ordering = data.draw(random_orderings(system))
    plain = check_deadlock(system, ordering)
    quotient = check_deadlock(system, ordering, sym=True)
    assert plain.conclusive and quotient.conclusive
    assert quotient.deadlocked == plain.deadlocked
    if quotient.deadlocked:
        from repro.verify import replay_witness

        replay_witness(system, ordering, quotient.witness)


@settings(max_examples=60, deadline=None)
@given(system=layered_systems(feedback=False))
def test_algorithm_1_output_always_verifies_deadlock_free(system):
    """The machine-checked form of the paper's central guarantee."""
    ordering = channel_ordering(system)
    try:
        result = verify_ordering(system, ordering)
    except BudgetExceeded:  # pragma: no cover - budget is ample here
        return
    assert result.verdict is Verdict.DEADLOCK_FREE
