"""Witness decoding and replay — every DEADLOCKED verdict is checkable."""

import pytest

from repro.errors import SimulationDeadlock, VerificationError
from repro.sim import simulate
from repro.verify import (
    Verdict,
    check_deadlock,
    replay_schedule,
    replay_witness,
)


@pytest.fixture()
def deadlock_result(motivating, deadlock_ordering):
    result = check_deadlock(motivating, deadlock_ordering)
    assert result.verdict is Verdict.DEADLOCKED
    return result


class TestReplay:
    def test_witness_replays_into_its_deadlock(self, motivating,
                                               deadlock_ordering,
                                               deadlock_result):
        state = replay_witness(motivating, deadlock_ordering,
                               deadlock_result.witness)
        assert state == deadlock_result.witness.state

    def test_bogus_schedule_refuses_to_replay(self, motivating,
                                              deadlock_ordering,
                                              deadlock_result):
        witness = deadlock_result.witness
        # Repeating the first action cannot be enabled twice in a row
        # from the initial state of a rendezvous chain.
        bogus = (witness.schedule[0], witness.schedule[0])
        with pytest.raises(VerificationError):
            replay_schedule(motivating, deadlock_ordering, bogus)

    def test_simulator_reproduces_the_verified_deadlock(
        self, motivating, deadlock_ordering, deadlock_result
    ):
        """Acceptance: the witness is replayable on the *runtime* too.
        Enabled actions are never disabled in this model, so the timed
        simulator must fall into the same blocked configuration the
        checker proved reachable, whatever its schedule."""
        with pytest.raises(SimulationDeadlock) as exc:
            simulate(motivating, deadlock_ordering, iterations=10)
        assert exc.value.waiting is not None
        assert tuple(sorted(exc.value.waiting.items())) == (
            deadlock_result.witness.blocked
        )


class TestDecoding:
    def test_cycle_alternates_processes_and_channels(self, motivating,
                                                     deadlock_result):
        cycle = deadlock_result.witness.cycle
        assert len(cycle) % 2 == 0
        for i in range(0, len(cycle), 2):
            assert motivating.has_process(cycle[i])
            assert motivating.has_channel(cycle[i + 1])

    def test_cycle_members_are_blocked_on_their_cycle_channel(
        self, deadlock_result
    ):
        witness = deadlock_result.witness
        blocked = dict(witness.blocked)
        cycle = witness.cycle
        for i in range(0, len(cycle), 2):
            assert blocked[cycle[i]] == cycle[i + 1]

    def test_statements_explain_every_refusal(self, deadlock_result):
        witness = deadlock_result.witness
        assert len(witness.statements) == len(witness.cycle) // 2
        for statement in witness.statements:
            assert statement.kind in ("get", "put")
            assert 1 <= statement.index <= statement.total
            assert statement.waits_for  # the statement it insists on first

    def test_format_is_designer_readable(self, deadlock_result):
        text = deadlock_result.witness.format()
        assert "schedule (3 steps):" in text
        assert "blocked:" in text
        assert "circular wait:" in text
        assert "only after" in text  # BlockedStatement vocabulary

    def test_statement_vocabulary_matches_lint_witnesses(
        self, motivating, deadlock_ordering, deadlock_result
    ):
        """ERM201's structural witness and the checker's exhaustive one
        describe refusals in the same statement-indexed format."""
        from repro.lint.witness import BlockedStatement

        for statement in deadlock_result.witness.statements:
            assert isinstance(statement, BlockedStatement)
