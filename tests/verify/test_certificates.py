"""Certificate-backed verification: zero-state proofs beyond BFS scale."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError
from repro.mpeg2 import build_mpeg2_system
from repro.obs import MetricsRegistry
from repro.ordering import channel_ordering
from repro.verify import Verdict, check_deadlock, verify_ordering
from repro.verify.checker import is_small_system


@pytest.fixture(scope="module")
def mpeg2():
    return build_mpeg2_system()


@pytest.fixture(scope="module")
def mpeg2_ordering(mpeg2):
    return channel_ordering(mpeg2)


class TestCertificateFastPath:
    def test_mpeg2_is_beyond_the_small_system_limit(self, mpeg2):
        assert not is_small_system(mpeg2)

    def test_mpeg2_verifies_without_search(self, mpeg2, mpeg2_ordering):
        result = verify_ordering(mpeg2, mpeg2_ordering, use_certificate=True)
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.states_explored == 0
        assert result.transitions_fired == 0
        assert "certificate" in result.reason

    def test_certificate_makes_budgets_irrelevant(
        self, mpeg2, mpeg2_ordering
    ):
        # A two-state budget would be instantly INCONCLUSIVE under BFS;
        # the validated certificate never touches it.
        result = verify_ordering(
            mpeg2, mpeg2_ordering, use_certificate=True, budget_states=2
        )
        assert result.verdict is Verdict.DEADLOCK_FREE

    def test_accepted_certificates_are_counted(
        self, motivating, optimal_ordering
    ):
        metrics = MetricsRegistry()
        result = check_deadlock(
            motivating,
            optimal_ordering,
            use_certificate=True,
            metrics=metrics,
        )
        assert result.states_explored == 0
        assert metrics.counter("verify.certificates.accepted").value == 1
        assert metrics.counter("verify.runs").value == 1


class TestFallThrough:
    def test_default_path_still_searches(self, motivating, optimal_ordering):
        result = check_deadlock(motivating, optimal_ordering)
        assert result.verdict is Verdict.DEADLOCK_FREE
        assert result.states_explored > 0

    def test_uncertifiable_configurations_fall_back_to_bfs(
        self, motivating, deadlock_ordering
    ):
        result = check_deadlock(
            motivating, deadlock_ordering, use_certificate=True
        )
        assert result.verdict is Verdict.DEADLOCKED
        assert result.witness is not None
        assert result.states_explored > 0

    def test_strict_form_still_raises_on_deadlock(
        self, motivating, deadlock_ordering
    ):
        with pytest.raises(DeadlockError):
            verify_ordering(
                motivating, deadlock_ordering, use_certificate=True
            )

    def test_fast_path_and_search_agree(self, motivating, optimal_ordering):
        searched = check_deadlock(motivating, optimal_ordering)
        certified = check_deadlock(
            motivating, optimal_ordering, use_certificate=True
        )
        assert searched.verdict is certified.verdict is Verdict.DEADLOCK_FREE
