"""Stress tests for Howard's algorithm on degenerate ratio landscapes.

Policy iteration's potential-improvement step can flip-flop between
policies whose graphs carry multiple equal-ratio cycles (observed in the
wild on a 16-node SCC); the stagnation guard plus the cycle-ratio-
iteration completion must terminate with the exact answer regardless.
"""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmg import (
    TimedMarkedGraph,
    build_event_graph,
    maximum_cycle_ratio,
    maximum_cycle_ratio_enumerated,
)


def equal_ratio_graph(n_nodes: int, n_extra: int, seed: int,
                      ratio: int = 5) -> TimedMarkedGraph:
    """Every cycle has exactly the same ratio: delay = ratio * tokens on
    every edge, tokens in {1, 2}.  Maximally ambiguous for the potential
    comparisons."""
    rng = random.Random(seed)
    # The event graph charges each edge the delay of its target
    # transition, so giving every transition delay = ratio and every place
    # one token makes every cycle's Σd/Σm equal ratio automatically.
    tmg2 = TimedMarkedGraph("flat")
    for i in range(n_nodes):
        tmg2.add_transition(f"t{i}", delay=ratio)
    place = 0
    for i in range(n_nodes):
        tmg2.add_place(f"p{place}", f"t{i}", f"t{(i + 1) % n_nodes}", tokens=1)
        place += 1
    for _ in range(n_extra):
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        tmg2.add_place(f"p{place}", f"t{a}", f"t{b}", tokens=1)
        place += 1
    return tmg2


class TestEqualRatioLandscapes:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(2, 12),
        extra=st.integers(0, 24),
        seed=st.integers(0, 999),
    )
    def test_terminates_and_exact_on_flat_landscape(self, n, extra, seed):
        tmg = equal_ratio_graph(n, extra, seed)
        result = maximum_cycle_ratio(build_event_graph(tmg))
        assert result is not None
        assert result.ratio == Fraction(5)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(2, 8),
        extra=st.integers(0, 12),
        seed=st.integers(0, 99),
        bump=st.integers(0, 3),
    )
    def test_single_heavier_cycle_found(self, n, extra, seed, bump):
        """A flat landscape plus one strictly heavier self-loop: the
        completion must find the heavier cycle, never settle for 5."""
        tmg = equal_ratio_graph(n, extra, seed)
        tmg.add_transition("hot", delay=5 + bump)
        tmg.add_place("hot_loop", "hot", "hot", tokens=1)
        tmg.add_place("hot_in", "t0", "hot", tokens=1)
        tmg.add_place("hot_out", "hot", "t0", tokens=1)
        result = maximum_cycle_ratio(build_event_graph(tmg))
        expected = maximum_cycle_ratio_enumerated(build_event_graph(tmg))
        assert result.ratio == expected[0]

    def test_float_mode_flat_landscape(self):
        tmg = equal_ratio_graph(10, 20, seed=3)
        result = maximum_cycle_ratio(build_event_graph(tmg), exact=False)
        assert abs(result.ratio - 5.0) < 1e-9

    def test_observed_oscillation_class(self):
        """A condensed version of the field failure: two equal-ratio
        2-cycles bridged in both directions."""
        tmg = TimedMarkedGraph("osc")
        for name, delay in (("a", 4), ("b", 6), ("c", 4), ("d", 6)):
            tmg.add_transition(name, delay=delay)
        tmg.add_place("p0", "a", "b", tokens=1)
        tmg.add_place("p1", "b", "a", tokens=1)  # cycle a-b: 10/2 = 5
        tmg.add_place("p2", "c", "d", tokens=1)
        tmg.add_place("p3", "d", "c", tokens=1)  # cycle c-d: 10/2 = 5
        tmg.add_place("p4", "a", "c", tokens=2)
        tmg.add_place("p5", "c", "a", tokens=2)
        tmg.add_place("p6", "b", "d", tokens=2)
        tmg.add_place("p7", "d", "b", tokens=2)
        result = maximum_cycle_ratio(build_event_graph(tmg))
        expected = maximum_cycle_ratio_enumerated(build_event_graph(tmg))
        assert result.ratio == expected[0]
