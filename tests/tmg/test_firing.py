"""Timed execution (earliest firing) versus analytic cycle time."""

from fractions import Fraction

import pytest

from repro.errors import ReproError
from repro.tmg import (
    TimedMarkedGraph,
    analyze,
    earliest_firing_times,
    measured_cycle_time,
)


def ring(delays=(2, 3, 1), tokens=(1, 0, 0)):
    tmg = TimedMarkedGraph()
    for i, d in enumerate(delays):
        tmg.add_transition(f"t{i}", delay=d)
    for i in range(len(delays)):
        tmg.add_place(f"p{i}", f"t{i}", f"t{(i + 1) % len(delays)}",
                      tokens=tokens[i])
    return tmg


class TestEarliestFiring:
    def test_ring_firing_times(self):
        records = earliest_firing_times(ring(), iterations=3)
        # token in p0 enables t1 at time 0; t2 at 0+3; t0 at 3+1; period 6.
        assert records["t1"].start_times == [0, 6, 12]
        assert records["t2"].start_times == [3, 9, 15]
        assert records["t0"].start_times == [4, 10, 16]

    def test_invalid_iterations(self):
        with pytest.raises(ReproError):
            earliest_firing_times(ring(), iterations=0)

    def test_deadlocked_graph_stalls(self):
        tmg = ring(tokens=(0, 0, 0))
        records = earliest_firing_times(tmg, iterations=5)
        assert all(r.count == 0 for r in records.values())

    def test_partial_deadlock(self):
        # live ring plus an appendix transition fed by a token-free loop
        tmg = ring()
        tmg.add_transition("dead_a", delay=1)
        tmg.add_transition("dead_b", delay=1)
        tmg.add_place("dp0", "dead_a", "dead_b", tokens=0)
        tmg.add_place("dp1", "dead_b", "dead_a", tokens=0)
        records = earliest_firing_times(tmg, iterations=4)
        assert records["t1"].count == 4
        assert records["dead_a"].count == 0

    def test_multiple_tokens_pipeline(self):
        tmg = ring(delays=(2, 2, 2), tokens=(1, 1, 1))
        records = earliest_firing_times(tmg, iterations=4)
        # three tokens, total delay 6 -> period 2 per transition
        t1 = records["t1"].start_times
        assert t1[1] - t1[0] == 2


class TestMeasuredCycleTime:
    def test_matches_analysis_on_ring(self):
        tmg = ring()
        assert measured_cycle_time(tmg, iterations=64) == analyze(tmg).cycle_time

    def test_matches_on_multi_token_ring(self):
        # Two tokens travel as a burst: the long-run rate is 12/2 = 6, but
        # any finite window carries a bounded burst residue.
        tmg = ring(delays=(4, 4, 4), tokens=(2, 0, 0))
        measured = measured_cycle_time(tmg, iterations=128)
        assert abs(float(measured) - 6.0) <= 12 / 63

    def test_deadlocked_returns_none(self):
        assert measured_cycle_time(ring(tokens=(0, 0, 0))) is None

    def test_specific_transition(self):
        tmg = ring()
        assert measured_cycle_time(tmg, iterations=64, transition="t2") == 6
