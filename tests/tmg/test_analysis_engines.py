"""Cycle-time engines: Howard, Lawler, enumeration — units and agreement."""

from fractions import Fraction

import pytest

from repro.errors import NotLiveError, ReproError
from repro.tmg import (
    Engine,
    TimedMarkedGraph,
    analyze,
    build_event_graph,
    cycle_time,
    deadlock_witness,
    is_deadlocked,
    is_live,
    maximum_cycle_ratio,
    maximum_cycle_ratio_enumerated,
    maximum_cycle_ratio_lawler,
)


def simple_ring(delays=(2, 3, 1), tokens=(1, 0, 0)) -> TimedMarkedGraph:
    tmg = TimedMarkedGraph()
    n = len(delays)
    for i, d in enumerate(delays):
        tmg.add_transition(f"t{i}", delay=d)
    for i in range(n):
        tmg.add_place(f"p{i}", f"t{i}", f"t{(i + 1) % n}", tokens=tokens[i])
    return tmg


def two_rings() -> TimedMarkedGraph:
    """Two rings sharing one transition; ratios 6/1 and 10/2."""
    tmg = TimedMarkedGraph()
    for name, delay in (("a", 1), ("b", 5), ("c", 4)):
        tmg.add_transition(name, delay=delay)
    tmg.add_place("p0", "a", "b", tokens=1)
    tmg.add_place("p1", "b", "a", tokens=0)  # ring a-b: delay 6, tokens 1
    tmg.add_place("p2", "a", "c", tokens=1)
    tmg.add_place("p3", "c", "a", tokens=1)  # ring a-c: delay 5, tokens 2
    return tmg


class TestHoward:
    def test_single_ring_ratio(self):
        result = maximum_cycle_ratio(build_event_graph(simple_ring()))
        assert result.ratio == Fraction(6, 1)
        assert set(result.cycle) == {"t0", "t1", "t2"}

    def test_multi_token_ring(self):
        tmg = simple_ring(tokens=(1, 1, 0))
        result = maximum_cycle_ratio(build_event_graph(tmg))
        assert result.ratio == Fraction(6, 2)

    def test_two_rings_picks_max(self):
        result = maximum_cycle_ratio(build_event_graph(two_rings()))
        assert result.ratio == Fraction(6, 1)
        assert set(result.cycle) == {"a", "b"}

    def test_float_mode_close(self):
        result = maximum_cycle_ratio(build_event_graph(two_rings()), exact=False)
        assert result.ratio == pytest.approx(6.0)

    def test_token_free_cycle_raises(self):
        tmg = simple_ring(tokens=(0, 0, 0))
        with pytest.raises(NotLiveError):
            maximum_cycle_ratio(build_event_graph(tmg))

    def test_acyclic_returns_none(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("a", delay=1)
        tmg.add_transition("b", delay=1)
        tmg.add_place("p", "a", "b", tokens=0)
        assert maximum_cycle_ratio(build_event_graph(tmg)) is None

    def test_critical_places_reported(self):
        result = maximum_cycle_ratio(build_event_graph(simple_ring()))
        assert len(result.places) == len(result.cycle)
        assert set(result.places) <= {"p0", "p1", "p2"}

    def test_zero_delay_cycle_ratio_zero(self):
        tmg = simple_ring(delays=(0, 0, 0))
        result = maximum_cycle_ratio(build_event_graph(tmg))
        assert result.ratio == 0


class TestLawler:
    def test_matches_howard_on_rings(self):
        graph = build_event_graph(two_rings())
        assert maximum_cycle_ratio_lawler(graph, exact=True) == Fraction(6)

    def test_token_free_cycle_raises(self):
        graph = build_event_graph(simple_ring(tokens=(0, 0, 0)))
        with pytest.raises(NotLiveError):
            maximum_cycle_ratio_lawler(graph)

    def test_acyclic_returns_none(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("a", delay=1)
        tmg.add_transition("b", delay=1)
        tmg.add_place("p", "a", "b", tokens=0)
        assert maximum_cycle_ratio_lawler(build_event_graph(tmg)) is None

    def test_zero_delay_cycle(self):
        graph = build_event_graph(simple_ring(delays=(0, 0, 0)))
        assert maximum_cycle_ratio_lawler(graph, exact=True) == 0

    def test_float_tolerance(self):
        graph = build_event_graph(simple_ring())
        value = maximum_cycle_ratio_lawler(graph, tolerance=1e-6)
        assert value == pytest.approx(6.0, abs=1e-5)


class TestEnumeration:
    def test_exact_on_two_rings(self):
        ratio, witness = maximum_cycle_ratio_enumerated(
            build_event_graph(two_rings())
        )
        assert ratio == Fraction(6)
        assert set(witness.nodes) == {"a", "b"}

    def test_counts_cycles(self):
        from repro.tmg import enumerate_cycles

        cycles = list(enumerate_cycles(build_event_graph(two_rings())))
        assert len(cycles) == 2

    def test_token_free_cycle_raises(self):
        with pytest.raises(NotLiveError):
            maximum_cycle_ratio_enumerated(
                build_event_graph(simple_ring(tokens=(0, 0, 0)))
            )


class TestAnalyzeFacade:
    @pytest.mark.parametrize("engine", list(Engine))
    def test_all_engines_agree(self, engine):
        report = analyze(two_rings(), engine=engine)
        assert report.cycle_time == 6

    def test_throughput_reciprocal(self):
        report = analyze(simple_ring())
        assert report.throughput == Fraction(1, 6)

    def test_engine_accepts_string(self):
        assert cycle_time(simple_ring(), engine="lawler") == 6

    def test_deadlock_detected(self):
        tmg = simple_ring(tokens=(0, 0, 0))
        assert is_deadlocked(tmg)
        assert not is_live(tmg)
        witness = deadlock_witness(tmg)
        assert witness and set(witness) <= {"t0", "t1", "t2"}
        with pytest.raises(NotLiveError):
            analyze(tmg)

    def test_acyclic_raises(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("a", delay=1)
        tmg.add_transition("b", delay=1)
        tmg.add_place("p", "a", "b", tokens=0)
        with pytest.raises(ReproError):
            analyze(tmg)

    def test_zero_cycle_time_throughput_raises(self):
        report = analyze(simple_ring(delays=(0, 0, 0)))
        with pytest.raises(ReproError):
            report.throughput
