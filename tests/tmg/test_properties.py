"""Property-based tests on TMG invariants and engine agreement."""

import random
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tmg import (
    analyze,
    build_event_graph,
    maximum_cycle_ratio,
    maximum_cycle_ratio_enumerated,
    maximum_cycle_ratio_lawler,
    measured_cycle_time,
    strongly_connected_components,
)
from tests.strategies import live_tmgs


@settings(max_examples=60, deadline=None)
@given(tmg=live_tmgs(), seed=st.integers(0, 1000))
def test_cycle_token_count_invariant_under_firing(tmg, seed):
    """The number of tokens on any cycle is invariant under any firing
    sequence (the foundational marked-graph property of Section 3)."""
    cycles = list(tmg.cycles())
    place_sets = [
        [name for name in cycle if name in tmg.place_names] for cycle in cycles
    ]
    before = [tmg.total_tokens(places) for places in place_sets]
    rng = random.Random(seed)
    for _ in range(30):
        enabled = tmg.enabled_transitions()
        if not enabled:
            break
        tmg.fire(rng.choice(list(enabled)))
    after = [tmg.total_tokens(places) for places in place_sets]
    assert before == after


@settings(max_examples=60, deadline=None)
@given(tmg=live_tmgs())
def test_total_token_change_equals_structural_balance(tmg):
    """Firing t changes the total token count by out-degree − in-degree."""
    for t in tmg.transition_names:
        if not tmg.is_enabled(t):
            continue
        before = tmg.total_tokens()
        tmg.fire(t)
        delta = len(tmg.output_places(t)) - len(tmg.input_places(t))
        assert tmg.total_tokens() == before + delta
        break


@settings(max_examples=50, deadline=None)
@given(tmg=live_tmgs())
def test_howard_equals_enumeration(tmg):
    graph = build_event_graph(tmg)
    enumerated = maximum_cycle_ratio_enumerated(graph)
    howard = maximum_cycle_ratio(graph)
    if enumerated is None:
        assert howard is None
    else:
        assert howard is not None
        assert howard.ratio == enumerated[0]


@settings(max_examples=40, deadline=None)
@given(tmg=live_tmgs())
def test_lawler_close_to_howard(tmg):
    graph = build_event_graph(tmg)
    howard = maximum_cycle_ratio(graph)
    lawler = maximum_cycle_ratio_lawler(graph, tolerance=1e-9)
    if howard is None:
        assert lawler is None
    else:
        assert lawler is not None
        assert abs(float(lawler) - float(howard.ratio)) < 1e-6


@settings(max_examples=40, deadline=None)
@given(tmg=live_tmgs())
def test_howard_exact_equals_float_mode(tmg):
    graph = build_event_graph(tmg)
    exact = maximum_cycle_ratio(graph, exact=True)
    approx = maximum_cycle_ratio(graph, exact=False)
    if exact is None:
        assert approx is None
    else:
        assert abs(float(exact.ratio) - approx.ratio) < 1e-6


@settings(max_examples=30, deadline=None)
@given(tmg=live_tmgs())
def test_execution_rate_matches_analysis(tmg):
    """The earliest-firing execution settles at the analytic cycle time."""
    graph = build_event_graph(tmg)
    result = maximum_cycle_ratio(graph)
    if result is None or result.ratio == 0:
        return
    # Measure a transition on the critical cycle: its asymptotic rate is
    # exactly the maximum cycle ratio.  The finite window leaves a bounded
    # periodic residue of at most (total delay)/steps.
    iterations = 160
    measured = measured_cycle_time(tmg, iterations=iterations,
                                   transition=result.cycle[0])
    assert measured is not None
    slack = sum(t.delay for t in tmg.transitions) / (iterations // 2 - 1)
    assert abs(float(measured) - float(result.ratio)) <= slack


@settings(max_examples=50, deadline=None)
@given(tmg=live_tmgs())
def test_scc_partition(tmg):
    graph = build_event_graph(tmg)
    components = strongly_connected_components(graph)
    flattened = [n for comp in components for n in comp]
    assert sorted(flattened) == sorted(graph.nodes)


@settings(max_examples=50, deadline=None)
@given(tmg=live_tmgs())
def test_critical_cycle_ratio_consistent(tmg):
    """The reported critical cycle's own delay/token ratio equals the
    reported maximum ratio."""
    graph = build_event_graph(tmg)
    result = maximum_cycle_ratio(graph)
    if result is None:
        return
    delay = sum(tmg.delay(t) for t in result.cycle)
    tokens = sum(tmg.place(p).tokens for p in result.places)
    assert tokens > 0
    assert Fraction(delay, tokens) == result.ratio


@settings(max_examples=30, deadline=None)
@given(tmg=live_tmgs())
def test_analyze_reports_live_graphs(tmg):
    graph = build_event_graph(tmg)
    if maximum_cycle_ratio(graph) is None:
        return
    report = analyze(tmg)
    assert report.cycle_time >= 0
