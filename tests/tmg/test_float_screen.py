"""Float-first Howard: screen in float, certify the winner exactly.

``maximum_cycle_ratio_screened`` must return *exact* results — the ratio a
``Fraction``, the cycle a true maximum-ratio cycle — even though the
search ran in float arithmetic.  These tests check the exactness contract
on hand-built rings and, property-style, on random live TMGs.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings

from repro.errors import NotLiveError
from repro.tmg import (
    Engine,
    TimedMarkedGraph,
    analyze,
    analyze_event_graph,
    build_event_graph,
    maximum_cycle_ratio,
    maximum_cycle_ratio_screened,
)

from tests.strategies import live_tmgs


def ring(delays, tokens) -> TimedMarkedGraph:
    tmg = TimedMarkedGraph()
    n = len(delays)
    for i, d in enumerate(delays):
        tmg.add_transition(f"t{i}", delay=d)
    for i in range(n):
        tmg.add_place(f"p{i}", f"t{i}", f"t{(i + 1) % n}", tokens=tokens[i])
    return tmg


def cycle_ratio(graph, cycle) -> Fraction:
    """The exact ratio of a cycle, recomputed from the graph's edges."""
    by_source = {}
    for edge in graph.edges:
        by_source.setdefault(edge.source, []).append(edge)
    delay = 0
    tokens = 0
    for i, node in enumerate(cycle):
        target = cycle[(i + 1) % len(cycle)]
        edge = next(e for e in by_source[node] if e.target == target)
        delay += edge.delay
        tokens += edge.tokens
    return Fraction(delay, tokens)


class TestScreenedHoward:
    def test_simple_ring(self):
        graph = build_event_graph(ring((2, 3, 1), (1, 0, 0)))
        result = maximum_cycle_ratio_screened(graph)
        assert result.ratio == Fraction(6, 1)
        assert isinstance(result.ratio, Fraction)

    def test_agrees_with_exact_on_competing_rings(self):
        tmg = TimedMarkedGraph()
        for name, delay in (("a", 1), ("b", 5), ("c", 4)):
            tmg.add_transition(name, delay=delay)
        tmg.add_place("p0", "a", "b", tokens=1)
        tmg.add_place("p1", "b", "a", tokens=0)   # ratio 6/1
        tmg.add_place("p2", "a", "c", tokens=1)
        tmg.add_place("p3", "c", "a", tokens=1)   # ratio 5/2
        graph = build_event_graph(tmg)
        screened = maximum_cycle_ratio_screened(graph)
        exact = maximum_cycle_ratio(graph, exact=True)
        assert screened.ratio == exact.ratio == Fraction(6, 1)
        assert set(screened.cycle) == {"a", "b"}

    def test_ratios_beyond_float_precision_certified_exactly(self):
        # Two rings whose ratios (10^16 + 1 vs 10^16) collapse to the same
        # float64 — the screen alone cannot rank them.  The exact
        # verification pass must still return the true maximum.
        big = 10**16
        tmg = TimedMarkedGraph()
        for name, delay in (("a1", big + 1), ("a2", 0),
                            ("b1", big), ("b2", 0)):
            tmg.add_transition(name, delay=delay)
        tmg.add_place("p0", "a1", "a2", tokens=0)
        tmg.add_place("p1", "a2", "a1", tokens=1)   # ring a: (big+1)/1
        tmg.add_place("p2", "b1", "b2", tokens=0)
        tmg.add_place("p3", "b2", "b1", tokens=1)   # ring b: big/1
        # Token-heavy cross links keep the graph connected without
        # creating a competitive mixed cycle.
        tmg.add_place("p4", "a1", "b1", tokens=3)
        tmg.add_place("p5", "b1", "a1", tokens=3)
        graph = build_event_graph(tmg)
        assert float(big + 1) == float(big)  # the premise: float ties
        result = maximum_cycle_ratio_screened(graph)
        assert result.ratio == Fraction(big + 1, 1)
        assert result.ratio == cycle_ratio(graph, list(result.cycle))

    def test_returned_cycle_attains_the_ratio(self):
        graph = build_event_graph(ring((5, 2, 9, 1), (1, 0, 1, 0)))
        result = maximum_cycle_ratio_screened(graph)
        assert cycle_ratio(graph, list(result.cycle)) == result.ratio

    def test_not_live_raises(self):
        graph = build_event_graph(ring((1, 1), (0, 0)))
        with pytest.raises(NotLiveError):
            maximum_cycle_ratio_screened(graph)

    @settings(max_examples=40, deadline=None)
    @given(tmg=live_tmgs())
    def test_property_ratio_matches_exact(self, tmg):
        graph = build_event_graph(tmg)
        screened = maximum_cycle_ratio_screened(graph)
        exact = maximum_cycle_ratio(graph, exact=True)
        assert screened.ratio == exact.ratio
        assert isinstance(screened.ratio, Fraction)
        # The certificate is genuine: its own ratio attains the maximum.
        assert cycle_ratio(graph, list(screened.cycle)) == screened.ratio


class TestAnalyzeEventGraphDispatch:
    def test_float_screen_only_applies_to_exact_howard(self):
        tmg = ring((2, 3, 1), (1, 0, 0))
        graph = build_event_graph(tmg)
        reference = analyze(tmg)
        for exact in (True, False):
            for screen in (True, False):
                report = analyze_event_graph(
                    graph, engine=Engine.HOWARD, exact=exact,
                    float_screen=screen,
                )
                assert report.cycle_time == reference.cycle_time
                assert isinstance(report.cycle_time, Fraction) == exact

    def test_analyze_via_tmg_level_entry_point(self):
        tmg = ring((2, 3, 1), (1, 0, 0))
        screened = analyze(tmg, float_screen=True)
        plain = analyze(tmg)
        assert screened.cycle_time == plain.cycle_time
        assert screened.critical_cycle == plain.critical_cycle

    def test_liveness_error_message_preserved(self):
        tmg = ring((1, 1), (0, 0))
        with pytest.raises(NotLiveError, match="not live"):
            analyze(tmg, float_screen=True)
