"""TMG DOT export and terminal plotting."""

from repro.model import build_tmg
from repro.tmg import analyze, tmg_to_dot


class TestTmgDot:
    def test_contains_all_elements(self, motivating):
        tmg = build_tmg(motivating).tmg
        dot = tmg_to_dot(tmg)
        assert dot.startswith("digraph")
        for t in tmg.transition_names:
            assert f'"{t}"' in dot
        for p in tmg.place_names:
            assert f'"{p}"' in dot

    def test_delays_and_tokens_annotated(self, motivating):
        tmg = build_tmg(motivating).tmg
        dot = tmg_to_dot(tmg)
        assert "d=5" in dot  # P2's computation
        assert "● 1" in dot  # an initially marked place

    def test_critical_cycle_highlighting(self, motivating,
                                         suboptimal_ordering):
        tmg = build_tmg(motivating, suboptimal_ordering).tmg
        report = analyze(tmg)
        dot = tmg_to_dot(
            tmg,
            highlight_transitions=report.critical_cycle,
            highlight_places=report.critical_places,
        )
        assert dot.count('color="red"') >= len(report.critical_cycle)

    def test_zero_token_display_toggle(self, motivating):
        tmg = build_tmg(motivating).tmg
        with_zeros = tmg_to_dot(tmg, show_zero_tokens=True)
        without = tmg_to_dot(tmg, show_zero_tokens=False)
        assert with_zeros.count("\\n0") > without.count("\\n0")


class TestAsciiPlots:
    def test_series_basic(self):
        from repro.viz import ascii_series

        text = ascii_series([1.0, 5.0, 3.0], width=20, height=5, marker="@")
        assert text.count("@") == 3
        assert "+" in text

    def test_hline_rendered(self):
        from repro.viz import ascii_series

        text = ascii_series([1.0, 5.0], width=10, height=4, hline=3.0)
        assert "-" in text

    def test_empty_series(self):
        from repro.viz import ascii_series

        assert "empty" in ascii_series([])

    def test_constant_series(self):
        from repro.viz import ascii_series

        text = ascii_series([2.0, 2.0, 2.0], width=12, height=4, marker="@")
        assert text.count("@") >= 1

    def test_plot_exploration(self, motivating):
        from repro.core import ChannelOrdering
        from repro.dse import SystemConfiguration, explore
        from repro.hls import Implementation, ImplementationLibrary, ParetoSet
        from repro.viz import plot_exploration

        sets = [
            ParetoSet.from_points(
                p.name,
                [
                    Implementation(f"{p.name}.s", p.latency * 3, 5.0),
                    Implementation(f"{p.name}.f", p.latency, 9.0),
                ],
            )
            for p in motivating.workers()
        ]
        config = SystemConfiguration.initial(
            motivating, ImplementationLibrary(sets),
            ordering=ChannelOrdering.declaration_order(motivating),
            pick="smallest",
        )
        result = explore(config, target_cycle_time=20)
        text = plot_exploration(result)
        assert "cycle time" in text
        assert "area" in text
