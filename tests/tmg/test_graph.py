"""Unit tests for the TimedMarkedGraph structure and token game."""

import pytest

from repro.errors import ValidationError
from repro.tmg import TimedMarkedGraph


def ring(n: int = 3, tokens_at: int = 0, delay: int = 2) -> TimedMarkedGraph:
    tmg = TimedMarkedGraph("ring")
    for i in range(n):
        tmg.add_transition(f"t{i}", delay=delay)
    for i in range(n):
        tmg.add_place(f"p{i}", f"t{i}", f"t{(i + 1) % n}",
                      tokens=1 if i == tokens_at else 0)
    return tmg


class TestConstruction:
    def test_duplicate_transition_rejected(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("t")
        with pytest.raises(ValidationError):
            tmg.add_transition("t")

    def test_place_transition_namespace_shared(self):
        # Definition 1 requires P and T disjoint.
        tmg = TimedMarkedGraph()
        tmg.add_transition("x")
        tmg.add_transition("y")
        tmg.add_place("p", "x", "y")
        with pytest.raises(ValidationError):
            tmg.add_transition("p")
        with pytest.raises(ValidationError):
            tmg.add_place("x", "x", "y")

    def test_place_unknown_transition_rejected(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("t")
        with pytest.raises(ValidationError):
            tmg.add_place("p", "t", "ghost")

    def test_negative_delay_rejected(self):
        tmg = TimedMarkedGraph()
        with pytest.raises(ValidationError):
            tmg.add_transition("t", delay=-1)

    def test_negative_tokens_rejected(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("a")
        tmg.add_transition("b")
        with pytest.raises(ValidationError):
            tmg.add_place("p", "a", "b", tokens=-1)

    def test_validate_rejects_empty(self):
        with pytest.raises(ValidationError):
            TimedMarkedGraph().validate()

    def test_validate_rejects_disconnected_transition(self):
        tmg = ring()
        tmg.add_transition("orphan")
        with pytest.raises(ValidationError):
            tmg.validate()

    def test_validate_accepts_ring(self):
        ring().validate()


class TestTokenGame:
    def test_enabled_transition(self):
        tmg = ring(tokens_at=0)
        assert tmg.is_enabled("t1")  # p0 feeds t1
        assert not tmg.is_enabled("t0")
        assert tmg.enabled_transitions() == ("t1",)

    def test_fire_moves_token(self):
        tmg = ring(tokens_at=0)
        tmg.fire("t1")
        assert tmg.tokens("p0") == 0
        assert tmg.tokens("p1") == 1

    def test_fire_disabled_raises(self):
        tmg = ring(tokens_at=0)
        with pytest.raises(ValidationError):
            tmg.fire("t0")

    def test_total_tokens_invariant_on_ring(self):
        tmg = ring(n=4, tokens_at=2)
        for _ in range(10):
            (enabled,) = tmg.enabled_transitions()
            tmg.fire(enabled)
            assert tmg.total_tokens() == 1

    def test_reset_restores_initial_marking(self):
        tmg = ring(tokens_at=0)
        tmg.fire("t1")
        tmg.reset()
        assert tmg.marking == tmg.initial_marking()

    def test_set_marking(self):
        tmg = ring()
        tmg.set_marking({"p2": 5})
        assert tmg.tokens("p2") == 5

    def test_set_marking_rejects_negative(self):
        tmg = ring()
        with pytest.raises(ValidationError):
            tmg.set_marking({"p0": -1})

    def test_set_marking_rejects_unknown_place(self):
        tmg = ring()
        with pytest.raises(ValidationError):
            tmg.set_marking({"ghost": 1})

    def test_initial_marking_is_construction_time(self):
        tmg = ring(tokens_at=1)
        tmg.fire("t2")
        initial = tmg.initial_marking()
        assert initial["p1"] == 1
        assert initial["p2"] == 0


class TestCycles:
    def test_ring_has_single_cycle(self):
        cycles = list(ring(n=3).cycles())
        assert len(cycles) == 1
        # alternating transition, place, ... of length 2n
        assert len(cycles[0]) == 6

    def test_parallel_places_collapse_to_fewest_tokens(self):
        tmg = TimedMarkedGraph()
        tmg.add_transition("a", delay=1)
        tmg.add_transition("b", delay=1)
        tmg.add_place("heavy", "a", "b", tokens=5)
        tmg.add_place("light", "a", "b", tokens=1)
        tmg.add_place("back", "b", "a", tokens=0)
        (cycle,) = tmg.cycles()
        assert "light" in cycle
        assert "heavy" not in cycle
