"""Unit tests for the bounded LRU cache primitive."""

from repro.perf import MISS, LruCache


class TestBasics:
    def test_miss_on_empty(self):
        cache = LruCache(4)
        assert cache.get("k") is MISS

    def test_put_get_roundtrip(self):
        cache = LruCache(4)
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert "k" in cache
        assert len(cache) == 1

    def test_none_is_a_valid_value(self):
        cache = LruCache(4)
        cache.put("k", None)
        assert cache.get("k") is None
        assert cache.get("k") is not MISS

    def test_overwrite_keeps_one_entry(self):
        cache = LruCache(4)
        cache.put("k", 1)
        cache.put("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = LruCache(4)
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        cache.clear()
        assert len(cache) == 0
        assert cache.get("k") is MISS
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2


class TestEviction:
    def test_lru_order(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes least recently used
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_bounded_size(self):
        cache = LruCache(3)
        for i in range(10):
            cache.put(f"k{i}", i)
        assert len(cache) == 3
        assert cache.stats.evictions == 7
        assert list(cache) == ["k7", "k8", "k9"]

    def test_zero_maxsize_disables_storage(self):
        cache = LruCache(0)
        cache.put("k", 1)
        assert len(cache) == 0
        assert cache.get("k") is MISS


class TestStats:
    def test_counters(self):
        cache = LruCache(4)
        cache.get("absent")
        cache.put("k", 1)
        cache.get("k")
        cache.get("k")
        stats = cache.stats
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.hit_rate == 2 / 3

    def test_hit_rate_of_untouched_cache_is_zero(self):
        assert LruCache(4).stats.hit_rate == 0.0

    def test_as_dict_is_json_friendly(self):
        cache = LruCache(4)
        cache.get("absent")
        d = cache.stats.as_dict()
        assert d == {"hits": 0, "misses": 1, "evictions": 0, "hit_rate": 0.0}

    def test_str_mentions_all_counters(self):
        text = str(LruCache(4).stats)
        for word in ("hits", "misses", "evictions"):
            assert word in text
