"""The memoized engine returns exactly what the uncached path returns.

The contract under test (docs/API.md, "Analysis caching"): for every
system/ordering/latency combination, ``PerformanceEngine.analyze`` and the
reference :func:`repro.model.analyze_system` agree — on results *and* on
raised deadlocks — whether the answer comes from a fresh build, from a
reused structure, or from the result cache.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChannelOrdering
from repro.errors import DeadlockError, ValidationError
from repro.model import analyze_system
from repro.perf import PerformanceEngine, default_engine, reset_default_engine
from repro.tmg import Engine

from tests.strategies import layered_systems


def reference(system, ordering=None, latencies=None, **kwargs):
    return analyze_system(
        system, ordering, process_latencies=latencies, **kwargs
    )


class TestEquivalence:
    def test_bit_identical_without_screening(self, motivating,
                                             suboptimal_ordering):
        engine = PerformanceEngine(float_screen=False)
        for scale in (1, 2, 3, 5):
            latencies = {
                p.name: p.latency * scale for p in motivating.workers()
            }
            expected = reference(motivating, suboptimal_ordering, latencies)
            got = engine.analyze(
                motivating, suboptimal_ordering, process_latencies=latencies
            )
            assert got == expected  # full dataclass equality, report included

    def test_screened_mode_preserves_exact_cycle_time(self, motivating,
                                                      suboptimal_ordering):
        engine = PerformanceEngine(float_screen=True)
        expected = reference(motivating, suboptimal_ordering)
        got = engine.analyze(motivating, suboptimal_ordering)
        assert got.cycle_time == expected.cycle_time
        assert type(got.cycle_time) is type(expected.cycle_time)
        assert got.throughput == expected.throughput
        assert got.critical_processes  # a real certificate, not a stub

    def test_cache_hit_returns_same_object(self, tiny_pipeline):
        engine = PerformanceEngine()
        first = engine.analyze(tiny_pipeline)
        second = engine.analyze(tiny_pipeline)
        assert second is first
        assert engine.results.stats.hits == 1

    def test_value_based_keys_survive_rebuilds(self, tiny_pipeline):
        engine = PerformanceEngine()
        engine.analyze(tiny_pipeline)
        clone = tiny_pipeline.with_process_latencies({})
        engine.analyze(clone)
        assert engine.results.stats.hits == 1

    def test_latency_only_change_reuses_structure(self, tiny_pipeline):
        engine = PerformanceEngine(float_screen=False)
        engine.analyze(tiny_pipeline)
        got = engine.analyze(tiny_pipeline, process_latencies={"A": 9})
        assert engine.structures.stats.hits == 1
        expected = reference(tiny_pipeline, latencies={"A": 9})
        assert got == expected

    def test_incremental_disabled_still_correct(self, tiny_pipeline):
        engine = PerformanceEngine(incremental=False, float_screen=False)
        engine.analyze(tiny_pipeline)
        got = engine.analyze(tiny_pipeline, process_latencies={"A": 9})
        assert got == reference(tiny_pipeline, latencies={"A": 9})
        assert engine.structures.stats.lookups == 0

    def test_all_engines_and_modes(self, tiny_pipeline):
        engine = PerformanceEngine()
        for mode in Engine:
            for exact in (True, False):
                expected = reference(tiny_pipeline, engine=mode, exact=exact)
                got = engine.analyze(tiny_pipeline, engine=mode, exact=exact)
                assert got.cycle_time == expected.cycle_time
                assert got.critical_processes == expected.critical_processes

    @settings(max_examples=30, deadline=None)
    @given(system=layered_systems(), scale=st.integers(1, 4))
    def test_property_equivalence_on_random_systems(self, system, scale):
        # Random systems may deadlock under declaration order (the paper's
        # premise!) — parity must then hold on the error, not the result.
        engine = PerformanceEngine(float_screen=False)
        latencies = {p.name: p.latency * scale for p in system.processes}
        try:
            expected = reference(system, latencies=latencies)
        except DeadlockError as error:
            with pytest.raises(DeadlockError) as warm:
                engine.analyze(system)
            with pytest.raises(DeadlockError) as got:
                engine.analyze(system, process_latencies=latencies)
            assert str(got.value) == str(error)
            assert str(warm.value) == str(error)
            return
        # Warm the structure cache with the unscaled latencies first, so
        # the checked result exercises the incremental path.
        engine.analyze(system)
        got = engine.analyze(system, process_latencies=latencies)
        assert got == expected

    @settings(max_examples=20, deadline=None)
    @given(system=layered_systems())
    def test_property_screened_cycle_time(self, system):
        engine = PerformanceEngine(float_screen=True)
        try:
            expected = reference(system)
        except DeadlockError as error:
            with pytest.raises(DeadlockError) as got:
                engine.analyze(system)
            assert str(got.value) == str(error)
            return
        got = engine.analyze(system)
        assert got.cycle_time == expected.cycle_time


class TestDeadlockParity:
    def test_same_message_and_cycle(self, motivating, deadlock_ordering):
        engine = PerformanceEngine()
        with pytest.raises(DeadlockError) as uncached:
            reference(motivating, deadlock_ordering)
        with pytest.raises(DeadlockError) as first:
            engine.analyze(motivating, deadlock_ordering)
        with pytest.raises(DeadlockError) as cached:
            engine.analyze(motivating, deadlock_ordering)
        assert str(first.value) == str(uncached.value)
        assert str(cached.value) == str(uncached.value)
        assert cached.value.cycle == uncached.value.cycle
        assert engine.results.stats.hits == 1

    def test_deadlock_detected_without_instantiation(self, motivating,
                                                     deadlock_ordering):
        # Liveness is structural: the second raise with different latencies
        # must come from the cached structure, not a rebuilt TMG.
        engine = PerformanceEngine()
        with pytest.raises(DeadlockError):
            engine.analyze(motivating, deadlock_ordering)
        with pytest.raises(DeadlockError):
            engine.analyze(
                motivating, deadlock_ordering,
                process_latencies={"P2": 999},
            )
        assert engine.structures.stats.hits == 1


class TestValidationParity:
    def test_negative_latency_message(self, tiny_pipeline):
        engine = PerformanceEngine()
        with pytest.raises(ValidationError) as uncached:
            reference(tiny_pipeline, latencies={"A": -1})
        with pytest.raises(ValidationError) as got:
            engine.analyze(tiny_pipeline, process_latencies={"A": -1})
        assert str(got.value) == str(uncached.value)

    def test_negative_latency_after_structure_warm(self, tiny_pipeline):
        engine = PerformanceEngine()
        engine.analyze(tiny_pipeline)
        with pytest.raises(ValidationError):
            engine.analyze(tiny_pipeline, process_latencies={"A": -1})

    def test_invalid_ordering_rejected(self, tiny_pipeline):
        engine = PerformanceEngine()
        bad = ChannelOrdering(gets={"A": ("o",)}, puts={})
        with pytest.raises(ValidationError):
            engine.analyze(tiny_pipeline, bad)


class TestLifecycle:
    def test_clear_forces_recompute(self, tiny_pipeline):
        engine = PerformanceEngine()
        engine.analyze(tiny_pipeline)
        engine.clear()
        engine.analyze(tiny_pipeline)
        assert engine.results.stats.hits == 0
        assert engine.results.stats.misses == 2

    def test_result_eviction_bound(self, tiny_pipeline):
        engine = PerformanceEngine(max_results=2)
        for latency in (1, 2, 3, 4):
            engine.analyze(
                tiny_pipeline, process_latencies={"A": latency}
            )
        assert len(engine.results) == 2
        assert engine.results.stats.evictions == 2

    def test_stats_dict_shape(self, tiny_pipeline):
        engine = PerformanceEngine()
        engine.analyze(tiny_pipeline)
        stats = engine.stats_dict()
        assert set(stats) == {"results", "structures"}
        assert set(stats["results"]) == {
            "hits", "misses", "evictions", "hit_rate"
        }

    def test_format_stats_lists_both_caches(self, tiny_pipeline):
        engine = PerformanceEngine()
        engine.analyze(tiny_pipeline)
        text = engine.format_stats()
        assert "results" in text and "structures" in text

    def test_default_engine_is_process_wide(self):
        reset_default_engine()
        try:
            assert default_engine() is default_engine()
        finally:
            reset_default_engine()


class TestAnalyzeSystemIntegration:
    def test_perf_engine_kwarg_routes_through_cache(self, tiny_pipeline):
        engine = PerformanceEngine()
        first = analyze_system(tiny_pipeline, perf_engine=engine)
        second = analyze_system(tiny_pipeline, perf_engine=engine)
        assert second is first
        assert engine.results.stats.hits == 1

    def test_none_keeps_reference_path(self, tiny_pipeline):
        first = analyze_system(tiny_pipeline)
        second = analyze_system(tiny_pipeline)
        assert second is not first
        assert second == first
