"""The canonical invalidation keys of the analysis caches."""

from repro.core import ChannelOrdering, SystemBuilder
from repro.perf import (
    analysis_fingerprint,
    effective_latencies,
    structure_fingerprint,
    system_fingerprint,
)


def declaration(system):
    return ChannelOrdering.declaration_order(system)


class TestEffectiveLatencies:
    def test_defaults_from_system(self, tiny_pipeline):
        latencies = effective_latencies(tiny_pipeline)
        assert latencies == {"src": 1, "A": 3, "B": 2, "snk": 1}

    def test_partial_override_resolves_like_build(self, tiny_pipeline):
        latencies = effective_latencies(tiny_pipeline, {"A": 7})
        assert latencies == {"src": 1, "A": 7, "B": 2, "snk": 1}

    def test_spelled_out_equals_partial(self, tiny_pipeline):
        partial = effective_latencies(tiny_pipeline, {"A": 7})
        full = effective_latencies(tiny_pipeline, partial)
        assert partial == full


class TestStructureFingerprint:
    def test_deterministic_across_rebuilds(self, tiny_pipeline):
        rebuilt = tiny_pipeline.with_process_latencies({})
        assert structure_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        ) == structure_fingerprint(rebuilt, declaration(rebuilt))

    def test_ignores_process_latencies(self, tiny_pipeline):
        faster = tiny_pipeline.with_process_latencies({"A": 1, "B": 1})
        assert structure_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        ) == structure_fingerprint(faster, declaration(faster))

    def test_sensitive_to_ordering(self, motivating, suboptimal_ordering,
                                   optimal_ordering):
        assert structure_fingerprint(
            motivating, suboptimal_ordering
        ) != structure_fingerprint(motivating, optimal_ordering)

    def test_sensitive_to_channel_latency(self):
        def build(latency):
            return (
                SystemBuilder("s")
                .source("src", latency=1)
                .process("A", latency=3)
                .sink("snk", latency=1)
                .channel("i", "src", "A", latency=latency)
                .channel("o", "A", "snk", latency=1)
                .build()
            )

        a, b = build(1), build(2)
        assert structure_fingerprint(a, declaration(a)) != \
            structure_fingerprint(b, declaration(b))

    def test_sensitive_to_buffering(self):
        def build(capacity):
            return (
                SystemBuilder("s")
                .source("src", latency=1)
                .process("A", latency=3)
                .sink("snk", latency=1)
                .channel("i", "src", "A", latency=1)
                .channel("o", "A", "snk", latency=1, capacity=capacity)
                .build()
            )

        a, b = build(0), build(2)
        assert structure_fingerprint(a, declaration(a)) != \
            structure_fingerprint(b, declaration(b))


class TestAnalysisFingerprint:
    def test_latency_change_changes_key(self, tiny_pipeline):
        structure = structure_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        )
        base = effective_latencies(tiny_pipeline)
        fast = effective_latencies(tiny_pipeline, {"A": 1})
        assert analysis_fingerprint(structure, base, "howard", True, False) != \
            analysis_fingerprint(structure, fast, "howard", True, False)

    def test_mode_changes_key(self, tiny_pipeline):
        structure = structure_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        )
        latencies = effective_latencies(tiny_pipeline)
        keys = {
            analysis_fingerprint(structure, latencies, engine, exact, screen)
            for engine in ("howard", "lawler")
            for exact in (True, False)
            for screen in (True, False)
        }
        assert len(keys) == 8

    def test_override_spelling_is_canonical(self, tiny_pipeline):
        structure = structure_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        )
        partial = effective_latencies(tiny_pipeline, {"A": 7})
        spelled = effective_latencies(tiny_pipeline, dict(partial))
        assert analysis_fingerprint(
            structure, partial, "howard", True, False
        ) == analysis_fingerprint(structure, spelled, "howard", True, False)


class TestSystemFingerprint:
    def test_includes_latencies(self, tiny_pipeline):
        assert system_fingerprint(tiny_pipeline) != system_fingerprint(
            tiny_pipeline, process_latencies={"A": 9}
        )

    def test_default_ordering_is_declaration(self, tiny_pipeline):
        assert system_fingerprint(tiny_pipeline) == system_fingerprint(
            tiny_pipeline, declaration(tiny_pipeline)
        )
