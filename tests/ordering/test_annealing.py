"""Simulated-annealing ordering baseline."""

import pytest
from hypothesis import given, settings

from repro.model import analyze_system, is_deadlock_free
from repro.ordering import (
    anneal_ordering,
    channel_ordering,
    declaration_ordering,
)
from tests.strategies import layered_systems


class TestAnnealOnMotivating:
    def test_reaches_global_optimum(self, motivating):
        result = anneal_ordering(motivating, iterations=300, seed=1)
        assert result.cycle_time == 12  # the exhaustive optimum

    def test_repairs_deadlocking_start(self, motivating, deadlock_ordering):
        result = anneal_ordering(
            motivating, initial=deadlock_ordering, iterations=100, seed=0
        )
        assert is_deadlock_free(motivating, result.ordering)
        assert result.cycle_time <= 20

    def test_live_start_kept(self, motivating, suboptimal_ordering):
        result = anneal_ordering(
            motivating, initial=suboptimal_ordering, iterations=0, seed=0
        )
        assert result.cycle_time == 20
        assert result.initial_cycle_time == 20

    def test_deterministic_per_seed(self, motivating):
        a = anneal_ordering(motivating, iterations=100, seed=5)
        b = anneal_ordering(motivating, iterations=100, seed=5)
        assert a.cycle_time == b.cycle_time
        assert a.accepted == b.accepted

    def test_counts_consistent(self, motivating):
        result = anneal_ordering(motivating, iterations=120, seed=2)
        assert 0 <= result.accepted <= result.evaluations <= 120


class TestAnnealProperties:
    @settings(max_examples=10, deadline=None)
    @given(system=layered_systems(max_layers=3, max_width=2))
    def test_never_worse_than_start_and_always_live(self, system):
        result = anneal_ordering(system, iterations=60, seed=3)
        assert result.cycle_time <= result.initial_cycle_time
        assert is_deadlock_free(system, result.ordering)
        # the reported cycle time is the true one
        assert analyze_system(system, result.ordering).cycle_time == \
            result.cycle_time

    @settings(max_examples=8, deadline=None)
    @given(system=layered_systems(max_layers=2, max_width=2))
    def test_annealing_vs_algorithm1(self, system):
        """Annealing (from Algorithm 1's start) can only confirm or improve
        the constructive result — never regress it."""
        base = analyze_system(system, channel_ordering(system)).cycle_time
        result = anneal_ordering(system, iterations=80, seed=4)
        assert result.cycle_time <= base
