"""Property-based guarantees of Algorithm 1 on random systems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import analyze_system, is_deadlock_free
from repro.ordering import (
    channel_ordering,
    channel_ordering_with_labels,
    conservative_ordering,
)
from tests.strategies import layered_systems


@settings(max_examples=60, deadline=None)
@given(system=layered_systems())
def test_algorithm_output_is_always_deadlock_free(system):
    """The paper's central guarantee: Algorithm 1's ordering never
    deadlocks, on any live system."""
    ordering = channel_ordering(system)
    assert is_deadlock_free(system, ordering)


@settings(max_examples=60, deadline=None)
@given(system=layered_systems())
def test_algorithm_output_is_valid_permutation(system):
    channel_ordering(system).validate(system)


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(feedback=False))
def test_labels_cover_every_channel_on_dags(system):
    outcome = channel_ordering_with_labels(system)
    for channel in system.channel_names:
        head = outcome.labels.head(channel)
        tail = outcome.labels.tail(channel)
        assert head[0] >= 0 and tail[0] >= 0


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(feedback=False))
def test_forward_weights_nondecreasing_along_paths(system):
    """On DAGs, a channel's head weight strictly exceeds every head weight
    feeding its producer (weights accumulate latency along paths)."""
    outcome = channel_ordering_with_labels(system)
    for channel in system.channels:
        weight = outcome.labels.head(channel.name)[0]
        for upstream in system.input_channels(channel.producer):
            assert weight > outcome.labels.head(upstream)[0]


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(), seed=st.integers(0, 100))
def test_algorithm_never_worse_than_deadlock(system, seed):
    """The ordered system always has a finite cycle time (never deadlocks),
    even when baselines do."""
    ordering = channel_ordering(system)
    perf = analyze_system(system, ordering)
    assert perf.cycle_time > 0


@settings(max_examples=30, deadline=None)
@given(system=layered_systems())
def test_algorithm_competitive_with_conservative(system):
    """Algorithm 1 stays within 2x of the conservative sweep baseline (it
    is a heuristic, but it must not pathologically serialize)."""
    algo = analyze_system(system, channel_ordering(system)).cycle_time
    conservative = analyze_system(
        system, conservative_ordering(system)
    ).cycle_time
    assert float(algo) <= 2 * float(conservative)


@settings(max_examples=25, deadline=None)
@given(system=layered_systems(max_layers=2, max_width=2, feedback=False))
def test_algorithm_near_exhaustive_optimum_on_small_dags(system):
    """On exhaustively searchable DAG systems (the labeling's designed
    domain) the heuristic stays within 2x of the true optimum — and is
    exactly optimal on the paper's example (see test_algorithm.py).  On
    feedback systems the labeling does not model cycle token counts, so
    no fixed bound holds; the competitiveness property above covers them.
    """
    from repro.ordering import exhaustive_search

    if system.order_space_size() > 3000:
        return
    best = exhaustive_search(system).best_cycle_time
    algo = analyze_system(system, channel_ordering(system)).cycle_time
    assert float(algo) <= 2.0 * float(best)
