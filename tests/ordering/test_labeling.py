"""Forward/backward labeling against the paper's Fig. 4(b) values."""

import pytest

from repro.core import ChannelOrdering
from repro.errors import DeadlockError, ValidationError
from repro.ordering import backward_labeling, forward_labeling
from repro.ordering.labeling import LabelingResult


@pytest.fixture()
def labels(motivating, suboptimal_ordering) -> LabelingResult:
    """Labels computed with the paper's initial order (P2 puts f, b, d)."""
    result = forward_labeling(motivating, suboptimal_ordering)
    return backward_labeling(motivating, result)


#: Fig. 4(b) red labels: (weight, timestamp) on each arc head.
FORWARD_EXPECTED = {
    "a": (3, 1),
    "f": (13, 2),
    "b": (13, 3),
    "d": (13, 4),
    "g": (17, 5),
    "c": (17, 6),
    "e": (19, 7),
    "h": (22, 8),
}

#: Fig. 4(b) blue labels: (weight, timestamp) on each arc tail.
BACKWARD_EXPECTED = {
    "h": (2, 1),
    "d": (10, 2),
    "g": (10, 3),
    "e": (10, 4),
    "f": (13, 5),
    "c": (13, 6),
    "b": (16, 7),
    "a": (23, 8),
}


class TestPaperLabels:
    @pytest.mark.parametrize("channel,expected", FORWARD_EXPECTED.items())
    def test_forward_head_labels(self, labels, channel, expected):
        assert labels.head(channel) == expected

    @pytest.mark.parametrize("channel,expected", BACKWARD_EXPECTED.items())
    def test_backward_tail_labels(self, labels, channel, expected):
        assert labels.tail(channel) == expected

    def test_worked_example_p2(self, labels, motivating):
        """Weight 13 = MaxInArcWeight(P2)=3 + SumOutArcLatency(P2)=5 +
        VertexLatency(P2)=5."""
        for channel in ("f", "b", "d"):
            assert labels.head(channel)[0] == 13

    def test_worked_example_p6(self, labels):
        """Weight 10 = MaxOutArcWeight(P6)=2 + SumInArcLatency(P6)=6 +
        VertexLatency(P6)=2."""
        for channel in ("d", "g", "e"):
            assert labels.tail(channel)[0] == 10


class TestLabelingMechanics:
    def test_forward_timestamps_are_a_permutation(self, labels, motivating):
        timestamps = sorted(
            labels.head(c)[1] for c in motivating.channel_names
        )
        assert timestamps == list(range(1, 9))

    def test_backward_timestamps_are_a_permutation(self, labels, motivating):
        timestamps = sorted(
            labels.tail(c)[1] for c in motivating.channel_names
        )
        assert timestamps == list(range(1, 9))

    def test_initial_put_order_changes_timestamps_not_weights(
        self, motivating
    ):
        declaration = ChannelOrdering.declaration_order(motivating)
        labels = forward_labeling(motivating, declaration)
        # With puts (b, d, f) the timestamps permute but weights stay 13.
        assert labels.head("b") == (13, 2)
        assert labels.head("d") == (13, 3)
        assert labels.head("f") == (13, 4)

    def test_backward_requires_forward(self, motivating):
        from repro.ordering.labeling import _fresh_result

        with pytest.raises(ValidationError):
            backward_labeling(motivating, _fresh_result(motivating))

    def test_unreachable_zero_token_cycle_raises(self):
        from repro.core import SystemBuilder

        system = (
            SystemBuilder("dead")
            .source("src")
            .process("A")
            .process("B")
            .sink("snk")
            .channel("i", "src", "A")
            .channel("x", "A", "B")
            .channel("y", "B", "A")  # no initial tokens: structurally dead
            .channel("o", "B", "snk")
            .build()
        )
        with pytest.raises(DeadlockError):
            forward_labeling(system, ChannelOrdering.declaration_order(system))

    def test_preloaded_feedback_is_traversable(self, feedback_system):
        ordering = ChannelOrdering.declaration_order(feedback_system)
        result = forward_labeling(feedback_system, ordering)
        result = backward_labeling(feedback_system, result)
        for channel in feedback_system.channel_names:
            result.head(channel)
            result.tail(channel)

    def test_missing_label_access_raises(self, motivating):
        from repro.ordering.labeling import _fresh_result

        result = _fresh_result(motivating)
        with pytest.raises(ValidationError):
            result.head("a")
        with pytest.raises(ValidationError):
            result.tail("a")
