"""Algorithm 1 end-to-end: the paper's optimum and structural guarantees."""

import pytest

from repro.core import ChannelOrdering, fork_join
from repro.model import analyze_system, is_deadlock_free
from repro.ordering import (
    channel_ordering,
    channel_ordering_with_labels,
    exhaustive_search,
)


class TestMotivatingOptimum:
    def test_final_orders_match_paper(self, motivating, suboptimal_ordering):
        ordering = channel_ordering(motivating, suboptimal_ordering)
        # Section 4 worked example: P6 reads d, then g, then e; P2 writes
        # b, then f, then d.
        assert ordering.gets_of("P6") == ("d", "g", "e")
        assert ordering.puts_of("P2") == ("b", "f", "d")

    def test_achieves_cycle_time_12(self, motivating, suboptimal_ordering):
        ordering = channel_ordering(motivating, suboptimal_ordering)
        assert analyze_system(motivating, ordering).cycle_time == 12

    def test_matches_exhaustive_optimum(self, motivating,
                                        suboptimal_ordering):
        ordering = channel_ordering(motivating, suboptimal_ordering)
        achieved = analyze_system(motivating, ordering).cycle_time
        best = exhaustive_search(motivating).best_cycle_time
        assert achieved == best == 12

    def test_deadlock_free_from_any_initial_order(self, motivating):
        from repro.core import all_orderings

        for initial in all_orderings(motivating):
            ordering = channel_ordering(motivating, initial)
            assert is_deadlock_free(motivating, ordering)

    def test_default_initial_is_declaration(self, motivating):
        ordering = channel_ordering(motivating)
        assert is_deadlock_free(motivating, ordering)
        assert analyze_system(motivating, ordering).cycle_time == 12

    def test_labels_exposed(self, motivating, suboptimal_ordering):
        outcome = channel_ordering_with_labels(motivating, suboptimal_ordering)
        assert outcome.labels.head("e") == (19, 7)
        assert outcome.ordering.gets_of("P6") == ("d", "g", "e")


class TestSortingRules:
    def test_gets_ascending_head_weights(self, motivating,
                                         suboptimal_ordering):
        outcome = channel_ordering_with_labels(motivating, suboptimal_ordering)
        for process in motivating.process_names:
            weights = [
                outcome.labels.head(c) for c in outcome.ordering.gets_of(process)
            ]
            assert weights == sorted(weights)

    def test_puts_descending_tail_weights(self, motivating,
                                          suboptimal_ordering):
        outcome = channel_ordering_with_labels(motivating, suboptimal_ordering)
        for process in motivating.process_names:
            keys = [
                (-outcome.labels.tail(c)[0], outcome.labels.tail(c)[1])
                for c in outcome.ordering.puts_of(process)
            ]
            assert keys == sorted(keys)

    def test_timestamp_tie_break_on_symmetric_diamond(self):
        """On a fully symmetric fork/join every weight ties; the timestamp
        tie-break must still produce consistent (deadlock-free) orders."""
        system = fork_join(3, branch_latencies=(4, 4, 4))
        ordering = channel_ordering(system)
        assert is_deadlock_free(system, ordering)
        # fork writes and join reads must visit branches in the SAME
        # branch order, otherwise a circular wait arises.
        fork_targets = [
            system.channel(c).consumer for c in ordering.puts_of("fork")
        ]
        join_sources = [
            system.channel(c).producer for c in ordering.gets_of("join")
        ]
        assert fork_targets == join_sources


class TestAsymmetricForkJoin:
    def test_prioritizes_long_branch(self):
        system = fork_join(3, branch_latencies=(2, 10, 5))
        ordering = channel_ordering(system)
        # The fork should feed the slowest branch first...
        first_fed = system.channel(ordering.puts_of("fork")[0]).consumer
        assert first_fed == "branch1"
        # ...and the join should read the fastest branch first.
        first_read = system.channel(ordering.gets_of("join")[0]).producer
        assert first_read == "branch0"

    def test_beats_reversed_baseline(self):
        from repro.ordering import reversed_ordering

        system = fork_join(3, branch_latencies=(2, 10, 5))
        algo = analyze_system(system, channel_ordering(system)).cycle_time
        search = exhaustive_search(system)
        assert algo == search.best_cycle_time
        assert algo <= search.worst_cycle_time


class TestFinalOrderingValidation:
    def test_output_is_valid_permutation(self, motivating):
        ordering = channel_ordering(motivating)
        ordering.validate(motivating)

    def test_testbench_orders_present(self, motivating):
        ordering = channel_ordering(motivating)
        assert ordering.puts_of("Psrc") == ("a",)
        assert ordering.gets_of("Psnk") == ("h",)
