"""Baseline orderings, exhaustive search, and the feedback refinement."""

import pytest

from repro.core import ChannelOrdering
from repro.model import analyze_system, is_deadlock_free
from repro.ordering import (
    conservative_ordering,
    declaration_ordering,
    exhaustive_search,
    feedback_first,
    has_preloaded_channels,
    random_ordering,
    reversed_ordering,
)


class TestBaselines:
    def test_declaration_matches_channel_insertion(self, motivating):
        ordering = declaration_ordering(motivating)
        assert ordering.puts_of("P2") == ("b", "d", "f")

    def test_reversed(self, motivating):
        ordering = reversed_ordering(motivating)
        assert ordering.puts_of("P2") == ("f", "d", "b")
        ordering.validate(motivating)

    def test_random_is_valid_permutation(self, motivating):
        ordering = random_ordering(motivating, seed=5)
        ordering.validate(motivating)

    def test_random_deterministic_per_seed(self, motivating):
        a = random_ordering(motivating, seed=3)
        b = random_ordering(motivating, seed=3)
        assert a.gets == b.gets and a.puts == b.puts

    def test_conservative_is_deadlock_free(self, motivating):
        assert is_deadlock_free(motivating, conservative_ordering(motivating))

    def test_conservative_deadlock_free_on_random_systems(self):
        from repro.core import synthetic_soc

        for seed in range(8):
            system = synthetic_soc(40, seed=seed)
            assert is_deadlock_free(system, conservative_ordering(system))

    def test_conservative_sweeps_by_rank(self, motivating):
        ordering = conservative_ordering(motivating)
        # P6's producers in topological rank order: P2 < P5 < P4 is not
        # guaranteed, but d (from P2) must come before g/e since P2
        # precedes P4 and P5 in any topological order of this DAG.
        assert ordering.gets_of("P6")[0] == "d"


class TestExhaustiveSearch:
    def test_motivating_statistics(self, motivating):
        result = exhaustive_search(motivating)
        assert result.total_orderings == 36
        assert result.live_orderings == 36 - result.deadlocking_orderings
        assert result.best_cycle_time == 12
        assert result.worst_cycle_time == 20
        assert result.deadlocking_orderings == 14

    def test_best_ordering_is_live_and_optimal(self, motivating):
        result = exhaustive_search(motivating)
        perf = analyze_system(motivating, result.best_ordering)
        assert perf.cycle_time == 12

    def test_limit_enforced(self, motivating):
        with pytest.raises(ValueError):
            exhaustive_search(motivating, limit=10)

    def test_callback_sees_everything(self, motivating):
        seen = []
        exhaustive_search(
            motivating, on_ordering=lambda o, ct: seen.append(ct)
        )
        assert len(seen) == 36
        assert seen.count(None) == 14


class TestFeedbackFirst:
    def test_hoists_preloaded_channels(self, feedback_system):
        base = declaration_ordering(feedback_system)
        refined = feedback_first(feedback_system, base)
        assert refined.gets_of("A")[0] == "y"
        refined.validate(feedback_system)

    def test_stable_otherwise(self, motivating):
        base = declaration_ordering(motivating)
        refined = feedback_first(motivating, base)
        assert refined.gets == {k: tuple(v) for k, v in base.gets.items()}

    def test_never_introduces_deadlock(self, feedback_system):
        base = declaration_ordering(feedback_system)
        assert is_deadlock_free(feedback_system, base)
        assert is_deadlock_free(feedback_system,
                                feedback_first(feedback_system, base))

    def test_has_preloaded_channels(self, feedback_system, motivating):
        assert has_preloaded_channels(feedback_system)
        assert not has_preloaded_channels(motivating)
