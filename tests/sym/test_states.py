"""State canonicalization: soundness, minimality, tier selection."""

import random

from repro.sym import EXACT, ORDER_RELAXED, analyze_symmetry
from repro.sym.states import (
    StateSymmetry,
    _BlockStrategy,
    _EnumStrategy,
)
from repro.verify.semantics import TransitionSystem
from tests.sym.conftest import build_lanes


def _ts(system):
    return TransitionSystem(system)


def _reachable_sample(ts, limit=200):
    """BFS sample of reachable states."""
    initial = ts.initial_state()
    seen = {initial}
    frontier = [initial]
    while frontier and len(seen) < limit:
        state = frontier.pop()
        for action in ts.enabled_actions(state):
            successor = ts.successor(state, action)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return sorted(seen)


class TestSoundness:
    def test_representative_is_sigma_image(self, lanes3):
        ts = _ts(lanes3)
        sym = StateSymmetry(ts)
        for state in _reachable_sample(ts):
            rep, sigma = sym.canonicalize(state)
            assert rep == sym.apply(sigma, state)

    def test_orbit_mates_share_representative_lanes(self, lanes3):
        ts = _ts(lanes3)
        sym = StateSymmetry(ts)
        gens = list(sym.analysis.generators)
        rng = random.Random(0)
        for state in _reachable_sample(ts, limit=100):
            rep, _ = sym.canonicalize(state)
            image = state
            for _ in range(4):
                image = sym.apply(rng.choice(gens), image)
                rep_image, _ = sym.canonicalize(image)
                assert rep_image == rep

    def test_orbit_mates_share_representative_ring(self, ring4):
        ts = _ts(ring4)
        sym = StateSymmetry(ts)
        gens = list(sym.analysis.generators)
        rng = random.Random(1)
        for state in _reachable_sample(ts, limit=100):
            rep, _ = sym.canonicalize(state)
            image = state
            for _ in range(4):
                image = sym.apply(rng.choice(gens), image)
                rep_image, _ = sym.canonicalize(image)
                assert rep_image == rep

    def test_ring_uses_exact_group_minimum(self, ring4):
        # The cyclic group cannot realize arbitrary block permutations:
        # the representative must be the exact minimum over the closure,
        # which the enumeration tier guarantees.
        from repro.sym.perm import closure

        ts = _ts(ring4)
        sym = StateSymmetry(ts)
        ir = ts.ir
        elements = closure(
            sym.analysis.generators, ir.n_processes, ir.n_channels, 10_000
        )
        assert elements is not None
        for state in _reachable_sample(ts, limit=60):
            rep, _ = sym.canonicalize(state)
            exact_min = min(sym.apply(g, state) for g in elements)
            assert rep == exact_min

    def test_trivial_system_is_identity(self):
        from repro.core.builder import SystemBuilder

        b = SystemBuilder("line")
        b.source("src", latency=1)
        b.process("w", latency=2)
        b.sink("snk", latency=1)
        b.channel("a", "src", "w", capacity=1)
        b.channel("b", "w", "snk", capacity=1)
        ts = _ts(b.build())
        sym = StateSymmetry(ts)
        assert sym.trivial
        state = ts.initial_state()
        rep, sigma = sym.canonicalize(state)
        assert rep == state
        assert sigma == sym._identity


class TestTierSelection:
    def test_lanes_pick_the_block_strategy(self, lanes3):
        sym = StateSymmetry(_ts(lanes3))
        assert any(
            isinstance(s, _BlockStrategy) for s in sym.strategies
        )

    def test_ring_picks_the_enumeration_strategy(self, ring4):
        sym = StateSymmetry(_ts(ring4))
        assert any(isinstance(s, _EnumStrategy) for s in sym.strategies)

    def test_wide_lanes_stay_block_not_enum(self):
        # S_8 has 40320 elements, far over ENUMERATION_LIMIT: only the
        # block strategy keeps canonicalization cheap there.
        sym = StateSymmetry(_ts(build_lanes(8)))
        assert any(isinstance(s, _BlockStrategy) for s in sym.strategies)


class TestPolicyGuard:
    def test_rejects_relaxed_analysis(self, lanes3):
        import pytest

        ts = _ts(lanes3)
        ir = ts.ir
        relaxed = analyze_symmetry(ir, policy=ORDER_RELAXED)
        with pytest.raises(ValueError):
            StateSymmetry(ts, relaxed)

    def test_accepts_precomputed_exact_analysis(self, lanes3):
        ts = _ts(lanes3)
        analysis = analyze_symmetry(ts.ir, policy=EXACT)
        sym = StateSymmetry(ts, analysis)
        assert sym.analysis is analysis


class TestActionMapping:
    def test_mapped_actions_commute_with_apply(self, lanes3):
        # sigma(apply(state, a)) == apply(sigma(state), sigma(a)):
        # automorphisms commute with the successor relation.
        ts = _ts(lanes3)
        sym = StateSymmetry(ts)
        for g in sym.analysis.generators:
            for state in _reachable_sample(ts, limit=40):
                for action in ts.enabled_actions(state):
                    lhs = sym.apply(g, ts.successor(state, action))
                    rhs = ts.successor(
                        sym.apply(g, state), sym.map_action(g, action)
                    )
                    assert lhs == rhs
