"""Deterministic replicated-family fixtures for the symmetry suite."""

import pytest

from repro.core.builder import SystemBuilder


def build_lanes(k=3, *, capacity=2, drift_capacity=None, prefix=""):
    """k independent lanes: src_i -> w_i -> snk_i (full S_k on lanes).

    ``drift_capacity`` overrides lane 1's input capacity (the ERM703
    scenario); ``prefix`` renames every element (isomorphism tests).
    """
    b = SystemBuilder(f"{prefix}lanes{k}")
    for i in range(k):
        b.source(f"{prefix}src{i}", latency=1)
        b.process(f"{prefix}w{i}", latency=2)
        b.sink(f"{prefix}snk{i}", latency=1)
    for i in range(k):
        cap = drift_capacity if (drift_capacity is not None and i == 1) else capacity
        b.channel(f"{prefix}in{i}", f"{prefix}src{i}", f"{prefix}w{i}", capacity=cap)
    for i in range(k):
        b.channel(f"{prefix}out{i}", f"{prefix}w{i}", f"{prefix}snk{i}", capacity=capacity)
    return b.build()


def build_ring(k=4, *, ring_capacity=2, ring_tokens=1):
    """k-stage ring with per-stage testbench, channels grouped by role.

    Grouped declaration (all in*, then all ring*, then all out*) keeps
    every stage's statement order aligned with the rotation, so the
    strict automorphism group contains Z_k.
    """
    b = SystemBuilder(f"ring{k}")
    for i in range(k):
        b.source(f"src{i}", latency=1)
        b.process(f"st{i}", latency=2)
        b.sink(f"snk{i}", latency=1)
    for i in range(k):
        b.channel(f"in{i}", f"src{i}", f"st{i}", capacity=1)
    for i in range(k):
        b.channel(
            f"ring{i}", f"st{i}", f"st{(i + 1) % k}",
            capacity=ring_capacity, initial_tokens=ring_tokens,
        )
    for i in range(k):
        b.channel(f"out{i}", f"st{i}", f"snk{i}", capacity=1)
    return b.build()


def build_twolanes(lanes=2):
    """Lanes whose worker has two gets and two puts from per-lane pairs.

    ``all_orderings`` permutes only worker statements, so this family
    has a nontrivial *ordering* orbit structure: within a lane, the A/B
    source (and sink) pair is interchangeable, making many worker
    orderings isomorphic.
    """
    b = SystemBuilder(f"twolanes{lanes}")
    for i in range(lanes):
        b.source(f"srcA{i}", latency=1)
        b.source(f"srcB{i}", latency=1)
        b.process(f"w{i}", latency=3)
        b.sink(f"snkA{i}", latency=1)
        b.sink(f"snkB{i}", latency=1)
    for i in range(lanes):
        b.channel(f"a{i}", f"srcA{i}", f"w{i}", capacity=2)
        b.channel(f"b{i}", f"srcB{i}", f"w{i}", capacity=2)
    for i in range(lanes):
        b.channel(f"oa{i}", f"w{i}", f"snkA{i}", capacity=2)
        b.channel(f"ob{i}", f"w{i}", f"snkB{i}", capacity=2)
    return b.build()


@pytest.fixture()
def lanes3():
    return build_lanes(3)


@pytest.fixture()
def ring4():
    return build_ring(4)


@pytest.fixture()
def twolanes():
    return build_twolanes(2)
