"""ERM701-ERM703 — the symmetry lint rules."""

from __future__ import annotations

import pytest

from repro.core import SystemBuilder
from repro.core.system import ChannelOrdering
from repro.diagnostics import Severity
from repro.lint import default_registry, lint_system
from repro.lint.registry import category
from tests.sym.conftest import build_lanes


def _by_rule(result, code):
    return [d for d in result.diagnostics if d.rule == code]


@pytest.fixture()
def swapped_gets_system():
    """Two interchangeable sources read in non-canonical order."""
    return (
        SystemBuilder("swap")
        .source("srcA", latency=1)
        .source("srcB", latency=1)
        .process("w", latency=2)
        .sink("snk", latency=1)
        .channel("a", "srcA", "w", capacity=2)
        .channel("b", "srcB", "w", capacity=2)
        .channel("o", "w", "snk", capacity=2)
        .build()
    )


class TestRegistration:
    def test_rules_are_registered_with_the_symmetry_category(self):
        registry = default_registry()
        codes = {rule.code for rule in registry}
        assert {"ERM701", "ERM702", "ERM703"} <= codes
        for code in ("ERM701", "ERM702", "ERM703"):
            assert registry.rule(code) is not None
            assert category(code) == "symmetry"


class TestERM701:
    def test_reports_each_replicated_family(self, lanes3):
        result = lint_system(lanes3)
        findings = _by_rule(result, "ERM701")
        # src/w/snk triples: three families of three.
        assert len(findings) == 3
        for d in findings:
            assert d.severity is Severity.INFO
            assert "3" in d.message
            assert len(d.location) == 3
        located = {d.location for d in findings}
        assert ("w0", "w1", "w2") in located

    def test_silent_on_asymmetric_designs(self):
        system = (
            SystemBuilder("line")
            .source("src", latency=1)
            .process("w", latency=2)
            .sink("snk", latency=1)
            .channel("a", "src", "w", capacity=1)
            .channel("b", "w", "snk", capacity=1)
            .build()
        )
        assert not _by_rule(lint_system(system), "ERM701")


class TestERM702:
    def test_flags_non_canonical_symmetric_ordering(self, swapped_gets_system):
        ordering = ChannelOrdering.from_orders(
            swapped_gets_system, gets={"w": ("b", "a")}
        )
        result = lint_system(swapped_gets_system, ordering)
        findings = _by_rule(result, "ERM702")
        assert len(findings) == 1
        d = findings[0]
        assert d.severity is Severity.INFO
        assert d.fixable
        assert d.fix.gets["w"] == ("a", "b")

    def test_fix_applies_and_silences_the_rule(self, swapped_gets_system):
        ordering = ChannelOrdering.from_orders(
            swapped_gets_system, gets={"w": ("b", "a")}
        )
        finding = _by_rule(
            lint_system(swapped_gets_system, ordering), "ERM702"
        )[0]
        patched = finding.fix.apply(swapped_gets_system, ordering)
        assert patched.gets_of("w") == ("a", "b")
        assert not _by_rule(
            lint_system(swapped_gets_system, patched), "ERM702"
        )

    def test_silent_on_canonical_ordering(self, swapped_gets_system):
        assert not _by_rule(lint_system(swapped_gets_system), "ERM702")

    def test_never_crosses_latency_classes(self, swapped_gets_system):
        # Make the sources latency-distinct: swapping them would change
        # timing, so the rule must not propose it.
        system = swapped_gets_system.with_process_latencies({"srcB": 7})
        ordering = ChannelOrdering.from_orders(system, gets={"w": ("b", "a")})
        assert not _by_rule(lint_system(system, ordering), "ERM702")


class TestERM703:
    def test_flags_capacity_drift_in_a_symmetric_family(self):
        system = build_lanes(3, drift_capacity=5)
        findings = _by_rule(lint_system(system), "ERM703")
        assert len(findings) == 1
        d = findings[0]
        assert d.severity is Severity.WARNING
        assert d.location[0] == "in1"  # the drifted outlier leads
        assert "in1" in d.message

    def test_silent_on_uniform_families(self, lanes3):
        assert not _by_rule(lint_system(lanes3), "ERM703")

    def test_silent_without_any_symmetry(self):
        system = (
            SystemBuilder("line")
            .source("src", latency=1)
            .process("w", latency=2)
            .sink("snk", latency=1)
            .channel("a", "src", "w", capacity=1)
            .channel("b", "w", "snk", capacity=3)
            .build()
        )
        assert not _by_rule(lint_system(system), "ERM703")
