"""Cross-design performance reuse through the canonical frame."""

from repro.core.system import ChannelOrdering
from repro.ir import lower
from repro.perf import PerformanceEngine
from repro.store import ArtifactStore
from repro.sym import analyze_symmetry
from repro.sym.remap import (
    CanonicalEnvelope,
    canonical_result_key,
    make_envelope,
    remap_performance,
)
from tests.sym.conftest import build_lanes


def _ir(system):
    return lower(system, ChannelOrdering.declaration_order(system))


class TestEnvelopeRoundTrip:
    def test_remap_translates_every_name(self):
        original = build_lanes(3)
        renamed = build_lanes(3, prefix="x_")
        performance = PerformanceEngine().analyze(original)
        writer = analyze_symmetry(_ir(original))
        reader = analyze_symmetry(_ir(renamed))
        assert writer.canonical_hash == reader.canonical_hash

        translated = remap_performance(
            make_envelope(performance, writer), reader
        )
        assert translated is not None
        assert translated.cycle_time == performance.cycle_time
        renamed_names = set(renamed.process_names) | set(
            renamed.channel_names
        )
        for name in translated.critical_processes:
            assert name in renamed_names and name.startswith("x_")
        for name in translated.critical_channels:
            assert name in renamed_names and name.startswith("x_")
        # The TMG-level report is rewritten token by token, never half-way.
        for token in translated.report.critical_cycle:
            assert "x_" in token

    def test_identity_remap_is_exact(self):
        system = build_lanes(3)
        performance = PerformanceEngine().analyze(system)
        analysis = analyze_symmetry(_ir(system))
        translated = remap_performance(
            make_envelope(performance, analysis), analysis
        )
        assert translated == performance

    def test_frame_size_mismatch_is_a_miss(self):
        performance = PerformanceEngine().analyze(build_lanes(3))
        writer = analyze_symmetry(_ir(build_lanes(3)))
        reader = analyze_symmetry(_ir(build_lanes(4)))
        envelope = make_envelope(performance, writer)
        assert remap_performance(envelope, reader) is None

    def test_unparseable_token_is_a_miss(self):
        performance = PerformanceEngine().analyze(build_lanes(3))
        analysis = analyze_symmetry(_ir(build_lanes(3)))
        envelope = make_envelope(performance, analysis)
        broken = CanonicalEnvelope(
            performance=performance,
            process_names=tuple(
                f"not-{n}" for n in envelope.process_names
            ),
            channel_names=envelope.channel_names,
        )
        assert remap_performance(broken, analysis) is None

    def test_canonical_key_is_positional_in_latencies(self):
        a = analyze_symmetry(_ir(build_lanes(3)))
        b = analyze_symmetry(_ir(build_lanes(3, prefix="x_")))
        lat_a = {
            name: 1 if name.startswith("src") else 2
            for name in a.canonical_process_names
        }
        lat_b = {
            name: 1 if "src" in name else 2
            for name in b.canonical_process_names
        }
        key_a = canonical_result_key(a, lat_a, "howard", True, True)
        key_b = canonical_result_key(b, lat_b, "howard", True, True)
        assert key_a == key_b


class TestEngineSecondChance:
    def test_renamed_sibling_is_served_from_the_store(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        writer_engine = PerformanceEngine(store=store, canonical_reuse=True)
        original = build_lanes(3)
        baseline = writer_engine.analyze(original)
        analyses_after_write = store.count("analysis")

        renamed = build_lanes(3, prefix="x_")
        reader_engine = PerformanceEngine(store=store, canonical_reuse=True)
        served = reader_engine.analyze(renamed)

        assert served.cycle_time == baseline.cycle_time
        assert all(
            n.startswith("x_") for n in served.critical_processes
        )
        assert all(n.startswith("x_") for n in served.critical_channels)
        # A second-chance hit returns without recomputing, so nothing new
        # lands in the store under the renamed design's own hashes.
        assert store.count("analysis") == analyses_after_write

    def test_reuse_is_opt_in(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        PerformanceEngine(store=store, canonical_reuse=True).analyze(
            build_lanes(3)
        )
        before = store.count("analysis")
        plain = PerformanceEngine(store=store)  # reuse not requested
        plain.analyze(build_lanes(3, prefix="x_"))
        # The plain engine recomputes and files its own exact entry.
        assert store.count("analysis") > before
