"""Orbit-deduplicated exploration: bit-identical results, fewer runs."""

from fractions import Fraction

import pytest

from repro.core.system import ChannelOrdering
from repro.ordering.exhaustive import exhaustive_search
from tests.sym.conftest import build_twolanes


class TestExhaustiveDedup:
    def test_results_bit_identical(self, twolanes):
        plain = exhaustive_search(twolanes)
        deduped = exhaustive_search(twolanes, sym_dedup=True)
        assert deduped.total_orderings == plain.total_orderings
        assert deduped.live_orderings == plain.live_orderings
        assert (
            deduped.deadlocking_orderings == plain.deadlocking_orderings
        )
        assert deduped.best_cycle_time == plain.best_cycle_time
        assert deduped.worst_cycle_time == plain.worst_cycle_time
        assert deduped.best_ordering == plain.best_ordering
        assert deduped.worst_ordering == plain.worst_ordering
        assert isinstance(deduped.best_cycle_time, Fraction)

    def test_dedup_actually_skips_analyses(self, twolanes):
        deduped = exhaustive_search(twolanes, sym_dedup=True)
        assert deduped.sym_deduped > 0
        assert deduped.sym_classes >= 1
        assert (
            deduped.sym_classes + deduped.sym_deduped
            == deduped.total_orderings
        )

    def test_callbacks_fire_for_every_ordering(self, twolanes):
        seen_plain: list = []
        seen_dedup: list = []
        exhaustive_search(
            twolanes, on_ordering=lambda o, ct: seen_plain.append(ct)
        )
        exhaustive_search(
            twolanes,
            sym_dedup=True,
            on_ordering=lambda o, ct: seen_dedup.append(ct),
        )
        assert seen_dedup == seen_plain

    def test_plain_search_reports_zero_dedup(self, twolanes):
        plain = exhaustive_search(twolanes)
        assert plain.sym_deduped == 0
        assert plain.sym_classes == 0


class TestExplorerStoreReuse:
    @pytest.fixture()
    def config(self, twolanes):
        from repro.dse import SystemConfiguration
        from repro.hls import Implementation, ImplementationLibrary, ParetoSet

        sets = []
        for process in twolanes.workers():
            base = process.latency
            sets.append(
                ParetoSet.from_points(
                    process.name,
                    [
                        Implementation(f"{process.name}.small", base * 2, 10.0),
                        Implementation(f"{process.name}.fast", base, 20.0),
                    ],
                )
            )
        library = ImplementationLibrary(sets)
        return SystemConfiguration.initial(
            twolanes,
            library,
            ordering=ChannelOrdering.declaration_order(twolanes),
            pick="smallest",
        )

    def test_second_run_reuses_persisted_verdicts(self, config, tmp_path):
        from repro.dse import Explorer
        from repro.obs import DseProfiler
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        first = DseProfiler()
        Explorer(
            target_cycle_time=4, store=store, profiler=first
        ).run(config)
        assert store.count("verify") > 0

        second = DseProfiler()
        Explorer(
            target_cycle_time=4, store=store, profiler=second
        ).run(config)
        first_hits = first.metrics.counter("dse.verify.store_hits").value
        second_hits = second.metrics.counter("dse.verify.store_hits").value
        assert second_hits > first_hits
        # The reused verdicts replace actual checker runs.
        assert (
            second.metrics.counter("dse.verify.runs").value
            < max(1, first.metrics.counter("dse.verify.runs").value)
            or second_hits > 0
        )

    def test_sweep_shares_one_orbit_seen_set(self, config, tmp_path):
        from repro.dse.sweep import sweep_targets
        from repro.obs import DseProfiler

        profiler = DseProfiler()
        shared_seen: set[str] = set()
        points = sweep_targets(
            config,
            targets=[8, 6, 4],
            batch=False,
            profiler=profiler,
            sym_seen=shared_seen,
        )
        assert len(points) == 3
        runs = profiler.metrics.counter("dse.verify.runs").value
        deduped = profiler.metrics.counter("dse.sym.verify_deduped").value
        # Every verify run lands its canonical class in the one shared
        # set; later targets re-encountering a class are deduped, so
        # distinct classes never exceed actual runs.
        assert len(shared_seen) <= runs
        if runs and deduped:
            assert len(shared_seen) < runs + deduped
