"""Canonical labeling: orbits, verified generators, hash invariance."""

from hypothesis import given, settings

from repro.core.system import ChannelOrdering
from repro.ir import lower
from repro.sym import (
    ATTR_RELAXED,
    EXACT,
    ORDER_RELAXED,
    TOPOLOGY_RELAXED,
    analyze_symmetry,
    is_automorphism,
    respects_policy,
)
from tests.strategies import replicated_family_systems
from tests.sym.conftest import build_lanes, build_ring


def _analysis(system, ordering=None, policy=EXACT):
    ir = lower(system, ordering or ChannelOrdering.declaration_order(system))
    return ir, analyze_symmetry(ir, policy=policy)


class TestOrbits:
    def test_lanes_have_full_lane_symmetry(self, lanes3):
        ir, analysis = _analysis(lanes3)
        assert analysis.complete
        assert not analysis.trivial
        sizes = sorted(len(o) for o in analysis.replicated_process_orbits)
        # src/w/snk triples each form one orbit of 3.
        assert sizes == [3, 3, 3]
        sizes_c = sorted(len(o) for o in analysis.replicated_channel_orbits)
        assert sizes_c == [3, 3]

    def test_ring_has_rotation_orbits(self, ring4):
        ir, analysis = _analysis(ring4)
        assert analysis.complete
        assert not analysis.trivial
        assert all(len(o) == 4 for o in analysis.replicated_process_orbits)
        assert all(len(o) == 4 for o in analysis.replicated_channel_orbits)

    def test_hub_fanout_strict_group_is_trivial(self):
        # A shared producer pins its consumers by statement position:
        # strict automorphisms must preserve positions, so the group is
        # trivial even though the consumers "look" interchangeable.
        from repro.core.builder import SystemBuilder

        b = SystemBuilder("hub")
        b.source("src", latency=1)
        for i in range(3):
            b.process(f"w{i}", latency=2)
        b.sink("snk", latency=1)
        for i in range(3):
            b.channel(f"c{i}", "src", f"w{i}", capacity=2)
        for i in range(3):
            b.channel(f"o{i}", f"w{i}", "snk", capacity=2)
        ir, analysis = _analysis(b.build())
        assert analysis.trivial
        # Relaxing statement order restores the expected family.
        _, relaxed = _analysis(b.build(), policy=ORDER_RELAXED)
        assert not relaxed.trivial

    def test_generators_are_verified_automorphisms(self, lanes3, ring4):
        for system in (lanes3, ring4):
            ir, analysis = _analysis(system)
            assert analysis.generators
            for gp, gc in analysis.generators:
                assert is_automorphism(ir, gp, gc)
                assert respects_policy(ir, gp, gc, EXACT)


class TestCanonicalHash:
    def test_invariant_under_renaming(self):
        _, a = _analysis(build_lanes(3))
        _, b = _analysis(build_lanes(3, prefix="x_"))
        assert a.complete and b.complete
        assert a.canonical_hash == b.canonical_hash

    def test_invariant_under_lane_redeclaration(self):
        # Declaring the lanes in a different order permutes pids/cids but
        # not the canonical form.
        from repro.core.builder import SystemBuilder

        b = SystemBuilder("lanes3")
        for i in (2, 0, 1):
            b.source(f"src{i}", latency=1)
            b.process(f"w{i}", latency=2)
            b.sink(f"snk{i}", latency=1)
        for i in (1, 2, 0):
            b.channel(f"in{i}", f"src{i}", f"w{i}", capacity=2)
        for i in (0, 2, 1):
            b.channel(f"out{i}", f"w{i}", f"snk{i}", capacity=2)
        _, reordered = _analysis(b.build())
        _, reference = _analysis(build_lanes(3))
        assert reordered.canonical_hash == reference.canonical_hash

    def test_distinguishes_channel_attributes(self):
        _, a = _analysis(build_lanes(3, capacity=2))
        _, b = _analysis(build_lanes(3, capacity=3))
        assert a.canonical_hash != b.canonical_hash

    def test_structural_hashes_differ_where_canonical_agree(self):
        ir_a = lower(
            build_lanes(3),
            ChannelOrdering.declaration_order(build_lanes(3)),
        )
        renamed = build_lanes(3, prefix="x_")
        ir_b = lower(renamed, ChannelOrdering.declaration_order(renamed))
        assert ir_a.structural_hash != ir_b.structural_hash


class TestPolicies:
    def test_attr_relaxed_merges_capacity_variants(self):
        _, strict = _analysis(build_lanes(3, drift_capacity=5))
        _, relaxed = _analysis(
            build_lanes(3, drift_capacity=5), policy=ATTR_RELAXED
        )
        strict_sizes = sorted(len(o) for o in strict.replicated_process_orbits)
        relaxed_sizes = sorted(
            len(o) for o in relaxed.replicated_process_orbits
        )
        assert strict_sizes == [2, 2, 2]  # the drifted lane drops out
        assert relaxed_sizes == [3, 3, 3]

    def test_topology_relaxed_merges_drifted_channels(self):
        _, topo = _analysis(
            build_lanes(3, drift_capacity=5), policy=TOPOLOGY_RELAXED
        )
        assert any(len(o) == 3 for o in topo.replicated_channel_orbits)

    def test_policies_namespace_the_hash(self, lanes3):
        ir = lower(lanes3, ChannelOrdering.declaration_order(lanes3))
        hashes = {
            analyze_symmetry(ir, policy=p).canonical_hash
            for p in (EXACT, ORDER_RELAXED, ATTR_RELAXED, TOPOLOGY_RELAXED)
        }
        assert len(hashes) == 4


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(system=replicated_family_systems())
    def test_replicated_families_are_never_trivial(self, system):
        ir, analysis = _analysis(system)
        assert analysis.complete
        assert not analysis.trivial
        for gp, gc in analysis.generators:
            assert is_automorphism(ir, gp, gc)

    @settings(max_examples=25, deadline=None)
    @given(system=replicated_family_systems())
    def test_orbits_partition_the_index_spaces(self, system):
        ir, analysis = _analysis(system)
        pids = [pid for orbit in analysis.process_orbits for pid in orbit]
        cids = [cid for orbit in analysis.channel_orbits for cid in orbit]
        assert sorted(pids) == list(range(ir.n_processes))
        assert sorted(cids) == list(range(ir.n_channels))
