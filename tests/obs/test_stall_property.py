"""Property: traces and aggregate metrics agree on stalls.

The stall attribution carried by trace events (``wait`` on completed
``put``/``get`` events) is the *decomposition* of the per-process
``stall_cycles`` aggregate — summing one must reproduce the other
exactly, on any system.  Same for the per-channel ``stall_breakdown``.
"""

from collections import defaultdict

from hypothesis import given, settings

from repro.core import motivating_example
from repro.obs import MemorySink
from repro.ordering import channel_ordering
from repro.sim import Simulator
from tests.strategies import layered_systems


def _run_traced(system, iterations=20):
    # Algorithm 1 guarantees a live ordering; declaration order can
    # deadlock on generated systems with feedback channels.
    ordering = channel_ordering(system)
    sink = MemorySink()
    result = Simulator(system, ordering, sinks=[sink]).run(
        iterations=iterations
    )
    return result, sink.events()


def _stalls_from_trace(events):
    per_process: dict[str, int] = defaultdict(int)
    per_pair: dict[str, dict[str, int]] = defaultdict(lambda: defaultdict(int))
    for event in events:
        if event.wait:
            per_process[event.process] += event.wait
            per_pair[event.process][event.channel] += event.wait
    return per_process, per_pair


@given(system=layered_systems())
@settings(max_examples=30, deadline=None)
def test_trace_stalls_equal_result_stalls(system):
    result, events = _run_traced(system)
    per_process, per_pair = _stalls_from_trace(events)
    for name in system.process_names:
        assert per_process.get(name, 0) == result.stall_cycles[name]
    expected = {
        process: dict(channels)
        for process, channels in per_pair.items()
        if channels
    }
    assert expected == result.stall_breakdown


@given(system=layered_systems())
@settings(max_examples=30, deadline=None)
def test_trace_compute_equals_result_compute(system):
    result, events = _run_traced(system)
    per_process: dict[str, int] = defaultdict(int)
    for event in events:
        if event.kind == "compute":
            per_process[event.process] += event.duration
    for name in system.process_names:
        assert per_process.get(name, 0) == result.compute_cycles[name]


def test_breakdown_row_sums_match_stall_cycles():
    system = motivating_example()
    result = Simulator(system).run(iterations=50)
    for process, cycles in result.stall_cycles.items():
        assert sum(result.stall_breakdown.get(process, {}).values()) == cycles
