"""VCD waveform export: structure, monotonicity, value round-trip."""

import re

from repro.core import SystemBuilder, motivating_example, pipeline
from repro.obs import MemorySink, to_vcd
from repro.sim import Simulator


def _vcd(system, iterations=20):
    sink = MemorySink()
    Simulator(system, sinks=[sink]).run(iterations=iterations)
    return to_vcd(sink.events(), system)


class TestVcdStructure:
    def test_header_sections(self):
        text = _vcd(pipeline(2))
        assert "$timescale 1 ns $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_one_scope_per_process(self):
        system = pipeline(2)
        text = _vcd(system)
        for name in system.process_names:
            assert f"$scope module {name} $end" in text

    def test_signals_declared_per_process_and_channel(self):
        system = pipeline(2)
        text = _vcd(system)
        assert text.count(" compute $end") == len(system.process_names)
        assert text.count(" stalled $end") == len(system.process_names)
        for channel in system.channels:
            assert f"{channel.name}_occupancy $end" in text
            assert f"{channel.name}_full $end" in text
            assert f"{channel.name}_empty $end" in text

    def test_identifier_codes_unique(self):
        text = _vcd(motivating_example())
        codes = re.findall(r"^\$var wire \d+ (\S+) ", text, re.MULTILINE)
        assert len(codes) == len(set(codes))


class TestVcdValues:
    def test_timestamps_strictly_increasing(self):
        text = _vcd(motivating_example())
        times = [int(line[1:]) for line in text.splitlines()
                 if line.startswith("#")]
        assert times
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_occupancy_never_negative(self):
        text = _vcd(motivating_example())
        for match in re.finditer(r"^b([01]+) \S+$", text, re.MULTILINE):
            assert int(match.group(1), 2) >= 0

    def test_preloaded_channel_starts_nonempty(self):
        system = (
            SystemBuilder("fb")
            .source("src", latency=1)
            .process("A", latency=2)
            .sink("snk", latency=1)
            .channel("i", "src", "A", latency=1)
            .channel("o", "A", "snk", latency=1, initial_tokens=1)
            .build()
        )
        text = _vcd(system, iterations=6)
        dumpvars = text.split("$dumpvars")[1].split("$end")[0]
        occ_code = re.search(r"\$var wire \d+ (\S+) o_occupancy", text).group(1)
        assert f"b1 {occ_code}" in dumpvars

    def test_stall_signal_present_when_stalling(self):
        system = motivating_example()
        sink = MemorySink()
        result = Simulator(system, sinks=[sink]).run(iterations=20)
        assert sum(result.stall_cycles.values()) > 0
        text = to_vcd(sink.events(), system)
        stalled_codes = re.findall(r"\$var wire 1 (\S+) stalled", text)
        body = text.split("$enddefinitions $end")[1]
        assert any(f"1{code}" in body for code in stalled_codes)
