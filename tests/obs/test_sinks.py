"""Trace sinks: memory, bounded ring, streaming JSONL, null."""

import io
import json

from repro.core import pipeline
from repro.obs import (
    JsonlSink,
    MemorySink,
    NullSink,
    RingBufferSink,
    event_to_dict,
)
from repro.sim import Simulator
from repro.sim.trace import TraceEvent


def _event(time=3, kind="put", process="A", channel="x"):
    return TraceEvent(time=time, kind=kind, process=process, channel=channel,
                      iteration=1, duration=0, wait=2)


class TestEventToDict:
    def test_stable_field_set(self):
        record = event_to_dict(_event())
        assert sorted(record) == [
            "channel", "duration", "iteration", "kind", "process",
            "time", "wait",
        ]

    def test_values(self):
        record = event_to_dict(_event())
        assert record["time"] == 3
        assert record["kind"] == "put"
        assert record["wait"] == 2


class TestMemorySink:
    def test_collects_and_sorts(self):
        sink = MemorySink()
        sink.emit(_event(time=9))
        sink.emit(_event(time=1))
        assert [e.time for e in sink.events()] == [1, 9]

    def test_from_simulation(self):
        sink = MemorySink()
        Simulator(pipeline(2), sinks=[sink]).run(iterations=5)
        events = sink.events()
        assert events
        assert {e.kind for e in events} >= {"compute", "put", "get"}


class TestRingBufferSink:
    def test_keeps_last_n(self):
        sink = RingBufferSink(capacity=3)
        for t in range(10):
            sink.emit(_event(time=t))
        assert [e.time for e in sink.events()] == [7, 8, 9]
        assert sink.dropped == 7

    def test_no_drop_under_capacity(self):
        sink = RingBufferSink(capacity=100)
        sink.emit(_event())
        assert sink.dropped == 0
        assert len(sink.events()) == 1


class TestJsonlSink:
    def test_streams_one_line_per_event(self):
        stream = io.StringIO()
        sink = JsonlSink(stream=stream)
        sink.emit(_event(time=1))
        sink.emit(_event(time=2, kind="get"))
        sink.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert sink.count == 2
        first = json.loads(lines[0])
        assert first == event_to_dict(_event(time=1))

    def test_writes_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path=str(path))
        Simulator(pipeline(2), sinks=[sink]).run(iterations=4)
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == sink.count
        for line in lines:
            json.loads(line)  # every line is valid JSON


class TestNullSink:
    def test_accepts_everything(self):
        sink = NullSink()
        sink.emit(_event())
        sink.close()
