"""Attaching observability must never change simulation results.

The acceptance bar for the tracing layer: results with a sink attached
(or a metrics registry, or full trace recording) are bit-identical to a
bare run.  ``SimulationResult`` is a plain dataclass, so ``==`` compares
every field — including completion-time series and stall breakdowns.
"""

from dataclasses import replace

from hypothesis import given, settings

from repro.core import motivating_example
from repro.obs import MemorySink, MetricsRegistry, NullSink, RingBufferSink
from repro.sim import Simulator
from tests.strategies import layered_systems


def _run(system, **kwargs):
    return Simulator(system, **kwargs).run(iterations=25)


class TestBitIdentical:
    def test_null_sink(self):
        system = motivating_example()
        assert _run(system) == _run(system, sinks=[NullSink()])

    def test_memory_and_ring_sinks(self):
        system = motivating_example()
        bare = _run(system)
        assert bare == _run(system, sinks=[MemorySink()])
        assert bare == _run(system, sinks=[RingBufferSink(capacity=8)])

    def test_metrics_registry(self):
        system = motivating_example()
        assert _run(system) == _run(system, metrics=MetricsRegistry())

    def test_recorded_trace_differs_only_in_trace_field(self):
        system = motivating_example()
        bare = _run(system)
        traced = _run(system, record_trace=True)
        assert traced.trace  # recording actually happened
        assert replace(traced, trace=()) == bare

    @given(system=layered_systems())
    @settings(max_examples=20, deadline=None)
    def test_property_any_system(self, system):
        from repro.ordering import channel_ordering

        ordering = channel_ordering(system)  # guaranteed live
        bare = _run(system, ordering=ordering)
        observed = _run(
            system,
            ordering=ordering,
            sinks=[NullSink()],
            metrics=MetricsRegistry(),
        )
        assert bare == observed


class TestRecorderInertWhenOff:
    def test_no_trace_kept_without_sinks(self):
        result = _run(motivating_example())
        assert result.trace == ()

    def test_sinks_do_not_populate_result_trace(self):
        sink = MemorySink()
        result = _run(motivating_example(), sinks=[sink])
        assert result.trace == ()  # streaming only; no in-memory copy
        assert sink.events()
