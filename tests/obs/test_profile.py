"""DseProfiler: one snapshot per exploration iteration, plus helpers."""

from repro.core import motivating_example
from repro.dse import Explorer, SystemConfiguration
from repro.hls import ImplementationLibrary, synthesize_pareto_set
from repro.obs import (
    DseProfiler,
    MemorySink,
    format_convergence,
    stall_attribution,
)
from repro.perf import PerformanceEngine
from repro.sim import Simulator


def _library(system, seed=0):
    return ImplementationLibrary(
        synthesize_pareto_set(
            p.name,
            base_latency=max(p.latency, 1),
            base_area=3.0 * max(p.latency, 1),
            seed=seed,
            max_points=4,
        )
        for p in system.workers()
    )


def _profiled_run(target=9.0, max_iterations=6):
    system = motivating_example()
    config = SystemConfiguration.initial(
        system, _library(system), pick="smallest"
    )
    profiler = DseProfiler()
    explorer = Explorer(
        target_cycle_time=target,
        max_iterations=max_iterations,
        perf_engine=PerformanceEngine(),
        profiler=profiler,
    )
    return explorer.run(config), profiler


class TestDseProfiler:
    def test_one_snapshot_per_iteration(self):
        result, profiler = _profiled_run()
        assert len(profiler.snapshots) == len(result.history)
        assert [s.iteration for s in profiler.snapshots] == [
            r.iteration for r in result.history
        ]

    def test_snapshot_contents_mirror_records(self):
        result, profiler = _profiled_run()
        for snapshot, record in zip(profiler.snapshots, result.history):
            assert snapshot.action == record.action
            assert snapshot.cycle_time == float(record.cycle_time)
            assert snapshot.area == record.area
            assert snapshot.meets_target == record.meets_target
            assert snapshot.wall_time_s >= 0.0

    def test_metrics_recorded(self):
        _, profiler = _profiled_run()
        registry = profiler.metrics
        assert registry.counter("dse.runs").value == 1
        assert registry.counter("dse.iterations").value == len(
            profiler.snapshots
        )
        names = {c.name for c in registry.counters()}
        assert "cache.results.hits" in names  # merged at end_run

    def test_snapshots_accumulate_across_runs(self):
        system = motivating_example()
        config = SystemConfiguration.initial(
            system, _library(system), pick="smallest"
        )
        profiler = DseProfiler()
        engine = PerformanceEngine()
        for target in (12.0, 9.0):
            Explorer(
                target_cycle_time=target,
                max_iterations=3,
                perf_engine=engine,
                profiler=profiler,
            ).run(config)
        assert profiler.runs == 2
        assert profiler.metrics.counter("dse.runs").value == 2

    def test_as_dicts_round_trip(self):
        import json

        _, profiler = _profiled_run()
        rows = profiler.as_dicts()
        assert len(rows) == len(profiler.snapshots)
        json.dumps(rows)  # JSON-friendly
        assert rows[0]["iteration"] == 0
        assert rows[0]["action"] == "start"


class TestFormatConvergence:
    def test_one_row_per_snapshot(self):
        _, profiler = _profiled_run()
        text = format_convergence(profiler.snapshots)
        lines = text.splitlines()
        assert len(lines) == 1 + len(profiler.snapshots)
        assert "cycle time" in lines[0]
        assert "ilp nodes" in lines[0]


class TestStallAttribution:
    def test_ranks_worst_first_with_peers(self):
        system = motivating_example()
        sink = MemorySink()
        result = Simulator(system, sinks=[sink]).run(iterations=30)
        peers = {c.name: (c.producer, c.consumer) for c in system.channels}
        rows = stall_attribution(result.stall_breakdown, peers)
        assert rows
        cycles = [row[3] for row in rows]
        assert cycles == sorted(cycles, reverse=True)
        for process, channel, peer, _ in rows:
            assert peer in peers[channel]
            assert process in peers[channel]
            assert peer != process

    def test_unknown_topology_uses_placeholder(self):
        rows = stall_attribution({"A": {"x": 5}})
        assert rows == [("A", "x", "?", 5)]

    def test_limit(self):
        breakdown = {"A": {f"c{i}": i + 1 for i in range(20)}}
        assert len(stall_attribution(breakdown, limit=3)) == 3
