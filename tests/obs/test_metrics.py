"""Counter/Timer/Histogram primitives and the MetricsRegistry."""

import pytest

from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    format_metrics,
)


class TestCounter:
    def test_add(self):
        counter = Counter("n")
        counter.add()
        counter.add(4)
        assert counter.value == 5


class TestTimer:
    def test_context_manager_accumulates(self):
        timer = Timer("t")
        with timer:
            pass
        with timer:
            pass
        assert timer.count == 2
        assert timer.total_s >= 0.0
        assert timer.mean_s == pytest.approx(timer.total_s / 2)

    def test_observe_direct(self):
        timer = Timer("t")
        timer.observe(0.5)
        timer.observe(1.5)
        assert timer.total_s == pytest.approx(2.0)
        assert timer.mean_s == pytest.approx(1.0)

    def test_exception_still_records(self):
        timer = Timer("t")
        with pytest.raises(RuntimeError):
            with timer:
                raise RuntimeError
        assert timer.count == 1


class TestHistogram:
    def test_summaries(self):
        hist = Histogram("h")
        for v in (1, 2, 3, 4):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        assert hist.min == 1.0
        assert hist.max == 4.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_empty(self):
        hist = Histogram("h")
        assert hist.mean == 0.0
        assert hist.percentile(50) == 0.0

    def test_percentile_range_checked(self):
        hist = Histogram("h")
        hist.observe(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.timer("t") is registry.timer("t")
        assert registry.histogram("h") is registry.histogram("h")

    def test_iterators_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("z").add()
        registry.counter("a").add()
        assert [c.name for c in registry.counters()] == ["a", "z"]

    def test_merge_cache_stats(self):
        registry = MetricsRegistry()
        registry.merge_cache_stats({
            "results": {"hits": 3, "misses": 1, "evictions": 0,
                        "hit_rate": 0.75},
        })
        assert registry.counter("cache.results.hits").value == 3
        assert registry.counter("cache.results.misses").value == 1
        names = {c.name for c in registry.counters()}
        assert "cache.results.hit_rate" not in names  # derived, skipped

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").add(2)
        registry.timer("t").observe(0.25)
        registry.histogram("h").observe(7.0)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["timers"]["t"]["count"] == 1
        assert snap["histograms"]["h"]["p95"] == 7.0

    def test_snapshot_is_json_friendly(self):
        import json

        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.timer("t").observe(1.0)
        registry.histogram("h").observe(2.0)
        json.dumps(registry.snapshot())  # must not raise


class TestFormatMetrics:
    def test_sections_appear(self):
        registry = MetricsRegistry()
        registry.counter("sim.runs").add()
        registry.timer("dse.analyze").observe(0.1)
        registry.histogram("dse.iteration.wall_s").observe(0.2)
        text = format_metrics(registry)
        assert "sim.runs" in text
        assert "dse.analyze" in text
        assert "dse.iteration.wall_s" in text

    def test_empty_registry(self):
        assert format_metrics(MetricsRegistry()) == ""
