"""Chrome trace-event (Perfetto) export round-trips."""

import json

from repro.core import motivating_example, pipeline
from repro.obs import MemorySink, render_chrome_trace, to_chrome_trace
from repro.obs.perfetto import CHANNEL_PID, PROCESS_PID
from repro.sim import Simulator


def _trace_events(system, iterations=20):
    sink = MemorySink()
    Simulator(system, sinks=[sink]).run(iterations=iterations)
    return sink.events()


class TestChromeTrace:
    def test_round_trip_is_valid_json(self):
        system = pipeline(3)
        text = render_chrome_trace(_trace_events(system), system)
        document = json.loads(text)
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"]

    def test_every_event_well_formed(self):
        system = motivating_example()
        document = to_chrome_trace(_trace_events(system), system)
        for entry in document["traceEvents"]:
            assert entry["ph"] in ("M", "X", "i", "C")
            assert isinstance(entry["pid"], int)
            if entry["ph"] != "M":
                assert entry["ts"] >= 0
            if entry["ph"] == "X":
                assert entry["dur"] >= 0

    def test_one_thread_track_per_process(self):
        system = pipeline(2)
        document = to_chrome_trace(_trace_events(system), system)
        thread_names = {
            entry["args"]["name"]
            for entry in document["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        assert thread_names == set(system.process_names)

    def test_counter_track_per_channel_never_negative(self):
        system = motivating_example()
        document = to_chrome_trace(_trace_events(system), system)
        counters = [
            entry for entry in document["traceEvents"] if entry["ph"] == "C"
        ]
        assert counters
        assert {entry["pid"] for entry in counters} == {CHANNEL_PID}
        for entry in counters:
            assert entry["args"]["tokens"] >= 0

    def test_compute_slice_duration_matches_latency(self):
        system = pipeline(2)
        document = to_chrome_trace(_trace_events(system), system)
        latencies = {p.name: p.latency for p in system.processes}
        tid_to_name = {
            entry["tid"]: entry["args"]["name"]
            for entry in document["traceEvents"]
            if entry["ph"] == "M" and entry["name"] == "thread_name"
        }
        slices = [
            entry for entry in document["traceEvents"]
            if entry["ph"] == "X" and entry["name"] == "compute"
        ]
        assert slices
        for entry in slices:
            assert entry["pid"] == PROCESS_PID
            assert entry["dur"] == latencies[tid_to_name[entry["tid"]]]

    def test_stall_slices_name_the_peer(self):
        system = motivating_example()
        document = to_chrome_trace(_trace_events(system), system)
        stalls = [
            entry for entry in document["traceEvents"]
            if entry["ph"] == "X" and entry["cat"] == "stall"
        ]
        assert stalls  # the motivating example stalls by construction
        peers = {c.name: {c.producer, c.consumer} for c in system.channels}
        for entry in stalls:
            channel = entry["name"].removeprefix("stall:")
            assert entry["args"]["waiting_on"] in peers[channel]

    def test_without_topology_still_exports(self):
        events = _trace_events(pipeline(2))
        document = to_chrome_trace(events)  # no system given
        kinds = {entry["ph"] for entry in document["traceEvents"]}
        assert "X" in kinds and "C" in kinds
