"""The markdown design report."""

import pytest

from repro.cli import main
from repro.core import save_system
from repro.report import design_report


class TestDesignReport:
    def test_sections_present(self, motivating):
        text = design_report(motivating)
        for heading in ("# Design report", "## Topology",
                        "## Performance", "## Algorithm 1 ordering",
                        "## Bottlenecks"):
            assert heading in text

    def test_numbers_in_report(self, motivating):
        text = design_report(motivating)
        assert "| processes | 5 |" in text
        assert "| statement orderings | 36 |" in text
        assert "| cycle time | 12 |" in text

    def test_deadlock_reported(self, motivating, deadlock_ordering):
        text = design_report(motivating, deadlock_ordering)
        assert "DEADLOCK" in text
        # the report still proposes the fixed ordering afterwards
        assert "## Algorithm 1 ordering" in text

    def test_sensitivity_optional(self, motivating):
        text = design_report(motivating, include_sensitivity=False)
        assert "## Bottlenecks" not in text

    def test_sensitivity_limit(self, motivating):
        text = design_report(motivating, sensitivity_limit=2)
        bottleneck_rows = [
            line for line in text.splitlines()
            if line.startswith("|") and ("yes" in line or "no |" in line)
        ]
        assert len(bottleneck_rows) <= 3

    def test_latency_overrides(self, motivating, optimal_ordering):
        text = design_report(
            motivating, optimal_ordering, process_latencies={"P2": 50}
        )
        assert "| cycle time | 57 |" in text  # 2+50+1+1+3

    def test_cli_report(self, motivating, tmp_path, capsys):
        path = tmp_path / "sys.json"
        save_system(motivating, path)
        out_file = tmp_path / "report.md"
        assert main(["report", str(path), "-o", str(out_file)]) == 0
        assert "# Design report" in out_file.read_text()

    def test_cli_report_stdout(self, motivating, tmp_path, capsys):
        path = tmp_path / "sys.json"
        save_system(motivating, path)
        assert main(["report", str(path), "--no-sensitivity"]) == 0
        assert "## Topology" in capsys.readouterr().out
