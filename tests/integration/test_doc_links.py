"""Every internal link and anchor in the documentation resolves.

Scans ``README.md`` and ``docs/*.md`` for markdown links: relative
file targets must exist, and ``#fragment`` targets must match a heading
in the referenced file (GitHub's slug rules).  External ``http(s)``
links are out of scope — CI must not depend on the network.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def _strip_fences(text: str) -> str:
    """Drop fenced code blocks — links inside them are illustrative."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        out.append("" if in_fence else line)
    return "\n".join(out)


def _slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→dashes."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # inline code keeps text
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # link text
    heading = heading.strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    seen: dict[str, int] = {}
    anchors = set()
    for line in _strip_fences(path.read_text()).splitlines():
        match = _HEADING.match(line)
        if not match:
            continue
        slug = _slug(match.group(2))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def _links(path: Path) -> list[str]:
    return _LINK.findall(_strip_fences(path.read_text()))


def test_doc_set_is_nonempty():
    assert len(DOC_FILES) >= 5
    assert all(path.is_file() for path in DOC_FILES)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_links_resolve(doc):
    problems = []
    for target in _links(doc):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{target}: file {path_part!r} not found")
                continue
        else:
            resolved = doc
        if fragment:
            if resolved.suffix != ".md":
                continue
            anchors = _anchors(resolved)
            if fragment not in anchors:
                problems.append(
                    f"{target}: no heading in {resolved.name} slugs to "
                    f"{fragment!r}"
                )
    assert not problems, f"{doc.name}:\n  " + "\n  ".join(problems)
