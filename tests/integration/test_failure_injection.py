"""Failure injection: malformed inputs fail loudly and precisely."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import ChannelOrdering, motivating_example, save_system
from repro.errors import (
    ReproError,
    SimulationError,
    ValidationError,
)


class TestCliFailures:
    def test_malformed_json_exits_nonzero(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        # JSON decode failures surface as ValidationError -> exit 2,
        # never as a raw traceback.
        assert main(["analyze", str(path)]) == 2
        err = capsys.readouterr().err
        assert "not valid JSON" in err

    def test_missing_file_exits_nonzero(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_wrong_schema_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 1, "name": "x",
                                    "processes": [], "channels": []}))
        # no workers -> ValidationError -> exit 2
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_foreign_ordering_rejected(self, tmp_path, capsys):
        system_path = tmp_path / "sys.json"
        save_system(motivating_example(), system_path)
        ordering_path = tmp_path / "ord.json"
        ordering_path.write_text(json.dumps({
            "format_version": 1,
            "gets": {"P2": ["ghost"]},
            "puts": {},
        }))
        assert main(["analyze", str(system_path),
                     "--ordering", str(ordering_path)]) == 2


class TestBitstreamCorruption:
    def test_corrupted_stream_raises_cleanly(self):
        from repro.mpeg2.codec import (
            Decoder,
            Encoder,
            EncoderConfig,
            VideoFormat,
            synthetic_sequence,
        )

        fmt = VideoFormat(64, 48)
        frames = synthetic_sequence(2, fmt, seed=0)
        video = Encoder(EncoderConfig(qscale=8)).encode_sequence(frames)
        corrupted = bytearray(video.bitstream)
        corrupted[4] ^= 0xFF
        # A flipped byte either desynchronizes the entropy decoder (raises)
        # or silently decodes to different pixels — never to the same ones.
        try:
            decoded = Decoder(fmt).decode_sequence(bytes(corrupted), 2)
        except (ValidationError, ReproError):
            return
        assert any(
            not np.array_equal(d.y, r.y)
            for d, r in zip(decoded, video.reconstructed)
        )

    def test_truncated_stream_raises(self):
        from repro.mpeg2.codec import (
            Decoder,
            Encoder,
            EncoderConfig,
            VideoFormat,
            synthetic_sequence,
        )

        fmt = VideoFormat(64, 48)
        frames = synthetic_sequence(2, fmt, seed=1)
        video = Encoder(EncoderConfig(qscale=8)).encode_sequence(frames)
        with pytest.raises(ValidationError):
            Decoder(fmt).decode_sequence(video.bitstream[:20], 2)


class TestSimulatorMisuse:
    def test_bad_ordering_rejected_at_construction(self, tiny_pipeline):
        from repro.sim import Simulator

        bad = ChannelOrdering(gets={"A": ("ghost",)}, puts={})
        with pytest.raises(ValidationError):
            Simulator(tiny_pipeline, ordering=bad)

    def test_behavior_exception_propagates(self, tiny_pipeline):
        from repro.sim import simulate

        def explode(k, inputs):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            simulate(tiny_pipeline, behaviors={"A": explode}, iterations=2)

    def test_step_budget_guard(self, tiny_pipeline):
        from repro.sim import Simulator

        with pytest.raises(SimulationError, match="budget"):
            Simulator(tiny_pipeline).run(iterations=50, max_steps=3)


class TestModelMisuse:
    def test_payload_type_errors_surface(self):
        # A behavior returning a non-mapping output is a programming error
        # that should surface as a TypeError, not be silently dropped.
        from repro.core import pipeline
        from repro.sim import simulate

        with pytest.raises((TypeError, ValueError, AttributeError)):
            simulate(
                pipeline(1),
                behaviors={"stage0": lambda k, ins: "not-a-dict"},
                iterations=2,
            )

    def test_functional_payload_shape_errors(self):
        # Wrong-shaped payloads crash inside numpy with a clear error
        # rather than producing silent garbage.
        from repro.mpeg2.codec import dct2

        with pytest.raises(ValidationError):
            dct2(np.zeros((7, 7)))
