"""CLI tests (in-process via main())."""

import pytest

from repro.cli import main
from repro.core import (
    motivating_deadlock_ordering,
    motivating_example,
    save_ordering,
    save_system,
)


@pytest.fixture()
def system_file(tmp_path):
    path = tmp_path / "system.json"
    save_system(motivating_example(), path)
    return str(path)


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "36 possible orderings" in out
        assert "DEADLOCK" in out
        assert "cycle time 12" in out

    def test_analyze(self, system_file, capsys):
        assert main(["analyze", system_file]) == 0
        out = capsys.readouterr().out
        assert "cycle time" in out

    def test_analyze_engine_choice(self, system_file, capsys):
        assert main(["analyze", system_file, "--engine", "lawler"]) == 0

    def test_order_writes_file(self, system_file, tmp_path, capsys):
        out_path = tmp_path / "ord.json"
        assert main(["order", system_file, "-o", str(out_path)]) == 0
        assert out_path.exists()
        out = capsys.readouterr().out
        assert "P2" in out

    def test_check_live(self, system_file, capsys):
        assert main(["check", system_file]) == 0
        assert "deadlock-free" in capsys.readouterr().out

    def test_check_deadlock(self, system_file, tmp_path, capsys):
        system = motivating_example()
        ord_path = tmp_path / "dead.json"
        save_ordering(motivating_deadlock_ordering(system), ord_path)
        assert main(["check", system_file, "--ordering", str(ord_path)]) == 1
        assert "DEADLOCK" in capsys.readouterr().out

    def test_simulate(self, system_file, capsys):
        assert main(["simulate", system_file, "--iterations", "30"]) == 0
        out = capsys.readouterr().out
        assert "measured cycle time" in out
        assert "predicted cycle time" in out

    def test_simulate_deadlock_exit_code(self, system_file, tmp_path):
        ord_path = tmp_path / "dead.json"
        save_ordering(
            motivating_deadlock_ordering(motivating_example()), ord_path
        )
        assert main(
            ["simulate", system_file, "--ordering", str(ord_path)]
        ) == 1

    def test_simulate_batch(self, system_file, capsys):
        assert main(
            ["simulate", system_file, "--batch", "4", "--iterations", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "batch: 4 lanes" in out
        assert out.count("lane") >= 4
        assert "bit-identical to the scalar engine" in out

    def test_simulate_batch_default_lane_count(self, system_file, capsys):
        assert main(
            ["simulate", system_file, "--batch", "--iterations", "30"]
        ) == 0
        assert "batch: 8 lanes" in capsys.readouterr().out

    def test_simulate_batch_deadlock_exit_code(self, system_file, tmp_path):
        ord_path = tmp_path / "dead.json"
        save_ordering(
            motivating_deadlock_ordering(motivating_example()), ord_path
        )
        assert main(
            ["simulate", system_file, "--ordering", str(ord_path),
             "--batch", "2"]
        ) == 1

    def test_mpeg2_table1(self, capsys):
        assert main(["mpeg2", "--experiment", "table1"]) == 0
        out = capsys.readouterr().out
        assert "26" in out and "60" in out and "171" in out

    def test_mpeg2_m1(self, capsys):
        assert main(["mpeg2", "--experiment", "m1"]) == 0
        out = capsys.readouterr().out
        assert "1906" in out
        assert "improvement" in out

    def test_scalability_small(self, capsys):
        assert main(["scalability", "--sizes", "20,40"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + two rows

    def test_size_feasible(self, system_file, capsys):
        assert main(["size", system_file, "--target", "10"]) == 0
        out = capsys.readouterr().out
        assert "feasible" in out
        assert "capacity" in out

    def test_size_infeasible_exit_code(self, system_file, capsys):
        assert main(["size", system_file, "--target", "2"]) == 1
        assert "INFEASIBLE" in capsys.readouterr().out

    def test_dot_system(self, system_file, capsys):
        assert main(["dot", system_file, "--critical"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "color=red" in out

    def test_dot_tmg_to_file(self, system_file, tmp_path, capsys):
        out_path = tmp_path / "g.dot"
        assert main(["dot", system_file, "--tmg", "-o", str(out_path)]) == 0
        content = out_path.read_text()
        assert "proc:P2" in content

    def test_bottlenecks(self, system_file, capsys):
        assert main(["bottlenecks", system_file]) == 0
        out = capsys.readouterr().out
        assert "potential" in out
        assert "P2" in out

    def test_bottlenecks_top(self, system_file, capsys):
        assert main(["bottlenecks", system_file, "--top", "2"]) == 0


class TestIr:
    def test_ir_text(self, system_file, capsys):
        assert main(["ir", system_file]) == 0
        out = capsys.readouterr().out
        assert "structural hash:" in out
        assert "rendezvous" in out

    def test_ir_json_roundtrips(self, system_file, capsys):
        import json

        assert main(["ir", system_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert len(doc["structural_hash"]) == 64
        assert {p["name"] for p in doc["processes"]} >= {"Psrc", "Psnk"}
        assert all("program" in p for p in doc["processes"])

    def test_ir_hash_matches_library(self, system_file, capsys):
        import json

        from repro.core import load_system
        from repro.ir import lower

        assert main(["ir", system_file, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["structural_hash"] == (
            lower(load_system(system_file)).structural_hash
        )

    def test_ir_writes_file(self, system_file, tmp_path, capsys):
        out_path = tmp_path / "ir.txt"
        assert main(["ir", system_file, "-o", str(out_path)]) == 0
        assert "structural hash:" in out_path.read_text()

    def test_ir_invalid_ordering_exits_2(self, system_file, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["ir", system_file, "--ordering", str(bad)]) == 2


class TestOutputErrors:
    """Unwritable -o destinations exit 2 with a coded error, no traceback."""

    def test_order_output_failure_exits_2(self, system_file, capsys):
        assert main(
            ["order", system_file, "-o", "/nonexistent/dir/ord.json"]
        ) == 2
        assert "cannot write ordering file" in capsys.readouterr().err

    def test_report_output_failure_exits_2(self, system_file, capsys):
        assert main(
            ["report", system_file, "--no-sensitivity", "--no-stalls",
             "-o", "/nonexistent/dir/report.md"]
        ) == 2
        assert "cannot write report file" in capsys.readouterr().err

    def test_trace_output_failure_exits_2(self, system_file, capsys):
        assert main(
            ["trace", system_file, "--iterations", "5",
             "-o", "/nonexistent/dir/trace.json"]
        ) == 2
        assert "cannot write trace file" in capsys.readouterr().err

    def test_dot_output_failure_exits_2(self, system_file, capsys):
        assert main(
            ["dot", system_file, "-o", "/nonexistent/dir/graph.dot"]
        ) == 2
        assert "cannot write dot file" in capsys.readouterr().err

    def test_report_invalid_system_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"format_version": 1}')
        assert main(["report", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_invalid_system_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[]")
        assert main(["trace", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
