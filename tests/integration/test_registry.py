"""The experiment registry stays in sync with the benchmark files."""

from pathlib import Path

import pytest

from repro.bench import EXPERIMENTS, experiment, format_registry, format_rows

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


class TestRegistry:
    def test_every_registered_bench_exists(self):
        for entry in EXPERIMENTS:
            assert (BENCH_DIR / entry.bench).is_file(), entry.bench

    def test_every_bench_file_is_registered(self):
        registered = {entry.bench for entry in EXPERIMENTS}
        on_disk = {
            p.name
            for p in BENCH_DIR.glob("test_bench_*.py")
        }
        assert on_disk == registered

    def test_paper_artifacts_covered(self):
        ids = {entry.id for entry in EXPERIMENTS}
        assert {"FIG2", "FIG3", "FIG4", "TAB1", "M1", "FIG6L", "FIG6R",
                "SCAL"} <= ids

    def test_lookup(self):
        assert experiment("fig4").bench == "test_bench_fig4_ordering.py"
        with pytest.raises(KeyError):
            experiment("FIG99")

    def test_format(self):
        text = format_registry()
        assert "FIG6L" in text
        assert "test_bench_scalability.py" in text


class TestTables:
    def test_format_rows_aligns(self):
        text = format_rows([("a", 100), ("bbbb", 2)], header=("k", "v"))
        lines = text.splitlines()
        assert lines[0].strip().startswith("k")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_empty(self):
        assert format_rows([]) == ""

    def test_ragged_rows(self):
        text = format_rows([("a",), ("b", "c")])
        assert "c" in text
