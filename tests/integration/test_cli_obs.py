"""CLI tests for the observability commands (trace / profile / report)."""

import json

import pytest

from repro.cli import main
from repro.core import motivating_example, pipeline, save_system


@pytest.fixture()
def system_file(tmp_path):
    path = tmp_path / "system.json"
    save_system(motivating_example(), path)
    return str(path)


@pytest.fixture()
def pipeline_file(tmp_path):
    path = tmp_path / "pipe.json"
    save_system(pipeline(3), path)
    return str(path)


class TestTraceCommand:
    def test_perfetto_to_stdout_is_valid_json(self, system_file, capsys):
        assert main(["trace", system_file, "--format", "perfetto",
                     "--iterations", "10"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["traceEvents"]
        assert {e["ph"] for e in document["traceEvents"]} >= {"M", "X", "C"}

    def test_perfetto_to_file(self, system_file, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["trace", system_file, "-o", str(out)]) == 0
        json.loads(out.read_text())
        assert "events" in capsys.readouterr().out

    def test_vcd_monotonic_timestamps(self, system_file, capsys):
        assert main(["trace", system_file, "--format", "vcd",
                     "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "$enddefinitions $end" in out
        times = [int(line[1:]) for line in out.splitlines()
                 if line.startswith("#")]
        assert times == sorted(set(times))

    def test_jsonl_one_object_per_line(self, pipeline_file, capsys):
        assert main(["trace", pipeline_file, "--format", "jsonl",
                     "--iterations", "5"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert "time" in record and "kind" in record

    def test_text_format(self, pipeline_file, capsys):
        assert main(["trace", pipeline_file, "--format", "text",
                     "--iterations", "3", "--limit", "5"]) == 0
        assert "compute" in capsys.readouterr().out


class TestProfileCommand:
    def test_text_output_has_phases_and_cache(self, system_file, capsys):
        assert main(["profile", system_file, "--max-iterations", "4",
                     "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "profile.order" in out
        assert "profile.analyze" in out
        assert "profile.dse" in out
        assert "cache.results.hits" in out
        assert "convergence" in out

    def test_json_one_snapshot_per_iteration(self, system_file, capsys):
        assert main(["profile", system_file, "--json",
                     "--max-iterations", "4", "--no-simulate"]) == 0
        payload = json.loads(capsys.readouterr().out)
        iterations = payload["iterations"]
        assert iterations
        assert [row["iteration"] for row in iterations] == list(
            range(len(iterations))
        )
        assert "metrics" in payload
        assert "cache.results.misses" in payload["metrics"]["counters"]

    def test_explicit_target(self, system_file, capsys):
        assert main(["profile", system_file, "--target", "9",
                     "--max-iterations", "3", "--no-simulate"]) == 0
        assert "DSE target 9.0" in capsys.readouterr().out


class TestReportStallSection:
    def test_stall_section_present(self, system_file, capsys):
        assert main(["report", system_file, "--no-sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "## Stall attribution (simulated)" in out
        assert "waiting on" in out

    def test_no_stalls_flag(self, system_file, capsys):
        assert main(["report", system_file, "--no-sensitivity",
                     "--no-stalls"]) == 0
        assert "Stall attribution" not in capsys.readouterr().out
