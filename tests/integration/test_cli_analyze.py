"""``ermes analyze`` end to end: performance plus the static report."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import (
    motivating_deadlock_ordering,
    motivating_example,
    motivating_optimal_ordering,
    save_ordering,
    save_system,
)


@pytest.fixture()
def paths(tmp_path):
    system = motivating_example()
    system_path = tmp_path / "sys.json"
    save_system(system, system_path)
    out = {"system": str(system_path)}
    for label, ordering in (
        ("dead", motivating_deadlock_ordering(system)),
        ("best", motivating_optimal_ordering(system)),
    ):
        path = tmp_path / f"{label}.json"
        save_ordering(ordering, path)
        out[label] = str(path)
    return out


class TestTextFormat:
    def test_live_design_reports_performance_and_certificate(
        self, paths, capsys
    ):
        code = main(
            ["analyze", paths["system"], "--ordering", paths["best"]]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle time:" in out
        assert "static analysis of" in out
        assert "deadlock-freedom: CERTIFIED" in out

    def test_deadlocked_design_exits_one_with_the_cycle(
        self, paths, capsys
    ):
        code = main(
            ["analyze", paths["system"], "--ordering", paths["dead"]]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "deadlock-freedom: REFUTED" in captured.out
        assert "cycle time:" not in captured.out
        assert "token-free cycle" in captured.err


class TestJsonFormat:
    def test_live_payload(self, paths, capsys):
        code = main(
            ["analyze", paths["system"], "--ordering", paths["best"],
             "--format", "json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "motivating"
        assert payload["performance"]["cycle_time"] > 0
        static = payload["static"]
        assert static["deadlock_free"] is True
        assert static["certificate"]["method"] == "siphon-ranking"

    def test_deadlocked_payload_has_no_performance(self, paths, capsys):
        code = main(
            ["analyze", paths["system"], "--ordering", paths["dead"],
             "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["performance"] is None
        assert payload["static"]["deadlock_free"] is False
        assert payload["static"]["token_free_cycle"]

    def test_payload_is_stable(self, paths, capsys):
        args = ["analyze", paths["system"], "--ordering", paths["best"],
                "--format", "json"]
        main(args)
        first = capsys.readouterr().out
        main(args)
        assert capsys.readouterr().out == first
