"""Cross-module integration: the full methodology on one system."""

from fractions import Fraction

import pytest

from repro.core import synthetic_soc
from repro.dse import SystemConfiguration, explore
from repro.hls import ImplementationLibrary, synthesize_pareto_set
from repro.model import analyze_system, is_deadlock_free
from repro.ordering import channel_ordering, conservative_ordering
from repro.sim import simulate


@pytest.fixture(scope="module")
def soc():
    return synthetic_soc(30, seed=11)


@pytest.fixture(scope="module")
def library(soc):
    return ImplementationLibrary(
        synthesize_pareto_set(
            p.name,
            base_latency=p.latency * 6,
            base_area=40.0 * p.latency,
            seed=11,
            max_points=5,
        )
        for p in soc.workers()
    )


class TestFullFlow:
    def test_order_analyze_simulate_agree(self, soc):
        ordering = channel_ordering(soc)
        predicted = analyze_system(soc, ordering).cycle_time
        result = simulate(soc, ordering, iterations=50)
        measured = result.measured_cycle_time("Psnk")
        assert abs(float(measured) - float(predicted)) <= \
            float(predicted) * 0.1

    def test_explore_then_verify_by_simulation(self, soc, library):
        config = SystemConfiguration.initial(
            soc, library, ordering=conservative_ordering(soc),
            pick="smallest",
        )
        start_ct = analyze_system(
            soc, config.ordering,
            process_latencies=config.process_latencies(),
        ).cycle_time
        target = int(start_ct * 0.6)
        result = explore(config, target_cycle_time=target)
        final = result.final
        # simulate the final configuration and confirm the analytic claim
        sim = simulate(
            soc,
            final.ordering,
            iterations=40,
            process_latencies=final.process_latencies(),
        )
        measured = sim.measured_cycle_time("Psnk")
        assert abs(float(measured) - float(result.final_record.cycle_time)) \
            <= float(result.final_record.cycle_time) * 0.1

    def test_exploration_monotone_benefit(self, soc, library):
        """The returned configuration is never worse than the start on the
        targeted objective."""
        config = SystemConfiguration.initial(
            soc, library, ordering=conservative_ordering(soc),
            pick="smallest",
        )
        start = analyze_system(
            soc, config.ordering,
            process_latencies=config.process_latencies(),
        ).cycle_time
        result = explore(config, target_cycle_time=int(start * 0.7))
        assert result.final_record.cycle_time <= start

    def test_ordering_stays_live_through_exploration(self, soc, library):
        config = SystemConfiguration.initial(
            soc, library, ordering=conservative_ordering(soc),
            pick="smallest",
        )
        result = explore(config, target_cycle_time=1)
        assert is_deadlock_free(soc, result.final.ordering)

    def test_throughput_is_reciprocal_cycle_time(self, soc):
        ordering = channel_ordering(soc)
        perf = analyze_system(soc, ordering)
        assert perf.throughput == 1 / Fraction(perf.cycle_time)
