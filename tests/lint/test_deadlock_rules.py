"""ERM201 (ordering-induced deadlock) and ERM302 (token-free loops)."""

import pytest

from repro.diagnostics import LintError, Severity
from repro.lint import (
    apply_fixes,
    format_witness,
    lint_system,
    preflight,
    witness_statements,
)
from repro.model import deadlock_cycle, is_deadlock_free


class TestERM201:
    """The paper's Section 2 deadlock, diagnosed and fixed."""

    def test_fires_on_listing1_ordering(self, motivating, deadlock_ordering):
        result = lint_system(motivating, deadlock_ordering)
        findings = [d for d in result if d.rule == "ERM201"]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR

    def test_message_names_the_circular_wait(self, motivating,
                                             deadlock_ordering):
        [diag] = [d for d in lint_system(motivating, deadlock_ordering)
                  if d.rule == "ERM201"]
        # The blocked statements of the witness, with their positions.
        assert "circular wait" in diag.message
        assert "P2 puts 'f'" in diag.message
        assert "P6 gets 'd'" in diag.message
        assert "statement" in diag.message
        # The location carries the cycle's design elements.
        assert set(diag.location) <= (
            set(motivating.process_names)
            | {c.name for c in motivating.channels}
        )

    def test_fix_makes_the_design_live(self, motivating, deadlock_ordering):
        result = lint_system(motivating, deadlock_ordering)
        [diag] = [d for d in result if d.rule == "ERM201"]
        assert diag.fixable
        outcome = apply_fixes(motivating, deadlock_ordering,
                              result.diagnostics)
        assert outcome.changed
        assert is_deadlock_free(motivating, outcome.ordering)
        assert deadlock_cycle(motivating, outcome.ordering) is None

    def test_silent_on_live_orderings(self, motivating, optimal_ordering,
                                      suboptimal_ordering):
        for ordering in (optimal_ordering, suboptimal_ordering):
            assert "ERM201" not in lint_system(motivating, ordering).codes()

    def test_witness_statements_cover_the_cycle(self, motivating,
                                                deadlock_ordering):
        cycle = deadlock_cycle(motivating, deadlock_ordering)
        assert cycle is not None
        statements = witness_statements(motivating, deadlock_ordering, cycle)
        assert len(statements) == len(cycle)
        for s in statements:
            assert 1 <= s.index <= s.total
            assert s.kind in {"get", "put", "compute"}
        text = format_witness(motivating, deadlock_ordering, cycle)
        assert " -> ".join(s.format() for s in statements) == text


class TestERM302:
    def test_fires_on_token_free_loop(self, token_free_ring):
        result = lint_system(token_free_ring)
        [diag] = [d for d in result if d.rule == "ERM302"]
        assert diag.severity is Severity.ERROR
        assert "initial_tokens" in diag.message
        assert {"w0", "w1", "fwd", "back"} == set(diag.location)
        # ERM302 owns this: no ordering can fix it, so ERM201 stays quiet.
        assert "ERM201" not in result.codes()

    def test_preflight_raises_with_codes(self, token_free_ring):
        with pytest.raises(LintError) as excinfo:
            preflight(token_free_ring)
        assert excinfo.value.rule_codes == ("ERM302",)

    def test_silent_when_loop_is_preloaded(self, feedback_system):
        assert "ERM302" not in lint_system(feedback_system).codes()
        preflight(feedback_system)  # must not raise

    def test_preflight_accepts_the_motivating_deadlock(self, motivating,
                                                       deadlock_ordering):
        # Ordering-induced deadlock is an analysis-time concern (ERM201),
        # deliberately outside the structural preflight.
        preflight(motivating, deadlock_ordering)
