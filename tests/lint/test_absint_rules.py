"""ERM601-ERM604 — the abstract-interpretation dataflow rules."""

from __future__ import annotations

import pytest

from repro.core import SystemBuilder
from repro.diagnostics import Severity
from repro.lint import default_registry, lint_system
from repro.lint.registry import category
from repro.mpeg2 import build_mpeg2_system
from repro.ordering import channel_ordering


@pytest.fixture()
def over_provisioned_loop():
    """Deep FIFOs on a loop carrying a single token (ERM601 bait)."""
    return (
        SystemBuilder("creditloop")
        .source("src", latency=1)
        .process("w1", latency=1)
        .process("w2", latency=1)
        .sink("snk", latency=1)
        .channel("c_in", "src", "w1", latency=1)
        .channel("f", "w1", "w2", latency=1, capacity=4)
        .channel("bk", "w2", "w1", latency=1, capacity=4, initial_tokens=1)
        .channel("c_out", "w2", "snk", latency=1)
        .build()
    )


@pytest.fixture()
def dead_on_arrival():
    """Live spine plus a token-free rendezvous loop (ERM602/603 bait)."""
    return (
        SystemBuilder("doa")
        .source("src", latency=1)
        .process("w1", latency=1)
        .process("w2", latency=1)
        .sink("snk", latency=1)
        .channel("a", "src", "w1", latency=1)
        .channel("x", "w1", "w2", latency=1)
        .channel("y", "w2", "w1", latency=1)
        .channel("o", "w1", "snk", latency=1)
        .build()
    )


class TestRegistration:
    def test_rules_are_registered_with_the_dataflow_category(self):
        registry = default_registry()
        codes = {rule.code for rule in registry}
        assert {"ERM601", "ERM602", "ERM603", "ERM604"} <= codes
        for code in ("ERM601", "ERM602", "ERM603", "ERM604"):
            assert registry.rule(code) is not None
            assert category(code) == "dataflow"


class TestERM601:
    def test_flags_unusable_fifo_depth(self, over_provisioned_loop):
        result = lint_system(over_provisioned_loop, select=["ERM6"])
        findings = [d for d in result if d.rule == "ERM601"]
        assert {d.location[0] for d in findings} == {"f", "bk"}
        for diagnostic in findings:
            assert diagnostic.severity is Severity.WARNING
            assert "capacity 4" in diagnostic.message
            assert "bounded by 1" in diagnostic.message

    def test_silent_when_capacity_is_reachable(self, tiny_pipeline):
        result = lint_system(tiny_pipeline, select=["ERM6"])
        assert not [d for d in result if d.rule == "ERM601"]


class TestERM602AndERM603:
    def test_dead_channels_are_flagged(self, dead_on_arrival):
        result = lint_system(dead_on_arrival, select=["ERM6"])
        dead = {d.location[0] for d in result if d.rule == "ERM602"}
        assert dead == {"o", "x", "y"}

    def test_unreachable_statements_are_flagged(self, dead_on_arrival):
        result = lint_system(dead_on_arrival, select=["ERM6"])
        findings = [d for d in result if d.rule == "ERM603"]
        assert findings
        messages = "\n".join(d.message for d in findings)
        assert "statically unreachable" in messages
        assert "'w2'" in messages
        # The live source side raises no ERM603.
        assert not any(d.location[0] == "src" for d in findings)

    def test_silent_on_live_designs(self, motivating, optimal_ordering):
        result = lint_system(motivating, optimal_ordering, select=["ERM6"])
        assert not [d for d in result if d.rule in ("ERM602", "ERM603")]


class TestERM604:
    def test_certificate_reported_beyond_bfs_scale(self):
        system = build_mpeg2_system()
        ordering = channel_ordering(system)
        result = lint_system(system, ordering, select=["ERM6"])
        [finding] = [d for d in result if d.rule == "ERM604"]
        assert finding.severity is Severity.INFO
        assert "siphon-ranking" in finding.message

    def test_silent_when_exhaustive_verdict_exists(
        self, motivating, optimal_ordering
    ):
        result = lint_system(motivating, optimal_ordering, select=["ERM6"])
        assert not [d for d in result if d.rule == "ERM604"]

    def test_silent_on_refuted_configurations(
        self, motivating, deadlock_ordering
    ):
        result = lint_system(motivating, deadlock_ordering, select=["ERM6"])
        assert not [d for d in result if d.rule == "ERM604"]
