"""LintContext serves the lowered IR and its hash as shared cache keys."""

from repro.core import ChannelOrdering
from repro.ir import lower
from repro.lint import LintContext
from repro.perf.fingerprint import structure_fingerprint


class TestContextIr:
    def test_ir_is_the_shared_lowering(self, motivating):
        context = LintContext(motivating)
        assert context.ir() is lower(motivating)
        assert context.ir() is context.ir()

    def test_ir_hash_equals_the_perf_fingerprint(self, motivating):
        context = LintContext(motivating)
        assert context.ir_hash() == structure_fingerprint(
            motivating, ChannelOrdering.declaration_order(motivating)
        )

    def test_unsound_configuration_has_no_ir(self, motivating):
        broken = ChannelOrdering(gets={"P6": ("d", "e")}, puts={})
        context = LintContext(motivating, broken)
        assert context.ir() is None
        assert context.ir_hash() is None
