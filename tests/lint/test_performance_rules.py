"""ERM301 / ERM303 performance lints and ERM4xx hygiene infos."""

from fractions import Fraction

from repro.core import ChannelOrdering, SystemBuilder
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.lint import Severity, apply_fixes, lint_system
from repro.model import analyze_system
from repro.ordering import channel_ordering, declaration_ordering


class TestERM301:
    def test_fires_on_suboptimal_ordering(self, motivating,
                                          suboptimal_ordering):
        result = lint_system(motivating, suboptimal_ordering)
        [diag] = [d for d in result if d.rule == "ERM301"]
        assert diag.severity is Severity.WARNING
        assert diag.fixable

    def test_delta_matches_analyze_system_exactly(self, motivating,
                                                  suboptimal_ordering):
        """The reported delta is Fraction-exact and bit-identical to the
        analyses of the two orderings (acceptance criterion)."""
        [diag] = [d for d in lint_system(motivating, suboptimal_ordering)
                  if d.rule == "ERM301"]
        current = analyze_system(motivating, suboptimal_ordering,
                                 exact=True).cycle_time
        best_ordering = channel_ordering(
            motivating, initial_ordering=suboptimal_ordering
        )
        best = analyze_system(motivating, best_ordering,
                              exact=True).cycle_time
        delta = current - best
        assert isinstance(delta, Fraction) and delta > 0
        # The paper's numbers: 20 (hand-fixed) vs 12 (Algorithm 1).
        assert (current, best) == (Fraction(20), Fraction(12))
        assert f"cycle time {current} vs {best}" in diag.message
        assert f"delta {delta}" in diag.message

    def test_fix_reaches_the_optimized_cycle_time(self, motivating,
                                                  suboptimal_ordering):
        result = lint_system(motivating, suboptimal_ordering)
        outcome = apply_fixes(motivating, suboptimal_ordering,
                              result.diagnostics)
        assert outcome.changed
        fixed = analyze_system(motivating, outcome.ordering,
                               exact=True).cycle_time
        assert fixed == Fraction(12)
        # Re-linting the fixed design reports no ERM301.
        assert "ERM301" not in lint_system(motivating,
                                           outcome.ordering).codes()

    def test_silent_on_optimal_ordering(self, motivating, optimal_ordering):
        assert "ERM301" not in lint_system(motivating,
                                           optimal_ordering).codes()

    def test_silent_on_deadlocking_ordering(self, motivating,
                                            deadlock_ordering):
        # A dead design has no cycle time to compare; ERM201 owns it.
        assert "ERM301" not in lint_system(motivating,
                                           deadlock_ordering).codes()


class TestERM303:
    def _library(self, with_dominated: bool) -> ImplementationLibrary:
        points = [
            Implementation("fast", latency=2, area=100.0),
            Implementation("small", latency=8, area=20.0),
        ]
        if with_dominated:
            # Slower *and* larger than "fast": never selectable.
            points.append(Implementation("bad", latency=4, area=150.0))
        return ImplementationLibrary([
            ParetoSet(process="P2", points=tuple(points)),
        ])

    def test_fires_on_dominated_entry(self, motivating, optimal_ordering):
        result = lint_system(motivating, optimal_ordering,
                             library=self._library(with_dominated=True))
        [diag] = [d for d in result if d.rule == "ERM303"]
        assert diag.location == ("P2", "bad")
        assert "dominated by 'fast'" in diag.message

    def test_silent_on_frontier_library(self, motivating, optimal_ordering):
        result = lint_system(motivating, optimal_ordering,
                             library=self._library(with_dominated=False))
        assert "ERM303" not in result.codes()

    def test_silent_without_library(self, motivating, optimal_ordering):
        assert "ERM303" not in lint_system(motivating,
                                           optimal_ordering).codes()


class TestHygiene:
    def test_erm401_flags_default_latency_workers(self):
        system = (
            SystemBuilder("hyg")
            .source("src", latency=2)
            .process("A")  # default latency: uncharacterized
            .process("B", latency=5)
            .sink("snk", latency=2)
            .channel("i", "src", "A", latency=1)
            .channel("x", "A", "B", latency=1)
            .channel("o", "B", "snk", latency=1)
            .build()
        )
        result = lint_system(system, declaration_ordering(system))
        findings = [d for d in result if d.rule == "ERM401"]
        assert [d.location for d in findings] == [("A",)]
        assert all(d.severity is Severity.INFO for d in findings)

    def test_erm402_flags_unreferenced_channels(self, motivating):
        ordering = ChannelOrdering(
            gets={"P6": ("g", "d", "e")}, puts={"P2": ("b", "d", "f")}
        )
        result = lint_system(motivating, ordering)
        flagged = {d.location[0] for d in result if d.rule == "ERM402"}
        # Channels only ever touched by the processes missing from the
        # partial ordering are unreferenced.
        assert "a" in flagged
        assert "d" not in flagged  # appears in both entries above

    def test_erm402_silent_on_complete_ordering(self, motivating,
                                                optimal_ordering):
        assert "ERM402" not in lint_system(motivating,
                                           optimal_ordering).codes()
