"""ERM1xx structural rules, via both the linter and validation core."""

import pytest

from repro.core import ChannelOrdering, SystemBuilder
from repro.core.validation import (
    ordering_diagnostics,
    structural_diagnostics,
    validate_system,
)
from repro.errors import ValidationError
from repro.lint import Severity, lint_system


def broken_system():
    """One system violating several invariants at once.

    * the source feeds nothing and `a` feeds the source (ERM102);
    * `b` is fully disconnected (ERM104, ERM105, ERM106);
    * nothing reaches the sink (ERM107).
    """
    return (
        SystemBuilder("broken")
        .source("s", latency=1)
        .process("a", latency=1)
        .process("b", latency=1)
        .sink("k", latency=1)
        .channel("c1", "s", "a", latency=1)
        .channel("c2", "a", "s", latency=1)
        .build(validate=False)
    )


class TestCollectAll:
    def test_all_violations_reported_at_once(self):
        codes = {d.rule for d in structural_diagnostics(broken_system())}
        assert codes == {"ERM102", "ERM104", "ERM105", "ERM106", "ERM107"}

    def test_all_structural_findings_are_errors(self):
        for d in structural_diagnostics(broken_system()):
            assert d.severity is Severity.ERROR

    def test_clean_system_has_no_findings(self, motivating):
        assert structural_diagnostics(motivating) == []

    def test_no_workers(self):
        system = (
            SystemBuilder("empty").source("s").sink("k")
            .channel("c", "s", "k").build(validate=False)
        )
        codes = {d.rule for d in structural_diagnostics(system)}
        assert "ERM101" in codes


class TestValidateSystemWrapper:
    def test_raises_first_error_message(self):
        with pytest.raises(ValidationError) as excinfo:
            validate_system(broken_system())
        first = structural_diagnostics(broken_system())[0]
        assert str(excinfo.value) == first.message

    def test_clean_system_passes(self, motivating):
        validate_system(motivating)


class TestOrderingDiagnostics:
    def test_non_permutation_flagged_per_process(self, motivating):
        ordering = ChannelOrdering(
            gets={"P6": ("g",)},  # P6 really gets g, d, e
            puts={},
        )
        findings = ordering_diagnostics(motivating, ordering)
        assert all(d.rule == "ERM108" for d in findings)
        assert any(d.location == ("P6",) and "permutation" in d.message
                   for d in findings)

    def test_unknown_process_flagged(self, motivating):
        ordering = ChannelOrdering(gets={"ghost": ("a",)}, puts={})
        findings = ordering_diagnostics(motivating, ordering)
        assert any("unknown process 'ghost'" in d.message for d in findings)

    def test_valid_ordering_clean(self, motivating, optimal_ordering):
        assert ordering_diagnostics(motivating, optimal_ordering) == []


class TestLintIntegration:
    def test_lint_reports_erm1_on_broken_system(self):
        result = lint_system(broken_system())
        assert {"ERM102", "ERM104", "ERM105", "ERM106", "ERM107"} <= set(
            result.codes()
        )
        # Downstream rules must not crash (or fire) on unsound structure.
        assert not any(c.startswith("ERM2") or c == "ERM301"
                       for c in result.codes())

    def test_lint_reports_erm108_for_foreign_ordering(self, motivating):
        ordering = ChannelOrdering(gets={"ghost": ("a",)}, puts={})
        result = lint_system(motivating, ordering)
        assert "ERM108" in result.codes()
