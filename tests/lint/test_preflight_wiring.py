"""The structural pre-flight is wired into simulation, DSE, and sweeps."""

import pytest

from repro.diagnostics import LintError
from repro.dse import Explorer, SystemConfiguration
from repro.dse.sweep import sweep_targets
from repro.errors import ValidationError
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.ordering import declaration_ordering
from repro.sim import Simulator


def _config(system):
    library = ImplementationLibrary([
        ParetoSet.from_points(w.name, [Implementation("only", 2, 1.0)])
        for w in system.workers()
    ])
    selection = {w.name: "only" for w in system.workers()}
    return SystemConfiguration(system, library, selection,
                               declaration_ordering(system))


class TestSimulator:
    def test_rejects_token_free_loop_with_codes(self, token_free_ring):
        with pytest.raises(LintError) as excinfo:
            Simulator(token_free_ring)
        assert excinfo.value.rule_codes == ("ERM302",)

    def test_still_raises_validation_error_for_old_callers(
        self, token_free_ring
    ):
        with pytest.raises(ValidationError):
            Simulator(token_free_ring)

    def test_accepts_live_design(self, feedback_system):
        Simulator(feedback_system)


class TestExplorer:
    def test_run_rejects_token_free_loop(self, token_free_ring):
        with pytest.raises(LintError) as excinfo:
            Explorer(target_cycle_time=100).run(_config(token_free_ring))
        assert "ERM302" in excinfo.value.rule_codes

    def test_sweep_rejects_token_free_loop(self, token_free_ring):
        with pytest.raises(LintError):
            sweep_targets(_config(token_free_ring), targets=[100, 50])

    def test_run_accepts_live_design(self, feedback_system):
        result = Explorer(target_cycle_time=1000).run(
            _config(feedback_system)
        )
        assert result.final is not None
