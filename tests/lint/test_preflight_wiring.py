"""The structural pre-flight is wired into simulation, DSE, and sweeps."""

import pytest

from repro.diagnostics import LintError
from repro.dse import Explorer, SystemConfiguration
from repro.dse.sweep import sweep_targets
from repro.errors import ValidationError
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.ordering import declaration_ordering
from repro.sim import Simulator


def _config(system):
    library = ImplementationLibrary([
        ParetoSet.from_points(w.name, [Implementation("only", 2, 1.0)])
        for w in system.workers()
    ])
    selection = {w.name: "only" for w in system.workers()}
    return SystemConfiguration(system, library, selection,
                               declaration_ordering(system))


class TestSimulator:
    def test_rejects_token_free_loop_with_codes(self, token_free_ring):
        with pytest.raises(LintError) as excinfo:
            Simulator(token_free_ring)
        assert excinfo.value.rule_codes == ("ERM302",)

    def test_still_raises_validation_error_for_old_callers(
        self, token_free_ring
    ):
        with pytest.raises(ValidationError):
            Simulator(token_free_ring)

    def test_accepts_live_design(self, feedback_system):
        Simulator(feedback_system)


class TestExplorer:
    def test_run_rejects_token_free_loop(self, token_free_ring):
        with pytest.raises(LintError) as excinfo:
            Explorer(target_cycle_time=100).run(_config(token_free_ring))
        assert "ERM302" in excinfo.value.rule_codes

    def test_sweep_rejects_token_free_loop(self, token_free_ring):
        with pytest.raises(LintError):
            sweep_targets(_config(token_free_ring), targets=[100, 50])

    def test_run_accepts_live_design(self, feedback_system):
        result = Explorer(target_cycle_time=1000).run(
            _config(feedback_system)
        )
        assert result.final is not None


class TestPreflightMemo:
    """Successful default-registry pre-flights are served from the memo."""

    @pytest.fixture(autouse=True)
    def _fresh(self):
        from repro.lint import clear_preflight_cache

        clear_preflight_cache()
        yield
        clear_preflight_cache()

    def test_second_run_skips_the_rules(self, feedback_system, monkeypatch):
        import repro.lint as lint

        preflight = lint.preflight
        preflight(feedback_system)
        calls = []
        monkeypatch.setattr(
            lint,
            "lint_system",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(
                AssertionError("memoized pre-flight re-ran the rules")
            ),
        )
        preflight(feedback_system)
        assert not calls

    def test_failures_are_never_memoized(self, token_free_ring):
        from repro.lint import preflight

        with pytest.raises(LintError):
            preflight(token_free_ring)
        with pytest.raises(LintError):
            preflight(token_free_ring)

    def test_unknown_process_ordering_is_not_memoized(self, feedback_system):
        from repro.core import ChannelOrdering
        from repro.lint import preflight

        declaration = ChannelOrdering.declaration_order(feedback_system)
        # A valid pass first, so an aliasing bug would wrongly hit.
        preflight(feedback_system, declaration)
        haunted = ChannelOrdering(
            gets={**declaration.gets, "ghost": ("i",)},
            puts=dict(declaration.puts),
        )
        with pytest.raises(LintError) as excinfo:
            preflight(feedback_system, haunted)
        assert "ERM108" in excinfo.value.rule_codes

    def test_custom_registry_is_not_memoized(self, feedback_system):
        from repro.lint import preflight
        from repro.lint.registry import default_registry

        preflight(feedback_system)
        # A custom registry with no rules accepts everything; it must not
        # pollute (or read) the default-registry memo.
        preflight(feedback_system, registry=default_registry())

    def test_latency_change_shares_the_memo_entry(
        self, feedback_system, monkeypatch
    ):
        import repro.lint as lint

        lint.preflight(feedback_system)
        faster = feedback_system.with_process_latencies(
            {p.name: 1 for p in feedback_system.processes}
        )
        calls = []
        monkeypatch.setattr(
            lint,
            "lint_system",
            lambda *a, **k: calls.append(1) or (_ for _ in ()).throw(
                AssertionError("latency-only change missed the memo")
            ),
        )
        lint.preflight(faster)
        assert not calls
