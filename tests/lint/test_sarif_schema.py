"""SARIF 2.1.0 conformance of the lint exporter.

Validates :func:`repro.lint.render.sarif_dict` against a vendored
draft-07 subset of the OASIS ``sarif-schema-2.1.0`` (see
``sarif-2.1.0.schema.json`` next to this file) plus the cross-document
invariants a schema cannot express: every ``ruleIndex`` must point at
the driver rule carrying the result's ``ruleId``.
"""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.lint import lint_system
from repro.lint.render import render_sarif, sarif_dict

SCHEMA = json.loads(
    (Path(__file__).parent / "sarif-2.1.0.schema.json").read_text()
)


def _validate(document):
    jsonschema.Draft7Validator(SCHEMA).validate(document)


@pytest.fixture()
def clean_log(motivating, optimal_ordering):
    return sarif_dict(lint_system(motivating, optimal_ordering))


@pytest.fixture()
def deadlock_log(motivating, deadlock_ordering):
    return sarif_dict(lint_system(motivating, deadlock_ordering))


class TestSchemaConformance:
    def test_clean_run_conforms(self, clean_log):
        _validate(clean_log)

    def test_deadlock_run_conforms(self, deadlock_log):
        _validate(deadlock_log)

    def test_rendered_string_is_the_same_document(
        self, motivating, deadlock_ordering
    ):
        result = lint_system(motivating, deadlock_ordering)
        _validate(json.loads(render_sarif(result)))

    def test_schema_rejects_a_broken_log(self, deadlock_log):
        deadlock_log["runs"][0]["results"][0].pop("ruleId")
        with pytest.raises(jsonschema.ValidationError):
            _validate(deadlock_log)


class TestCrossReferences:
    def test_rule_indices_resolve_to_their_rule_ids(self, deadlock_log):
        run = deadlock_log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        assert run["results"], "deadlock run must report findings"
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]

    def test_driver_metadata_covers_the_dataflow_rules(self, clean_log):
        rules = clean_log["runs"][0]["tool"]["driver"]["rules"]
        ids = {rule["id"] for rule in rules}
        assert {"ERM601", "ERM602", "ERM603", "ERM604"} <= ids
        for rule in rules:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "none", "note", "warning", "error"
            )

    def test_dead_channels_reach_the_results_array(self, deadlock_log):
        results = deadlock_log["runs"][0]["results"]
        assert any(r["ruleId"] == "ERM602" for r in results)
