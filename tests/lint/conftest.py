"""Fixtures for the lint suite (root conftest provides the motivating ones)."""

from __future__ import annotations

import pytest

from repro.core import SystemBuilder


@pytest.fixture()
def token_free_ring():
    """A two-worker feedback loop with no initial tokens anywhere.

    Deadlocks under *every* statement ordering (ERM302): each worker's
    forward path must cross an unmarked feedback place.
    """
    return (
        SystemBuilder("deadring")
        .source("src", latency=1)
        .process("w0", latency=2)
        .process("w1", latency=2)
        .sink("snk", latency=1)
        .channel("i", "src", "w0", latency=1)
        .channel("fwd", "w0", "w1", latency=1)
        .channel("back", "w1", "w0", latency=1, initial_tokens=0)
        .channel("o", "w1", "snk", latency=1)
        .build()
    )
