"""The ``ermes lint`` subcommand, end to end through ``main()``."""

import json

import pytest

from repro.cli import main
from repro.core import (
    motivating_deadlock_ordering,
    motivating_example,
    motivating_optimal_ordering,
    motivating_suboptimal_ordering,
    save_ordering,
    save_system,
)


@pytest.fixture()
def paths(tmp_path):
    system = motivating_example()
    system_path = tmp_path / "sys.json"
    save_system(system, system_path)
    out = {"system": str(system_path)}
    for label, ordering in (
        ("dead", motivating_deadlock_ordering(system)),
        ("slow", motivating_suboptimal_ordering(system)),
        ("best", motivating_optimal_ordering(system)),
    ):
        path = tmp_path / f"{label}.json"
        save_ordering(ordering, path)
        out[label] = str(path)
    return out


class TestExitCodes:
    def test_clean_design_exits_zero(self, paths, capsys):
        code = main(["lint", paths["system"], "--ordering", paths["best"],
                     "--ignore", "ERM4"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_error_finding_exits_one(self, paths, capsys):
        code = main(["lint", paths["system"], "--ordering", paths["dead"]])
        assert code == 1
        assert "ERM201" in capsys.readouterr().out

    def test_warning_passes_unless_fail_on_warning(self, paths, capsys):
        args = ["lint", paths["system"], "--ordering", paths["slow"],
                "--ignore", "ERM4"]
        assert main(args) == 0
        assert main(args + ["--fail-on", "warning"]) == 1
        assert "ERM301" in capsys.readouterr().out

    def test_unknown_selector_exits_two(self, paths, capsys):
        assert main(["lint", paths["system"], "--select", "ERM9"]) == 2
        assert "matches no registered rule" in capsys.readouterr().err


class TestSelection:
    def test_select_restricts_rules(self, paths, capsys):
        main(["lint", paths["system"], "--ordering", paths["slow"],
              "--select", "ERM3", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert {d["rule"] for d in doc["diagnostics"]} == {"ERM301"}


class TestFormats:
    def test_json(self, paths, capsys):
        main(["lint", paths["system"], "--ordering", paths["dead"],
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        # The structural diagnosis (ERM201) plus its exhaustive
        # confirmation (ERM501) — and never the ERM502 disagreement alarm.
        assert doc["summary"]["errors"] == 2
        errors = {d["rule"] for d in doc["diagnostics"]
                  if d["severity"] == "error"}
        assert errors == {"ERM201", "ERM501"}

    def test_sarif(self, paths, capsys):
        main(["lint", paths["system"], "--ordering", paths["dead"],
              "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        assert doc["runs"][0]["results"]


class TestFix:
    def test_fix_heals_the_deadlock(self, paths, tmp_path, capsys):
        """Acceptance: lint --fix then check reports deadlock-free."""
        fixed = str(tmp_path / "fixed.json")
        code = main(["lint", paths["system"], "--ordering", paths["dead"],
                     "--fix", "-o", fixed])
        out = capsys.readouterr().out
        assert "applied 1 fix(es) [ERM201]" in out
        assert "ERM201" not in out.split("\n", 1)[1]  # post-fix re-lint
        assert code == 0  # no errors remain
        assert main(["check", paths["system"], "--ordering", fixed]) == 0
        assert "deadlock-free" in capsys.readouterr().out

    def test_fix_defaults_to_the_ordering_file(self, paths, capsys):
        assert main(["lint", paths["system"], "--ordering", paths["slow"],
                     "--fix"]) == 0
        assert main(["check", paths["system"],
                     "--ordering", paths["slow"]]) == 0
        # The rewritten file now carries the Algorithm-1 ordering.
        out = capsys.readouterr().out
        assert "deadlock-free" in out

    def test_fix_without_destination_exits_two(self, paths, capsys):
        assert main(["lint", paths["system"], "--fix"]) == 2
        assert "--fix needs" in capsys.readouterr().err

    def test_nothing_to_fix(self, paths, capsys):
        assert main(["lint", paths["system"], "--ordering", paths["best"],
                     "--fix"]) == 0
        assert "nothing to fix" in capsys.readouterr().out


class TestCheckWitness:
    def test_check_prints_statement_positions(self, paths, capsys):
        assert main(["check", paths["system"],
                     "--ordering", paths["dead"]]) == 1
        out = capsys.readouterr().out
        assert "DEADLOCK" in out
        assert "[statement" in out  # the decoded blocked statements
