"""Byte-stability of lint output and idempotence of --fix.

CI diffs lint output and caches SARIF logs; both only work when
rendering the same findings is deterministic down to the byte, and when
re-applying fixes to an already-fixed ordering is a no-op.
"""

from repro.diagnostics import Diagnostic, Severity, sorted_diagnostics
from repro.lint import (
    apply_fixes,
    lint_system,
    render_json,
    render_sarif,
    render_text,
)


class TestTotalOrder:
    def test_sort_key_breaks_ties_on_message(self):
        """Two findings of the same rule at the same location must not
        compare equal — the message is the final tiebreak, so the sort
        is total and insertion order never leaks into the output."""
        a = Diagnostic(rule="ERM401", severity=Severity.INFO,
                       message="alpha", location=("P1",))
        b = Diagnostic(rule="ERM401", severity=Severity.INFO,
                       message="beta", location=("P1",))
        assert a.sort_key() != b.sort_key()
        assert sorted_diagnostics([b, a]) == (a, b)
        assert sorted_diagnostics([a, b]) == (a, b)

    def test_severity_then_rule_then_location_then_message(self):
        error = Diagnostic(rule="ERM999", severity=Severity.ERROR,
                           message="z")
        info_early = Diagnostic(rule="ERM101", severity=Severity.INFO,
                                message="a", location=("A",))
        info_late = Diagnostic(rule="ERM101", severity=Severity.INFO,
                               message="a", location=("B",))
        assert sorted_diagnostics([info_late, info_early, error]) == (
            error, info_early, info_late
        )


class TestByteStability:
    def test_full_catalog_renders_identically_twice(self, motivating,
                                                    deadlock_ordering):
        """The regression: every rule of the catalog runs, twice, from
        scratch — all three renderings must be byte-identical."""
        first = lint_system(motivating, deadlock_ordering)
        second = lint_system(motivating, deadlock_ordering)
        assert render_text(first, verbose=True) == render_text(
            second, verbose=True
        )
        assert render_json(first) == render_json(second)
        assert render_sarif(first) == render_sarif(second)

    def test_diagnostics_come_out_sorted(self, motivating,
                                         deadlock_ordering):
        result = lint_system(motivating, deadlock_ordering)
        assert result.diagnostics == sorted_diagnostics(result.diagnostics)


class TestFixIdempotence:
    def test_apply_fixes_twice_is_a_no_op(self, motivating,
                                          deadlock_ordering):
        first = lint_system(motivating, deadlock_ordering)
        outcome = apply_fixes(motivating, deadlock_ordering,
                              first.diagnostics)
        assert outcome.changed  # the ERM201 fix-it heals the deadlock

        relint = lint_system(motivating, outcome.ordering)
        again = apply_fixes(motivating, outcome.ordering,
                            relint.diagnostics)
        assert not again.changed
        assert again.ordering == outcome.ordering

    def test_reapplying_the_same_diagnostics_converges(self, motivating,
                                                       deadlock_ordering):
        """Even replaying the *original* diagnostics against the fixed
        ordering must not oscillate: the patch sets absolute per-process
        sequences, so it is idempotent by construction."""
        first = lint_system(motivating, deadlock_ordering)
        outcome = apply_fixes(motivating, deadlock_ordering,
                              first.diagnostics)
        replay = apply_fixes(motivating, outcome.ordering,
                             first.diagnostics)
        assert replay.ordering == outcome.ordering
