"""Text, JSON, and SARIF 2.1.0 renderers."""

import json

from repro.lint import (
    default_registry,
    lint_system,
    render_json,
    render_sarif,
    render_text,
    sarif_dict,
)


class TestText:
    def test_clean_design(self, motivating, optimal_ordering):
        result = lint_system(motivating, optimal_ordering,
                             ignore=["ERM4"])
        assert render_text(result) == "motivating: clean (no findings)\n"

    def test_summary_line_and_fixable_hint(self, motivating,
                                           deadlock_ordering):
        text = render_text(lint_system(motivating, deadlock_ordering))
        assert text.startswith("ERM201 error [")
        assert "ERM501 error [" in text  # the exhaustive confirmation
        assert "2 errors" in text
        assert "fixable with --fix" in text

    def test_verbose_appends_fix_descriptions(self, motivating,
                                              suboptimal_ordering):
        result = lint_system(motivating, suboptimal_ordering)
        assert "fix[ERM301]:" in render_text(result, verbose=True)
        assert "fix[ERM301]:" not in render_text(result)


class TestJson:
    def test_document_shape(self, motivating, deadlock_ordering):
        doc = json.loads(render_json(lint_system(motivating,
                                                 deadlock_ordering)))
        assert doc["subject"] == "motivating"
        assert doc["summary"]["errors"] == 2  # ERM201 + its ERM501 proof
        assert doc["summary"]["fixable"] == 1
        [erm201] = [d for d in doc["diagnostics"] if d["rule"] == "ERM201"]
        assert erm201["severity"] == "error"
        assert erm201["fixable"] is True
        # The fix is machine-readable: per-process corrected sequences.
        assert set(erm201["fix"]) == {"description", "gets", "puts"}


class TestSarif:
    """Shape sanity of the SARIF 2.1.0 log (acceptance criterion)."""

    def test_top_level_shape(self, motivating, deadlock_ordering):
        doc = sarif_dict(lint_system(motivating, deadlock_ordering))
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        assert len(doc["runs"]) == 1

    def test_driver_carries_the_full_rule_catalog(self, motivating):
        doc = sarif_dict(lint_system(motivating))
        driver = doc["runs"][0]["tool"]["driver"]
        assert driver["name"] == "ermes-lint"
        assert driver["version"]
        catalog = {r["id"] for r in driver["rules"]}
        assert catalog == set(default_registry().codes())
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning", "note"
            )

    def test_results_reference_rules_and_logical_locations(
        self, motivating, deadlock_ordering
    ):
        doc = sarif_dict(lint_system(motivating, deadlock_ordering))
        run = doc["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert run["results"], "the deadlocking design must have results"
        for res in run["results"]:
            assert res["ruleId"] in ids
            assert ids[res["ruleIndex"]] == res["ruleId"]
            assert res["level"] in ("error", "warning", "note")
            assert res["message"]["text"]
            for location in res["locations"]:
                for logical in location["logicalLocations"]:
                    assert logical["kind"] in ("process", "channel")
                    assert logical["fullyQualifiedName"] == (
                        f"motivating::{logical['name']}"
                    )

    def test_info_maps_to_note(self, motivating, optimal_ordering):
        doc = sarif_dict(lint_system(motivating, optimal_ordering,
                                     select=["ERM401"]))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels == {"note"}

    def test_render_sarif_is_valid_json(self, motivating):
        assert json.loads(render_sarif(lint_system(motivating)))
