"""The diagnostics vocabulary and the rule registry."""

import pytest

from repro.diagnostics import (
    Diagnostic,
    LintError,
    OrderingFix,
    Severity,
    sorted_diagnostics,
    worst_severity,
)
from repro.errors import ValidationError
from repro.lint import LintContext, Rule, RuleRegistry, category, default_registry


def _diag(rule="ERM999", severity=Severity.WARNING, location=()):
    return Diagnostic(rule=rule, severity=severity, message="m",
                      location=location)


class TestSeverity:
    def test_total_order(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO
        assert Severity.INFO <= Severity.INFO
        assert sorted([Severity.ERROR, Severity.INFO, Severity.WARNING],
                      reverse=True) == [Severity.ERROR, Severity.WARNING,
                                        Severity.INFO]

    def test_worst_severity(self):
        assert worst_severity([]) is None
        assert worst_severity([_diag(severity=Severity.INFO),
                               _diag(severity=Severity.ERROR)]) is Severity.ERROR


class TestDiagnostic:
    def test_format_with_location(self):
        d = Diagnostic(rule="ERM201", severity=Severity.ERROR,
                       message="boom", location=("P2", "d"))
        assert d.format() == "ERM201 error [P2, d]: boom"

    def test_format_without_location(self):
        d = Diagnostic(rule="ERM101", severity=Severity.INFO, message="x")
        assert d.format() == "ERM101 info: x"

    def test_sorted_most_severe_first(self):
        out = sorted_diagnostics([
            _diag("ERM402", Severity.INFO),
            _diag("ERM201", Severity.ERROR),
            _diag("ERM301", Severity.WARNING),
        ])
        assert [d.rule for d in out] == ["ERM201", "ERM301", "ERM402"]

    def test_fixable(self):
        assert not _diag().fixable
        fix = OrderingFix(description="f", puts={"P": ("a",)})
        d = Diagnostic(rule="ERM301", severity=Severity.WARNING,
                       message="m", fix=fix)
        assert d.fixable
        assert fix.touched_processes == ("P",)


class TestLintError:
    def test_is_validation_error_with_codes(self):
        error = LintError([_diag("ERM302", Severity.ERROR),
                           _diag("ERM104", Severity.ERROR)])
        assert isinstance(error, ValidationError)
        assert error.rule_codes == ("ERM104", "ERM302")
        assert "ERM302" in str(error)
        assert "2 lint findings" in str(error)


class TestRegistry:
    def test_default_catalog_codes(self):
        codes = default_registry().codes()
        # Every documented rule is present; the catalog only grows.
        for code in ("ERM101", "ERM108", "ERM201", "ERM301", "ERM302",
                     "ERM303", "ERM401", "ERM402"):
            assert code in codes

    def test_bad_code_rejected(self):
        with pytest.raises(ValidationError):
            Rule(code="X1", name="n", severity=Severity.INFO, summary="s",
                 check=lambda ctx: ())

    def test_duplicate_code_rejected(self):
        registry = RuleRegistry()
        rule = Rule(code="ERM900", name="n", severity=Severity.INFO,
                    summary="s", check=lambda ctx: ())
        registry.add(rule)
        with pytest.raises(ValidationError, match="duplicate"):
            registry.add(rule)

    def test_rule_must_emit_its_own_code(self, motivating):
        rule = Rule(code="ERM900", name="n", severity=Severity.INFO,
                    summary="s",
                    check=lambda ctx: [_diag("ERM901", Severity.INFO)])
        with pytest.raises(ValidationError, match="ERM901"):
            rule.run(LintContext(motivating))

    def test_select_by_prefix(self):
        registry = default_registry()
        chosen = registry.selected(select=["ERM3"])
        assert {r.code for r in chosen} == {"ERM301", "ERM302", "ERM303"}

    def test_ignore_wins_over_select(self):
        registry = default_registry()
        chosen = registry.selected(select=["ERM3"], ignore=["ERM302"])
        assert {r.code for r in chosen} == {"ERM301", "ERM303"}

    def test_unknown_selector_raises(self):
        with pytest.raises(ValidationError, match="ERM9"):
            default_registry().selected(select=["ERM9"])

    def test_category(self):
        assert category("ERM101") == "structural"
        assert category("ERM201") == "deadlock"
        assert category("ERM301") == "performance"
        assert category("ERM402") == "hygiene"
