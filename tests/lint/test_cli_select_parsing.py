"""Regression: ``--select``/``--ignore`` lists survive sloppy commas.

``ermes lint --select "ERM1, ERM2"`` used to forward the literal token
``" ERM2"`` (leading space) to the registry, which rejected it as an
unknown selector.  The CLI now strips whitespace around each token and
drops empty ones (trailing commas, doubled commas).
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import (
    motivating_example,
    motivating_suboptimal_ordering,
    save_ordering,
    save_system,
)


@pytest.fixture()
def paths(tmp_path):
    system = motivating_example()
    system_path = tmp_path / "sys.json"
    save_system(system, system_path)
    ordering_path = tmp_path / "slow.json"
    save_ordering(motivating_suboptimal_ordering(system), ordering_path)
    return {"system": str(system_path), "slow": str(ordering_path)}


def _rules(capsys):
    doc = json.loads(capsys.readouterr().out)
    return {d["rule"] for d in doc["diagnostics"]}


class TestSelectParsing:
    def test_spaces_after_commas_are_accepted(self, paths, capsys):
        code = main(
            ["lint", paths["system"], "--ordering", paths["slow"],
             "--select", "ERM3, ERM4", "--format", "json"]
        )
        assert code == 0
        rules = _rules(capsys)
        assert "ERM301" in rules
        assert all(rule.startswith(("ERM3", "ERM4")) for rule in rules)

    def test_trailing_comma_is_accepted(self, paths, capsys):
        code = main(
            ["lint", paths["system"], "--ordering", paths["slow"],
             "--select", "ERM3,", "--format", "json"]
        )
        assert code == 0
        assert _rules(capsys) == {"ERM301"}

    def test_doubled_commas_are_accepted(self, paths, capsys):
        code = main(
            ["lint", paths["system"], "--ordering", paths["slow"],
             "--ignore", "ERM3,, ERM4 ,", "--format", "json"]
        )
        assert code == 0
        assert "ERM301" not in _rules(capsys)

    def test_all_empty_selector_list_means_no_filter(self, paths, capsys):
        # ``--select ","`` parses to an empty list, which must behave
        # like no --select at all rather than selecting nothing.
        code = main(
            ["lint", paths["system"], "--ordering", paths["slow"],
             "--select", ",", "--format", "json"]
        )
        assert code == 0
        assert "ERM301" in _rules(capsys)

    def test_unknown_selector_still_exits_two(self, paths, capsys):
        code = main(
            ["lint", paths["system"], "--select", "ERM3, ERM9"]
        )
        assert code == 2
        assert "matches no registered rule" in capsys.readouterr().err
