"""Tests for the HLS substrate: implementations, Pareto sets, knobs,
channel characterization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ValidationError
from repro.hls import (
    ChannelPhysics,
    Implementation,
    ImplementationLibrary,
    KnobSpace,
    ParetoSet,
    frame_latency,
    pareto_filter,
    synthesize_pareto_set,
    synthesize_points,
    transfer_latency,
)
from repro.hls.implementation import area_gain, latency_gain


class TestImplementation:
    def test_dominates(self):
        fast_small = Implementation("a", latency=10, area=5.0)
        slow_big = Implementation("b", latency=20, area=9.0)
        assert fast_small.dominates(slow_big)
        assert not slow_big.dominates(fast_small)

    def test_equal_points_do_not_dominate(self):
        a = Implementation("a", latency=10, area=5.0)
        b = Implementation("b", latency=10, area=5.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_incomparable(self):
        fast_big = Implementation("a", latency=5, area=9.0)
        slow_small = Implementation("b", latency=9, area=5.0)
        assert not fast_big.dominates(slow_small)
        assert not slow_small.dominates(fast_big)

    def test_gains_signs(self):
        current = Implementation("cur", latency=10, area=6.0)
        faster = Implementation("f", latency=4, area=9.0)
        assert latency_gain(current, faster) == 6
        assert area_gain(current, faster) == -3.0

    def test_negative_values_rejected(self):
        with pytest.raises(ValidationError):
            Implementation("x", latency=-1, area=1.0)
        with pytest.raises(ValidationError):
            Implementation("x", latency=1, area=-1.0)


class TestParetoFilter:
    def test_filters_dominated(self):
        points = [
            Implementation("a", 10, 5.0),
            Implementation("b", 12, 6.0),  # dominated by a
            Implementation("c", 5, 9.0),
        ]
        frontier = pareto_filter(points)
        assert [p.name for p in frontier] == ["c", "a"]

    def test_idempotent(self):
        points = [
            Implementation(f"p{i}", latency=10 - i, area=float(i * i))
            for i in range(5)
        ]
        once = pareto_filter(points)
        assert pareto_filter(once) == once

    @settings(max_examples=50, deadline=None)
    @given(
        latencies=st.lists(st.integers(1, 50), min_size=1, max_size=12),
        areas=st.lists(st.floats(0.5, 50), min_size=12, max_size=12),
    )
    def test_no_dominance_within_frontier(self, latencies, areas):
        points = [
            Implementation(f"p{i}", latency=l, area=round(a, 2))
            for i, (l, a) in enumerate(zip(latencies, areas))
        ]
        frontier = pareto_filter(points)
        for x in frontier:
            for y in frontier:
                if x.name != y.name:
                    assert not x.dominates(y)

    @settings(max_examples=50, deadline=None)
    @given(
        latencies=st.lists(st.integers(1, 50), min_size=1, max_size=12),
    )
    def test_every_input_dominated_or_kept(self, latencies):
        points = [
            Implementation(f"p{i}", latency=l, area=float((l * 7) % 13 + 1))
            for i, l in enumerate(latencies)
        ]
        frontier = pareto_filter(points)
        names = {p.name for p in frontier}
        for point in points:
            if point.name in names:
                continue
            assert any(
                f.dominates(point) or (f.latency, f.area) == (point.latency, point.area)
                for f in frontier
            )


class TestParetoSet:
    def _set(self):
        return ParetoSet.from_points(
            "p",
            [
                Implementation("slow", 20, 4.0),
                Implementation("mid", 10, 6.0),
                Implementation("fast", 5, 9.0),
            ],
        )

    def test_sorted_fastest_first(self):
        pareto = self._set()
        assert pareto.fastest.name == "fast"
        assert pareto.smallest.name == "slow"
        assert [p.name for p in pareto] == ["fast", "mid", "slow"]

    def test_by_name(self):
        assert self._set().by_name("mid").latency == 10
        with pytest.raises(ConfigurationError):
            self._set().by_name("ghost")

    def test_filters(self):
        pareto = self._set()
        assert [p.name for p in pareto.faster_than(10)] == ["fast"]
        assert [p.name for p in pareto.at_most_area(6.0)] == ["mid", "slow"]

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ParetoSet.from_points("p", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            ParetoSet.from_points(
                "p",
                [Implementation("x", 1, 1.0), Implementation("x", 2, 2.0)],
            )

    def test_unfiltered_requires_independence(self):
        with pytest.raises(ValidationError):
            ParetoSet.from_points(
                "p",
                [Implementation("a", 10, 5.0), Implementation("b", 12, 6.0)],
                filter_dominated=False,
            )


class TestLibrary:
    def test_total_points(self):
        library = ImplementationLibrary(
            [
                ParetoSet.from_points("a", [Implementation("x", 1, 1.0)]),
                ParetoSet.from_points(
                    "b",
                    [Implementation("y", 1, 1.0), Implementation("z", 2, 0.5)],
                ),
            ]
        )
        assert library.total_points() == 3
        assert len(library) == 2
        assert library.has("a") and not library.has("ghost")

    def test_duplicate_process_rejected(self):
        library = ImplementationLibrary()
        library.add(ParetoSet.from_points("a", [Implementation("x", 1, 1.0)]))
        with pytest.raises(ValidationError):
            library.add(
                ParetoSet.from_points("a", [Implementation("y", 2, 2.0)])
            )

    def test_unknown_process_raises(self):
        with pytest.raises(ConfigurationError):
            ImplementationLibrary().of("ghost")


class TestKnobModel:
    def test_point_count_is_knob_product(self):
        knobs = KnobSpace(unroll_factors=(1, 2), pipeline=(0, 1),
                          sharing_levels=(0,))
        points = synthesize_points("p", 100, 50.0, knobs)
        assert len(points) == 4

    def test_deterministic_per_seed(self):
        a = synthesize_points("p", 100, 50.0, seed=1)
        b = synthesize_points("p", 100, 50.0, seed=1)
        assert [(x.latency, x.area) for x in a] == [
            (x.latency, x.area) for x in b
        ]

    def test_unrolling_speeds_up_and_grows(self):
        knobs = KnobSpace(unroll_factors=(1, 8), pipeline=(0,),
                          sharing_levels=(0,))
        base, unrolled = synthesize_points("p", 1000, 100.0, knobs, jitter=0.0)
        assert unrolled.latency < base.latency
        assert unrolled.area > base.area

    def test_pareto_set_respects_max_points(self):
        pareto = synthesize_pareto_set("p", 5000, 100.0, max_points=4)
        assert 2 <= len(pareto) <= 4

    def test_pareto_set_keeps_extremes(self):
        full = synthesize_pareto_set("p", 5000, 100.0)
        thin = synthesize_pareto_set("p", 5000, 100.0, max_points=4)
        assert thin.fastest.latency == full.fastest.latency
        assert thin.smallest.area == full.smallest.area


class TestChannelCharacterization:
    def test_paper_maximum_is_5280(self):
        # One 4:2:0 SIF frame at 24 elements/cycle: 126,720 / 24 = 5,280.
        assert transfer_latency(
            126_720, ChannelPhysics(elements_per_cycle=24)
        ) == 5280

    def test_luma_frame_at_16_wide(self):
        assert frame_latency() == 5280  # 84,480 / 16

    def test_minimum_is_one(self):
        assert transfer_latency(0) == 1
        assert transfer_latency(1) == 1

    def test_ceil_division(self):
        physics = ChannelPhysics(elements_per_cycle=10)
        assert transfer_latency(11, physics) == 2

    def test_setup_overhead(self):
        physics = ChannelPhysics(elements_per_cycle=10, setup_cycles=3)
        assert transfer_latency(10, physics) == 4

    def test_invalid_physics(self):
        with pytest.raises(ValidationError):
            ChannelPhysics(elements_per_cycle=0)
        with pytest.raises(ValidationError):
            ChannelPhysics(setup_cycles=-1)

    def test_negative_elements_rejected(self):
        with pytest.raises(ValidationError):
            transfer_latency(-1)
