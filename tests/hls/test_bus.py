"""Bus-width optimization and channel sensitivity."""

import pytest

from repro.core import SystemBuilder
from repro.errors import ValidationError
from repro.hls import optimize_widths
from repro.model import analyze_system, channel_sensitivity_report


@pytest.fixture()
def streaming_system():
    """A pipeline whose channels carry real data volumes."""
    return (
        SystemBuilder("stream")
        .source("src", latency=1)
        .process("A", latency=20)
        .process("B", latency=20)
        .sink("snk", latency=1)
        .channel("i", "src", "A", latency=32)   # 256 elements @ 8/cycle
        .channel("x", "A", "B", latency=32)
        .channel("o", "B", "snk", latency=32)
        .build()
    )


VOLUMES = {"i": 256, "x": 256, "o": 256}


class TestOptimizeWidths:
    def test_meets_reachable_target(self, streaming_system):
        result = optimize_widths(
            streaming_system, VOLUMES, target_cycle_time=80
        )
        assert result.feasible
        assert result.cycle_time <= 80

    def test_narrowest_when_target_loose(self, streaming_system):
        loose = optimize_widths(
            streaming_system, VOLUMES, target_cycle_time=10_000
        )
        assert loose.feasible
        assert all(width == 8 for width in loose.widths.values())
        assert loose.wire_area == 3 * 8

    def test_tighter_target_costs_wires(self, streaming_system):
        loose = optimize_widths(streaming_system, VOLUMES, 200)
        tight = optimize_widths(streaming_system, VOLUMES, 70)
        assert loose.feasible and tight.feasible
        assert tight.wire_area > loose.wire_area

    def test_compute_bound_floor_infeasible(self, streaming_system):
        # Even 64-wide buses cannot beat the 20-cycle computes plus the
        # serial chain.
        result = optimize_widths(
            streaming_system, VOLUMES, target_cycle_time=5
        )
        assert not result.feasible
        assert result.cycle_time > 5

    def test_latencies_consistent_with_widths(self, streaming_system):
        result = optimize_widths(streaming_system, VOLUMES, 80)
        for name, width in result.widths.items():
            assert result.latencies[name] == -(-VOLUMES[name] // width)

    def test_achieved_matches_direct_analysis(self, streaming_system):
        from repro.hls.bus import _apply_widths

        result = optimize_widths(streaming_system, VOLUMES, 80)
        sized = _apply_widths(streaming_system, VOLUMES, result.widths)
        assert analyze_system(sized).cycle_time == result.cycle_time

    def test_unknown_channel_rejected(self, streaming_system):
        with pytest.raises(ValidationError):
            optimize_widths(streaming_system, {"ghost": 10}, 100)

    def test_empty_volumes_rejected(self, streaming_system):
        with pytest.raises(ValidationError):
            optimize_widths(streaming_system, {}, 100)


class TestChannelSensitivity:
    def test_motivating_example(self, motivating, optimal_ordering):
        base_ct, entries = channel_sensitivity_report(
            motivating, optimal_ordering
        )
        assert base_ct == 12
        by_name = {e.channel: e for e in entries}
        # d is on P2's critical serial cycle: zero slack, real potential.
        assert by_name["d"].on_critical_cycle
        assert by_name["d"].slack == 0
        assert by_name["d"].potential > 0
        # c is not: positive slack, no potential.
        assert not by_name["c"].on_critical_cycle
        assert by_name["c"].slack > 0
        assert by_name["c"].potential == 0

    def test_slack_is_tight(self, motivating, optimal_ordering):
        from repro.model.sensitivity import _with_channel_latency

        __, entries = channel_sensitivity_report(
            motivating, optimal_ordering
        )
        entry = next(e for e in entries if e.channel == "c")
        grown = _with_channel_latency(
            motivating, "c", entry.latency + entry.slack
        )
        overgrown = _with_channel_latency(
            motivating, "c", entry.latency + entry.slack + 1
        )
        assert analyze_system(grown, optimal_ordering).cycle_time == 12
        assert analyze_system(overgrown, optimal_ordering).cycle_time > 12
