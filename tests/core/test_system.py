"""Unit tests for the system model (processes, channels, orderings)."""

import math

import pytest

from repro.core import (
    Channel,
    ChannelOrdering,
    Process,
    ProcessKind,
    SystemGraph,
    all_orderings,
)
from repro.errors import ValidationError


class TestProcess:
    def test_defaults(self):
        p = Process("a")
        assert p.latency == 1
        assert p.kind is ProcessKind.WORKER
        assert not p.is_testbench

    def test_source_is_testbench(self):
        assert Process("s", kind=ProcessKind.SOURCE).is_testbench

    def test_sink_is_testbench(self):
        assert Process("s", kind=ProcessKind.SINK).is_testbench

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Process("")

    def test_negative_latency_rejected(self):
        with pytest.raises(ValidationError):
            Process("a", latency=-1)

    def test_zero_latency_allowed(self):
        assert Process("a", latency=0).latency == 0

    def test_with_latency_returns_new_value(self):
        p = Process("a", latency=3)
        q = p.with_latency(7)
        assert q.latency == 7
        assert p.latency == 3
        assert q.name == "a"


class TestChannel:
    def test_defaults(self):
        c = Channel("c", "a", "b")
        assert c.latency == 1
        assert c.capacity == 0
        assert c.initial_tokens == 0

    def test_default_is_rendezvous(self):
        c = Channel("c", "a", "b")
        assert not c.is_buffered
        assert c.effective_capacity == 0

    def test_capacity_makes_buffered(self):
        c = Channel("c", "a", "b", capacity=3)
        assert c.is_buffered
        assert c.effective_capacity == 3

    def test_initial_tokens_promote_to_buffered(self):
        # capacity == 0 but pre-loaded: cannot be a rendezvous — the first
        # transfers complete with no producer involved.  The promotion is
        # explicit here, not buried in the simulator/model layers.
        c = Channel("c", "a", "b", initial_tokens=2)
        assert c.capacity == 0
        assert c.is_buffered
        assert c.effective_capacity == 2

    def test_effective_capacity_is_max_of_both(self):
        assert Channel("c", "a", "b", capacity=3,
                       initial_tokens=1).effective_capacity == 3
        assert Channel("c", "a", "b", capacity=1,
                       initial_tokens=4).effective_capacity == 4

    def test_zero_latency_rejected(self):
        with pytest.raises(ValidationError):
            Channel("c", "a", "b", latency=0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValidationError):
            Channel("c", "a", "b", capacity=-1)

    def test_negative_initial_tokens_rejected(self):
        with pytest.raises(ValidationError):
            Channel("c", "a", "b", initial_tokens=-2)

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            Channel("c", "a", "a")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Channel("", "a", "b")


class TestSystemGraph:
    def _two_process_system(self):
        s = SystemGraph("s")
        s.add_process(Process("src", kind=ProcessKind.SOURCE))
        s.add_process(Process("a", latency=4))
        s.add_process(Process("b", latency=2))
        s.add_process(Process("snk", kind=ProcessKind.SINK))
        s.add_channel(Channel("i", "src", "a"))
        s.add_channel(Channel("x", "a", "b", latency=3))
        s.add_channel(Channel("o", "b", "snk"))
        return s

    def test_duplicate_process_rejected(self):
        s = SystemGraph()
        s.add_process(Process("a"))
        with pytest.raises(ValidationError):
            s.add_process(Process("a"))

    def test_duplicate_channel_rejected(self):
        s = self._two_process_system()
        with pytest.raises(ValidationError):
            s.add_channel(Channel("x", "a", "b"))

    def test_channel_unknown_endpoint_rejected(self):
        s = self._two_process_system()
        with pytest.raises(ValidationError):
            s.add_channel(Channel("bad", "a", "ghost"))

    def test_declaration_port_order_preserved(self):
        s = SystemGraph()
        s.add_process(Process("src", kind=ProcessKind.SOURCE))
        s.add_process(Process("m"))
        s.add_process(Process("snk", kind=ProcessKind.SINK))
        s.add_channel(Channel("c2", "src", "m"))
        s.add_channel(Channel("c1", "src", "m"))
        s.add_channel(Channel("o", "m", "snk"))
        assert s.input_channels("m") == ("c2", "c1")
        assert s.output_channels("src") == ("c2", "c1")

    def test_predecessors_successors(self):
        s = self._two_process_system()
        assert s.predecessors("b") == ("a",)
        assert s.successors("a") == ("b",)

    def test_sources_sinks_workers(self):
        s = self._two_process_system()
        assert [p.name for p in s.sources()] == ["src"]
        assert [p.name for p in s.sinks()] == ["snk"]
        assert [p.name for p in s.workers()] == ["a", "b"]

    def test_unknown_process_raises(self):
        s = self._two_process_system()
        with pytest.raises(ValidationError):
            s.process("ghost")

    def test_unknown_channel_raises(self):
        s = self._two_process_system()
        with pytest.raises(ValidationError):
            s.channel("ghost")

    def test_contains(self):
        s = self._two_process_system()
        assert "a" in s
        assert "x" in s
        assert "ghost" not in s

    def test_latency_maps(self):
        s = self._two_process_system()
        assert s.process_latencies()["a"] == 4
        assert s.channel_latencies()["x"] == 3

    def test_with_process_latencies_does_not_mutate(self):
        s = self._two_process_system()
        s2 = s.with_process_latencies({"a": 9})
        assert s.process("a").latency == 4
        assert s2.process("a").latency == 9
        # topology shared by value
        assert s2.channel_names == s.channel_names

    def test_replace_process_unknown_raises(self):
        s = self._two_process_system()
        with pytest.raises(ValidationError):
            s.replace_process(Process("ghost"))

    def test_copy_is_independent(self):
        s = self._two_process_system()
        clone = s.copy()
        clone.add_process(Process("extra"))
        assert not s.has_process("extra")

    def test_to_networkx(self):
        g = self._two_process_system().to_networkx()
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert g.nodes["a"]["latency"] == 4


class TestOrderSpace:
    def test_motivating_is_36(self, motivating):
        assert motivating.order_space_size() == 36

    def test_matches_factorial_formula(self, motivating):
        expected = 1
        for p in motivating.workers():
            expected *= math.factorial(len(motivating.input_channels(p.name)))
            expected *= math.factorial(len(motivating.output_channels(p.name)))
        assert motivating.order_space_size() == expected

    def test_enumeration_count_matches(self, motivating):
        assert sum(1 for _ in all_orderings(motivating)) == 36

    def test_enumeration_is_unique(self, motivating):
        seen = set()
        for ordering in all_orderings(motivating):
            key = (
                tuple(sorted(ordering.gets.items())),
                tuple(sorted(ordering.puts.items())),
            )
            assert key not in seen
            seen.add(key)


class TestChannelOrdering:
    def test_declaration_order(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        assert ordering.puts_of("P2") == ("b", "d", "f")
        assert ordering.gets_of("P6") == ("d", "e", "g")

    def test_from_orders_overrides_only_named(self, motivating):
        ordering = ChannelOrdering.from_orders(
            motivating, puts={"P2": ("f", "b", "d")}
        )
        assert ordering.puts_of("P2") == ("f", "b", "d")
        assert ordering.gets_of("P6") == ("d", "e", "g")

    def test_from_orders_rejects_non_permutation(self, motivating):
        with pytest.raises(ValidationError):
            ChannelOrdering.from_orders(motivating, puts={"P2": ("b", "b", "d")})

    def test_from_orders_rejects_foreign_channel(self, motivating):
        with pytest.raises(ValidationError):
            ChannelOrdering.from_orders(motivating, puts={"P2": ("b", "d", "h")})

    def test_statements_chain_shape(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        chain = ordering.statements_of("P2")
        kinds = [kind for kind, _ in chain]
        assert kinds == ["get", "compute", "put", "put", "put"]
        assert chain[1] == ("compute", "P2")

    def test_statements_source_has_no_gets(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        chain = ordering.statements_of("Psrc")
        assert [kind for kind, _ in chain] == ["compute", "put"]

    def test_differs_from(self, motivating):
        a = ChannelOrdering.declaration_order(motivating)
        b = ChannelOrdering.from_orders(motivating, puts={"P2": ("f", "b", "d")})
        assert b.differs_from(a) == ("P2",)
        assert a.differs_from(a) == ()
