"""Tests for the builder and structural validation."""

import pytest

from repro.core import SystemBuilder, validate_system
from repro.core.builder import system_from_tables
from repro.errors import ValidationError


class TestBuilder:
    def test_fluent_build(self):
        system = (
            SystemBuilder("p")
            .source("src")
            .process("a", latency=5)
            .sink("snk")
            .channel("i", "src", "a", latency=2)
            .channel("o", "a", "snk")
            .build()
        )
        assert system.process("a").latency == 5
        assert system.channel("i").latency == 2

    def test_channels_varargs(self):
        system = (
            SystemBuilder()
            .source("src")
            .process("a")
            .sink("snk")
            .channels(("i", "src", "a", 3), ("o", "a", "snk"))
            .build()
        )
        assert system.channel("i").latency == 3
        assert system.channel("o").latency == 1

    def test_build_validates_by_default(self):
        builder = SystemBuilder().source("src").process("a").sink("snk")
        builder.channel("i", "src", "a")
        # worker 'a' has no outputs -> invalid
        with pytest.raises(ValidationError):
            builder.build()

    def test_build_can_skip_validation(self):
        builder = SystemBuilder().source("src").process("a").sink("snk")
        builder.channel("i", "src", "a")
        system = builder.build(validate=False)
        assert system.has_process("a")

    def test_initial_tokens_passthrough(self):
        system = (
            SystemBuilder()
            .source("src")
            .process("a")
            .process("b")
            .sink("snk")
            .channel("i", "src", "a")
            .channel("x", "a", "b")
            .channel("y", "b", "a", initial_tokens=2)
            .channel("o", "b", "snk")
            .build()
        )
        assert system.channel("y").initial_tokens == 2


class TestSystemFromTables:
    def test_round_shape(self):
        system = system_from_tables(
            "t",
            processes={"src": 1, "a": 4, "snk": 1},
            channels={"i": ("src", "a", 2), "o": ("a", "snk", 1)},
            sources=("src",),
            sinks=("snk",),
        )
        assert system.process("a").latency == 4
        assert [p.name for p in system.sources()] == ["src"]

    def test_channel_declaration_order_is_dict_order(self):
        system = system_from_tables(
            "t",
            processes={"src": 1, "a": 1, "snk": 1},
            channels={
                "i2": ("src", "a", 1),
                "i1": ("src", "a", 1),
                "o": ("a", "snk", 1),
            },
            sources=("src",),
            sinks=("snk",),
        )
        assert system.input_channels("a") == ("i2", "i1")


class TestValidation:
    def _builder(self):
        return SystemBuilder().source("src").process("a").sink("snk")

    def test_valid_minimal_system(self, tiny_pipeline):
        validate_system(tiny_pipeline)  # does not raise

    def test_no_workers_rejected(self):
        builder = SystemBuilder().source("src").sink("snk")
        builder.channel("x", "src", "snk")
        with pytest.raises(ValidationError, match="no worker"):
            validate_system(builder._system)

    def test_source_with_inputs_rejected(self):
        builder = self._builder()
        builder.channel("i", "src", "a")
        builder.channel("o", "a", "snk")
        builder.channel("bad", "a", "src")
        with pytest.raises(ValidationError, match="source"):
            validate_system(builder._system)

    def test_sink_with_outputs_rejected(self):
        builder = self._builder().process("b")
        builder.channel("i", "src", "a")
        builder.channel("o", "a", "snk")
        builder.channel("bad", "snk", "b")
        builder.channel("ob", "b", "snk")
        with pytest.raises(ValidationError, match="sink"):
            validate_system(builder._system)

    def test_worker_without_inputs_rejected(self):
        builder = self._builder()
        builder.channel("o", "a", "snk")
        with pytest.raises(ValidationError, match="no input"):
            validate_system(builder._system)

    def test_worker_without_outputs_rejected(self):
        builder = self._builder()
        builder.channel("i", "src", "a")
        with pytest.raises(ValidationError, match="no output"):
            validate_system(builder._system)

    def test_unreachable_island_rejected(self):
        builder = self._builder().process("b").process("c")
        builder.channel("i", "src", "a")
        builder.channel("o", "a", "snk")
        # b and c feed each other but are disconnected from the testbench
        builder.channel("x", "b", "c")
        builder.channel("y", "c", "b")
        with pytest.raises(ValidationError, match="not reachable"):
            validate_system(builder._system)

    def test_cannot_reach_sink_rejected(self):
        builder = self._builder().process("b").process("c")
        builder.channel("i", "src", "a")
        builder.channel("o", "a", "snk")
        builder.channel("ib", "src", "b")
        # b -> c -> b loop never drains to the sink
        builder.channel("x", "b", "c")
        builder.channel("y", "c", "b")
        with pytest.raises(ValidationError, match="cannot reach"):
            validate_system(builder._system)


class TestChannelCallSiteErrors:
    """Wiring against an undeclared process fails where the typo is."""

    def test_unknown_producer_fails_at_the_channel_call(self):
        builder = SystemBuilder("t").source("src").process("a").sink("snk")
        with pytest.raises(
            ValidationError,
            match="channel 'c': producer 'ghost' is not a declared process",
        ):
            builder.channel("c", "ghost", "a")

    def test_unknown_consumer_names_the_role(self):
        builder = SystemBuilder("t").source("src").process("a").sink("snk")
        with pytest.raises(
            ValidationError,
            match="channel 'c': consumer 'snkk' is not a declared process",
        ):
            builder.channel("c", "a", "snkk")

    def test_error_points_at_the_fix(self):
        builder = SystemBuilder("t").source("src")
        with pytest.raises(ValidationError, match=r"\.source\(\)/\.sink\(\)"):
            builder.channel("c", "src", "missing")

    def test_nothing_is_added_on_failure(self):
        builder = SystemBuilder("t").source("src").process("a").sink("snk")
        with pytest.raises(ValidationError):
            builder.channel("c", "a", "typo")
        builder.channel("i", "src", "a").channel("c", "a", "snk")
        system = builder.build()
        assert system.channel_names == ("i", "c")
