"""Serialization round-trips and DOT export."""

import json

import pytest
from hypothesis import given, settings

from repro.core import (
    ChannelOrdering,
    load_ordering,
    load_system,
    motivating_optimal_ordering,
    save_ordering,
    save_system,
    system_to_dot,
)
from repro.core.serialization import (
    ordering_from_dict,
    ordering_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.errors import ValidationError
from tests.strategies import layered_systems


class TestSystemRoundTrip:
    def test_dict_round_trip_preserves_everything(self, motivating):
        clone = system_from_dict(system_to_dict(motivating))
        assert clone.process_names == motivating.process_names
        assert clone.channel_names == motivating.channel_names
        assert clone.process_latencies() == motivating.process_latencies()
        assert clone.channel_latencies() == motivating.channel_latencies()
        for name in motivating.process_names:
            assert clone.input_channels(name) == motivating.input_channels(name)
            assert clone.output_channels(name) == motivating.output_channels(name)
            assert clone.process(name).kind == motivating.process(name).kind

    def test_dict_is_json_compatible(self, motivating):
        json.dumps(system_to_dict(motivating))

    def test_file_round_trip(self, motivating, tmp_path):
        path = tmp_path / "sys.json"
        save_system(motivating, path)
        clone = load_system(path)
        assert clone.name == motivating.name
        assert clone.channel_names == motivating.channel_names

    def test_initial_tokens_survive(self, feedback_system, tmp_path):
        path = tmp_path / "fb.json"
        save_system(feedback_system, path)
        clone = load_system(path)
        assert clone.channel("y").initial_tokens == 1

    def test_unknown_version_rejected(self, motivating):
        data = system_to_dict(motivating)
        data["format_version"] = 99
        with pytest.raises(ValidationError):
            system_from_dict(data)

    @settings(max_examples=25, deadline=None)
    @given(system=layered_systems())
    def test_round_trip_random_systems(self, system):
        clone = system_from_dict(system_to_dict(system))
        assert clone.channel_names == system.channel_names
        assert clone.process_latencies() == system.process_latencies()


class TestOrderingRoundTrip:
    def test_round_trip(self, motivating, tmp_path):
        ordering = motivating_optimal_ordering(motivating)
        path = tmp_path / "ord.json"
        save_ordering(ordering, path)
        clone = load_ordering(path)
        assert clone.puts_of("P2") == ordering.puts_of("P2")
        assert clone.gets_of("P6") == ordering.gets_of("P6")
        clone.validate(motivating)

    def test_unknown_version_rejected(self, motivating):
        data = ordering_to_dict(ChannelOrdering.declaration_order(motivating))
        data["format_version"] = 0
        with pytest.raises(ValidationError):
            ordering_from_dict(data)


class TestDot:
    def test_contains_all_elements(self, motivating):
        dot = system_to_dot(motivating)
        for process in motivating.process_names:
            assert f'"{process}"' in dot
        for channel in motivating.channel_names:
            assert channel in dot
        assert dot.startswith("digraph")

    def test_ordering_annotations(self, motivating):
        ordering = motivating_optimal_ordering(motivating)
        dot = system_to_dot(motivating, ordering=ordering)
        # channel b is P2's first put and P3's first (only) get
        assert "put#1 / get#1" in dot

    def test_highlighting(self, motivating):
        dot = system_to_dot(
            motivating, highlight_channels=["d"], highlight_processes=["P6"]
        )
        assert "color=red" in dot

    def test_quotes_escaped(self):
        from repro.core.dot import _quote

        assert _quote('we"ird') == '"we\\"ird"'
