"""Tests for the system generators (motivating example, synthetic SoCs)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    fork_join,
    motivating_example,
    pipeline,
    synthetic_soc,
    system_to_dict,
    validate_system,
)
from repro.core.generators import (
    MOTIVATING_CHANNELS,
    MOTIVATING_PROCESS_LATENCIES,
)


class TestMotivatingExample:
    def test_paper_shape(self, motivating):
        assert len(motivating.workers()) == 5
        assert len(motivating.channels) == 8
        assert len(motivating.sources()) == 1
        assert len(motivating.sinks()) == 1

    def test_reconstructed_latencies(self, motivating):
        # Values recovered from the Section 4 labeling equations.
        assert motivating.process("P2").latency == 5
        assert motivating.process("P6").latency == 2
        assert motivating.channel("d").latency == 3
        assert motivating.channel("a").latency == 2

    def test_constants_consistent(self, motivating):
        for name, latency in MOTIVATING_PROCESS_LATENCIES.items():
            assert motivating.process(name).latency == latency
        for name, (producer, consumer, latency) in MOTIVATING_CHANNELS.items():
            channel = motivating.channel(name)
            assert (channel.producer, channel.consumer) == (producer, consumer)
            assert channel.latency == latency

    def test_sum_out_latency_p2_is_5(self, motivating):
        # SumOutArcLatency(P2) = 5 per the paper's worked example.
        total = sum(
            motivating.channel(c).latency
            for c in motivating.output_channels("P2")
        )
        assert total == 5

    def test_sum_in_latency_p6_is_6(self, motivating):
        total = sum(
            motivating.channel(c).latency
            for c in motivating.input_channels("P6")
        )
        assert total == 6

    def test_validates(self, motivating):
        validate_system(motivating)


class TestPipeline:
    def test_shape(self):
        system = pipeline(4)
        assert len(system.workers()) == 4
        assert len(system.channels) == 5
        validate_system(system)

    def test_single_stage(self):
        system = pipeline(1)
        assert len(system.workers()) == 1

    def test_zero_stages_rejected(self):
        with pytest.raises(ValueError):
            pipeline(0)


class TestForkJoin:
    def test_shape(self):
        system = fork_join(3)
        assert len(system.workers()) == 5  # fork + 3 branches + join
        assert len(system.channels) == 2 + 2 * 3
        validate_system(system)

    def test_branch_latencies(self):
        system = fork_join(2, branch_latencies=(7, 9))
        assert system.process("branch0").latency == 7
        assert system.process("branch1").latency == 9

    def test_mismatched_latencies_rejected(self):
        with pytest.raises(ValueError):
            fork_join(3, branch_latencies=(1, 2))

    def test_too_few_branches_rejected(self):
        with pytest.raises(ValueError):
            fork_join(1)


class TestSyntheticSoc:
    def test_requested_worker_count(self):
        system = synthetic_soc(50, seed=1)
        assert len(system.workers()) == 50
        validate_system(system)

    def test_deterministic(self):
        a = synthetic_soc(40, seed=7)
        b = synthetic_soc(40, seed=7)
        assert a.channel_names == b.channel_names
        assert a.process_latencies() == b.process_latencies()
        assert a.channel_latencies() == b.channel_latencies()

    def test_seed_changes_topology(self):
        a = synthetic_soc(40, seed=1)
        b = synthetic_soc(40, seed=2)
        assert a.channel_latencies() != b.channel_latencies()

    def test_feedback_channels_carry_tokens(self):
        system = synthetic_soc(200, seed=3, feedback_fraction=0.05)
        feedback = [c for c in system.channels if c.initial_tokens > 0]
        assert feedback, "expected some feedback channels"

    def test_latency_bounds_respected(self):
        system = synthetic_soc(
            60, seed=2, min_process_latency=5, max_process_latency=9,
            min_channel_latency=2, max_channel_latency=3,
        )
        for p in system.workers():
            assert 5 <= p.latency <= 9
        for c in system.channels:
            assert 2 <= c.latency <= 3

    def test_channel_budget_close_to_requested(self):
        system = synthetic_soc(100, n_channels=150, seed=0)
        worker_names = {p.name for p in system.workers()}
        worker_channels = [
            c
            for c in system.channels
            if c.producer in worker_names and c.consumer in worker_names
        ]
        assert len(worker_channels) <= 150

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            synthetic_soc(1)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(2, 60), seed=st.integers(0, 10))
    def test_always_valid(self, n, seed):
        validate_system(synthetic_soc(n, seed=seed))


class TestExplicitRandomStream:
    """The seeded-``random.Random`` satellite: one explicit stream, no
    module-global randomness, reproducible end to end."""

    def test_rng_matches_equivalent_seed(self):
        explicit = synthetic_soc(24, rng=random.Random(0))
        seeded = synthetic_soc(24, seed=0)
        assert system_to_dict(explicit) == system_to_dict(seeded)

    def test_rng_overrides_seed_argument(self):
        # With an explicit stream the seed argument is inert.
        a = synthetic_soc(24, seed=123, rng=random.Random(5))
        b = synthetic_soc(24, seed=456, rng=random.Random(5))
        assert system_to_dict(a) == system_to_dict(b)

    def test_one_stream_threads_through_consecutive_calls(self):
        def compose(seed):
            rng = random.Random(seed)
            return [
                system_to_dict(synthetic_soc(12, rng=rng)),
                system_to_dict(synthetic_soc(12, rng=rng)),
            ]

        first, second = compose(9)
        # The stream advances: the second draw differs from the first...
        assert first != second
        # ...but the whole composition replays bit-identically.
        assert compose(9) == [first, second]

    def test_module_global_random_state_is_untouched(self):
        random.seed(1234)
        checkpoint = random.random()
        random.seed(1234)
        synthetic_soc(24, rng=random.Random(3))
        synthetic_soc(24, seed=8)
        assert random.random() == checkpoint
