"""Ring and mesh topology generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import mesh_soc, ring_soc, validate_system
from repro.model import analyze_system, is_deadlock_free
from repro.ordering import channel_ordering
from repro.sim import simulate


class TestRing:
    def test_shape(self):
        system = ring_soc(4)
        assert len(system.workers()) == 4
        assert system.channel("close").initial_tokens == 1
        validate_system(system)

    def test_live_and_analyzable(self):
        system = ring_soc(3, process_latency=5, channel_latency=2)
        assert is_deadlock_free(system)
        perf = analyze_system(system)
        # one token around the whole ring: cycle time = ring delay sum
        assert perf.cycle_time >= 3 * 5

    def test_more_tokens_faster(self):
        slow = analyze_system(ring_soc(4, initial_tokens=1)).cycle_time
        fast = analyze_system(ring_soc(4, initial_tokens=3)).cycle_time
        assert fast < slow

    def test_simulation_agrees(self):
        system = ring_soc(3)
        perf = analyze_system(system)
        result = simulate(system, iterations=60)
        measured = result.measured_cycle_time("snk")
        assert abs(float(measured) - float(perf.cycle_time)) \
            <= float(perf.cycle_time) * 0.12

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ring_soc(1)
        with pytest.raises(ValueError):
            ring_soc(3, initial_tokens=0)


class TestMesh:
    @settings(max_examples=12, deadline=None)
    @given(rows=st.integers(1, 4), cols=st.integers(1, 4))
    def test_always_valid(self, rows, cols):
        if rows * cols < 2:
            return
        validate_system(mesh_soc(rows, cols))

    def test_shape(self):
        system = mesh_soc(3, 4)
        assert len(system.workers()) == 12
        # east channels: 3 rows x 3, south channels: 2 x 4, + inject/drain
        assert len(system.channels) == 9 + 8 + 2

    def test_reconvergence_orderable(self):
        system = mesh_soc(3, 3, process_latency=6, channel_latency=2)
        ordering = channel_ordering(system)
        assert is_deadlock_free(system, ordering)
        perf = analyze_system(system, ordering)
        assert perf.cycle_time > 0

    def test_mesh_simulation_agrees(self):
        system = mesh_soc(2, 3)
        ordering = channel_ordering(system)
        perf = analyze_system(system, ordering)
        result = simulate(system, ordering, iterations=50)
        measured = result.measured_cycle_time("snk")
        assert abs(float(measured) - float(perf.cycle_time)) \
            <= float(perf.cycle_time) * 0.12

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            mesh_soc(1, 1)
        with pytest.raises(ValueError):
            mesh_soc(0, 3)
