"""Error paths and round-trip guarantees of the JSON serialization."""

import json

import pytest
from hypothesis import given, settings

from repro.core.serialization import (
    load_ordering,
    load_system,
    ordering_from_dict,
    ordering_to_dict,
    system_from_dict,
    system_to_dict,
)
from repro.errors import ValidationError
from repro.ordering import declaration_ordering
from tests.strategies import layered_systems


def _doc(**overrides):
    """A minimal valid system document, patched with ``overrides``."""
    doc = {
        "format_version": 1,
        "name": "t",
        "processes": [
            {"name": "s", "kind": "source"},
            {"name": "w", "latency": 2, "kind": "worker"},
            {"name": "k", "kind": "sink"},
        ],
        "channels": [
            {"name": "a", "producer": "s", "consumer": "w"},
            {"name": "b", "producer": "w", "consumer": "k"},
        ],
    }
    doc.update(overrides)
    return doc


class TestSystemDocuments:
    def test_minimal_document_loads(self):
        system = system_from_dict(_doc())
        assert list(system.process_names) == ["s", "w", "k"]

    def test_unknown_format_version(self):
        with pytest.raises(ValidationError, match="format version 99"):
            system_from_dict(_doc(format_version=99))

    def test_missing_format_version(self):
        doc = _doc()
        del doc["format_version"]
        with pytest.raises(ValidationError, match="format version None"):
            system_from_dict(doc)

    def test_non_object_document(self):
        with pytest.raises(ValidationError, match="JSON object"):
            system_from_dict([1, 2, 3])

    @pytest.mark.parametrize("key", ["processes", "channels"])
    def test_missing_section(self, key):
        doc = _doc()
        del doc[key]
        with pytest.raises(ValidationError, match=f"missing '{key}'"):
            system_from_dict(doc)

    def test_process_missing_name(self):
        doc = _doc(processes=[{"latency": 3}])
        with pytest.raises(ValidationError, match="missing required"):
            system_from_dict(doc)

    def test_process_extra_field(self):
        doc = _doc()
        doc["processes"][1]["delay"] = 7  # typo for "latency"
        with pytest.raises(ValidationError, match="unknown field.*delay"):
            system_from_dict(doc)

    def test_channel_missing_endpoint(self):
        doc = _doc()
        del doc["channels"][0]["consumer"]
        with pytest.raises(ValidationError, match="consumer"):
            system_from_dict(doc)

    def test_channel_extra_field(self):
        doc = _doc()
        doc["channels"][0]["tokens"] = 1  # typo for "initial_tokens"
        with pytest.raises(ValidationError, match="unknown field.*tokens"):
            system_from_dict(doc)

    def test_bad_process_kind(self):
        doc = _doc()
        doc["processes"][0]["kind"] = "testbench"
        with pytest.raises(ValidationError, match="'s'"):
            system_from_dict(doc)

    def test_duplicate_channel_names(self):
        doc = _doc()
        doc["channels"].append(dict(doc["channels"][0]))
        with pytest.raises(ValidationError, match="duplicate channel 'a'"):
            system_from_dict(doc)

    def test_duplicate_process_names(self):
        doc = _doc()
        doc["processes"].append({"name": "w"})
        with pytest.raises(ValidationError, match="duplicate process 'w'"):
            system_from_dict(doc)


class TestOrderingDocuments:
    def test_unknown_format_version(self):
        with pytest.raises(ValidationError, match="ordering format version"):
            ordering_from_dict({"format_version": 2, "gets": {}, "puts": {}})

    @pytest.mark.parametrize("key", ["gets", "puts"])
    def test_missing_section(self, key):
        doc = {"format_version": 1, "gets": {}, "puts": {}}
        del doc[key]
        with pytest.raises(ValidationError, match=f"missing '{key}'"):
            ordering_from_dict(doc)

    def test_non_mapping_section(self):
        with pytest.raises(ValidationError, match="map process names"):
            ordering_from_dict(
                {"format_version": 1, "gets": ["P1"], "puts": {}}
            )


class TestFileLoading:
    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_system(path)
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_ordering(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="cannot read"):
            load_system(tmp_path / "absent.json")


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(system=layered_systems())
    def test_system_survives_json_round_trip(self, system):
        wire = json.dumps(system_to_dict(system))
        clone = system_from_dict(json.loads(wire))
        assert system_to_dict(clone) == system_to_dict(system)
        # Declaration order (the default statement order) is preserved.
        assert clone.process_names == system.process_names
        assert [c.name for c in clone.channels] == [
            c.name for c in system.channels
        ]

    @settings(max_examples=30, deadline=None)
    @given(system=layered_systems())
    def test_ordering_survives_json_round_trip(self, system):
        ordering = declaration_ordering(system)
        wire = json.dumps(ordering_to_dict(ordering))
        clone = ordering_from_dict(json.loads(wire))
        assert clone == ordering
        clone.validate(system)


class TestWriteErrors:
    """Writers share the loaders' ValidationError contract."""

    def test_save_system_unwritable_path(self, tiny_pipeline):
        from repro.core.serialization import save_system

        with pytest.raises(ValidationError, match="cannot write system"):
            save_system(tiny_pipeline, "/nonexistent/dir/system.json")

    def test_save_ordering_unwritable_path(self, tiny_pipeline):
        from repro.core.serialization import save_ordering

        with pytest.raises(ValidationError, match="cannot write ordering"):
            save_ordering(
                declaration_ordering(tiny_pipeline),
                "/nonexistent/dir/ordering.json",
            )
