"""Vectorized and two-stage motion estimation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.mpeg2.codec import (
    Encoder,
    EncoderConfig,
    MotionVector,
    VideoFormat,
    coarse_search,
    full_search,
    full_search_fast,
    psnr,
    refine_search,
    synthetic_sequence,
    two_stage_search,
)
from repro.mpeg2.functional import encode_through_system

FMT = VideoFormat(width=96, height=64)


@pytest.fixture(scope="module")
def reference_plane():
    rng = np.random.default_rng(7)
    return rng.integers(0, 255, (64, 96)).astype(np.uint8)


class TestFastSearch:
    @settings(max_examples=60, deadline=None)
    @given(
        row=st.integers(0, 3),
        col=st.integers(0, 5),
        search_range=st.integers(0, 10),
        seed=st.integers(0, 1000),
    )
    def test_equals_scalar_search(self, reference_plane, row, col,
                                  search_range, seed):
        rng = np.random.default_rng(seed)
        current = rng.integers(0, 255, (16, 16)).astype(np.uint8)
        scalar = full_search(current, reference_plane, row, col, search_range)
        fast = full_search_fast(current, reference_plane, row, col,
                                search_range)
        assert (scalar[0].dx, scalar[0].dy, scalar[1]) == (
            fast[0].dx, fast[0].dy, fast[1]
        )

    def test_finds_exact_shift(self, reference_plane):
        current = reference_plane[16 + 3 : 32 + 3, 16 - 2 : 32 - 2]
        mv, cost = full_search_fast(current, reference_plane, 1, 1,
                                    search_range=5)
        assert (mv.dx, mv.dy, cost) == (-2, 3, 0)

    def test_bad_shape_rejected(self, reference_plane):
        with pytest.raises(ValidationError):
            full_search_fast(np.zeros((8, 8), dtype=np.uint8),
                             reference_plane, 0, 0)


class TestTwoStage:
    def test_coarse_grid_respects_step(self, reference_plane):
        current = np.zeros((16, 16), dtype=np.uint8)
        mv, __ = coarse_search(current, reference_plane, 1, 1,
                               search_range=6, step=2)
        assert mv.dx % 2 == 0 and mv.dy % 2 == 0

    def test_refine_never_degrades(self, reference_plane):
        rng = np.random.default_rng(1)
        current = rng.integers(0, 255, (16, 16)).astype(np.uint8)
        coarse, coarse_cost = coarse_search(
            current, reference_plane, 1, 2, search_range=6
        )
        refined, refined_cost = refine_search(
            current, reference_plane, 1, 2, coarse
        )
        assert refined_cost <= coarse_cost

    def test_two_stage_close_to_full(self, reference_plane):
        # on an exact even shift the grid finds it directly
        current = reference_plane[16 + 4 : 32 + 4, 16 + 2 : 32 + 2]
        mv, cost = two_stage_search(current, reference_plane, 1, 1,
                                    search_range=6)
        assert (mv.dx, mv.dy, cost) == (2, 4, 0)

    def test_two_stage_finds_odd_shift_on_smooth_content(self):
        # Random texture has no SAD basin, so the coarse grid can land
        # anywhere; on smooth content the basin guides the grid to a
        # neighbour of the true (odd) shift and refinement closes the gap.
        yy, xx = np.mgrid[0:64, 0:96]
        smooth = (128 + 100 * np.sin(yy / 9.0) * np.cos(xx / 11.0)).astype(
            np.uint8
        )
        current = smooth[16 + 3 : 32 + 3, 16 + 1 : 32 + 1]
        mv, cost = two_stage_search(current, smooth, 1, 1,
                                    search_range=6, step=2, refine_range=1)
        assert (mv.dx, mv.dy, cost) == (1, 3, 0)

    def test_invalid_step_rejected(self, reference_plane):
        with pytest.raises(ValidationError):
            coarse_search(np.zeros((16, 16), dtype=np.uint8),
                          reference_plane, 0, 0, step=0)


class TestTwoStageEncoder:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            EncoderConfig(me_mode="diamond")
        with pytest.raises(ValidationError):
            EncoderConfig(me_step=0)
        with pytest.raises(ValidationError):
            EncoderConfig(refine_range=-1)

    def test_two_stage_quality_close_to_full(self):
        frames = synthetic_sequence(5, FMT, seed=2)
        full = Encoder(EncoderConfig(gop_size=4, qscale=7,
                                     search_range=8)).encode_sequence(frames)
        staged = Encoder(EncoderConfig(gop_size=4, qscale=7, search_range=8,
                                       me_mode="two_stage")).encode_sequence(
            frames
        )
        q_full = psnr(frames[-1].y, full.reconstructed[-1].y)
        q_staged = psnr(frames[-1].y, staged.reconstructed[-1].y)
        assert q_staged >= q_full - 1.0  # within 1 dB

    def test_distributed_two_stage_bit_exact(self):
        frames = synthetic_sequence(4, FMT, seed=3)
        config = EncoderConfig(gop_size=2, qscale=8, search_range=8,
                               me_mode="two_stage", reference_delay=2)
        reference = Encoder(config).encode_sequence(frames)
        run = encode_through_system(frames, config)
        assert run.bitstream == reference.bitstream

    def test_modes_differ_only_in_vectors(self):
        frames = synthetic_sequence(3, FMT, seed=4)
        full = Encoder(EncoderConfig(gop_size=4, qscale=7,
                                     search_range=8)).encode_sequence(frames)
        staged = Encoder(EncoderConfig(gop_size=4, qscale=7, search_range=8,
                                       me_mode="two_stage")).encode_sequence(
            frames
        )
        # intra frames are identical regardless of ME mode
        assert full.stats[0].bits == staged.stats[0].bits
