"""YUV4MPEG2 file round trips."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpeg2.codec import (
    VideoFormat,
    read_y4m,
    synthetic_sequence,
    write_y4m,
)

FMT = VideoFormat(width=64, height=48)


class TestY4m:
    def test_round_trip(self, tmp_path):
        frames = synthetic_sequence(4, FMT, seed=1)
        path = tmp_path / "clip.y4m"
        write_y4m(path, frames, fps=(25, 1))
        loaded, fps = read_y4m(path)
        assert fps == (25, 1)
        assert len(loaded) == 4
        for a, b in zip(frames, loaded):
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.cb, b.cb)
            assert np.array_equal(a.cr, b.cr)

    def test_header_format(self, tmp_path):
        frames = synthetic_sequence(1, FMT)
        path = tmp_path / "clip.y4m"
        write_y4m(path, frames)
        head = path.read_bytes().split(b"\n", 1)[0]
        assert head.startswith(b"YUV4MPEG2 W64 H48 F30:1")
        assert b"C420" in head

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_y4m(tmp_path / "x.y4m", [])

    def test_bad_fps_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            write_y4m(tmp_path / "x.y4m", synthetic_sequence(1, FMT),
                      fps=(0, 1))

    def test_mixed_sizes_rejected(self, tmp_path):
        frames = synthetic_sequence(1, FMT) + synthetic_sequence(
            1, VideoFormat(32, 32)
        )
        with pytest.raises(ValidationError):
            write_y4m(tmp_path / "x.y4m", frames)

    def test_not_y4m_rejected(self, tmp_path):
        path = tmp_path / "junk.y4m"
        path.write_bytes(b"RIFFjunk")
        with pytest.raises(ValidationError):
            read_y4m(path)

    def test_truncated_rejected(self, tmp_path):
        frames = synthetic_sequence(2, FMT)
        path = tmp_path / "clip.y4m"
        write_y4m(path, frames)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 100])
        with pytest.raises(ValidationError):
            read_y4m(path)

    def test_unsupported_chroma_rejected(self, tmp_path):
        path = tmp_path / "c444.y4m"
        path.write_bytes(b"YUV4MPEG2 W16 H16 F30:1 C444\nFRAME\n" + b"\0" * 768)
        with pytest.raises(ValidationError):
            read_y4m(path)

    def test_reconstruction_export(self, tmp_path):
        """Encode, then dump the reconstruction as a playable file."""
        from repro.mpeg2.codec import Encoder, EncoderConfig

        frames = synthetic_sequence(3, FMT, seed=2)
        video = Encoder(EncoderConfig(qscale=8)).encode_sequence(frames)
        path = tmp_path / "recon.y4m"
        write_y4m(path, video.reconstructed)
        loaded, __ = read_y4m(path)
        assert np.array_equal(loaded[-1].y, video.reconstructed[-1].y)
