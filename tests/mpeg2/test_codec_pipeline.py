"""End-to-end codec tests: encoder/decoder round trips, rate control,
frames."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.mpeg2.codec import (
    Decoder,
    Encoder,
    EncoderConfig,
    Frame,
    VideoFormat,
    macroblock,
    psnr,
    synthetic_sequence,
)
from repro.mpeg2.codec.frames import gray_frame


FMT = VideoFormat(width=96, height=64)


@pytest.fixture(scope="module")
def frames():
    return synthetic_sequence(6, FMT, seed=3)


class TestFrames:
    def test_format_constraints(self):
        with pytest.raises(ValidationError):
            VideoFormat(width=100, height=64)  # not multiple of 16

    def test_macroblock_counts(self):
        assert FMT.mb_cols == 6
        assert FMT.mb_rows == 4
        assert FMT.macroblocks == 24

    def test_chroma_shape_enforced(self):
        with pytest.raises(ValidationError):
            Frame(
                y=np.zeros((64, 96), dtype=np.uint8),
                cb=np.zeros((64, 96), dtype=np.uint8),
                cr=np.zeros((32, 48), dtype=np.uint8),
            )

    def test_synthetic_sequence_deterministic(self, frames):
        again = synthetic_sequence(6, FMT, seed=3)
        for a, b in zip(frames, again):
            assert np.array_equal(a.y, b.y)

    def test_sequence_has_motion(self, frames):
        assert not np.array_equal(frames[0].y, frames[1].y)

    def test_macroblock_extraction(self, frames):
        mb = macroblock(frames[0], 1, 2)
        assert mb["y"].shape == (16, 16)
        assert mb["cb"].shape == (8, 8)
        assert np.array_equal(mb["y"], frames[0].y[16:32, 32:48])

    def test_psnr_identical_infinite(self, frames):
        assert psnr(frames[0].y, frames[0].y) == float("inf")

    def test_psnr_shape_mismatch(self, frames):
        with pytest.raises(ValidationError):
            psnr(frames[0].y, frames[0].cb)

    def test_gray_frame(self):
        g = gray_frame(FMT)
        assert int(g.y[0, 0]) == 128
        assert g.cb.shape == (32, 48)


class TestEncoderDecoder:
    @pytest.mark.parametrize("delay", [1, 2])
    def test_decoder_matches_encoder_reconstruction(self, frames, delay):
        config = EncoderConfig(gop_size=3, qscale=6, search_range=4,
                               reference_delay=delay)
        video = Encoder(config).encode_sequence(frames)
        decoded = Decoder(FMT, reference_delay=delay).decode_sequence(
            video.bitstream, len(frames)
        )
        for recon, dec in zip(video.reconstructed, decoded):
            assert np.array_equal(recon.y, dec.y)
            assert np.array_equal(recon.cb, dec.cb)
            assert np.array_equal(recon.cr, dec.cr)

    def test_gop_structure(self, frames):
        video = Encoder(EncoderConfig(gop_size=3, qscale=8)).encode_sequence(
            frames
        )
        assert [s.intra for s in video.stats] == [
            True, False, False, True, False, False
        ]

    def test_quality_improves_with_finer_qscale(self, frames):
        coarse = Encoder(EncoderConfig(qscale=24)).encode_sequence(frames)
        fine = Encoder(EncoderConfig(qscale=2)).encode_sequence(frames)
        psnr_coarse = psnr(frames[-1].y, coarse.reconstructed[-1].y)
        psnr_fine = psnr(frames[-1].y, fine.reconstructed[-1].y)
        assert psnr_fine > psnr_coarse
        assert fine.total_bits > coarse.total_bits

    def test_compresses(self, frames):
        video = Encoder(EncoderConfig(qscale=8)).encode_sequence(frames)
        raw_bits = len(frames) * (96 * 64 + 2 * 48 * 32) * 8
        assert video.total_bits < raw_bits / 2

    def test_reasonable_quality(self, frames):
        video = Encoder(EncoderConfig(qscale=6)).encode_sequence(frames)
        for frame, recon in zip(frames, video.reconstructed):
            assert psnr(frame.y, recon.y) > 30.0

    def test_motion_vectors_recorded_for_p_frames(self, frames):
        video = Encoder(
            EncoderConfig(gop_size=3, search_range=4)
        ).encode_sequence(frames)
        for stats in video.stats:
            if stats.intra:
                assert stats.motion_vectors == []
            else:
                assert len(stats.motion_vectors) == FMT.macroblocks

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValidationError):
            Encoder().encode_sequence([])

    def test_mixed_sizes_rejected(self, frames):
        other = synthetic_sequence(1, VideoFormat(64, 48))[0]
        with pytest.raises(ValidationError):
            Encoder().encode_sequence([frames[0], other])

    def test_decoder_detects_index_mismatch(self, frames):
        video = Encoder(EncoderConfig(qscale=8)).encode_sequence(frames)
        with pytest.raises(ValidationError):
            # skipping a frame desynchronizes the header indices
            Decoder(FMT).decode_sequence(video.bitstream[10:], 2)


class TestRateControl:
    def test_qscale_rises_when_over_budget(self, frames):
        config = EncoderConfig(qscale=4, target_bits_per_frame=1000)
        video = Encoder(config).encode_sequence(frames)
        qscales = [s.qscale for s in video.stats]
        assert qscales[-1] > qscales[0]

    def test_qscale_falls_when_under_budget(self, frames):
        config = EncoderConfig(qscale=20, target_bits_per_frame=10**9)
        video = Encoder(config).encode_sequence(frames)
        qscales = [s.qscale for s in video.stats]
        assert qscales[-1] < qscales[0]

    def test_qscale_clamped(self, frames):
        config = EncoderConfig(qscale=30, target_bits_per_frame=1)
        video = Encoder(config).encode_sequence(frames)
        assert max(s.qscale for s in video.stats) <= 31

    def test_disabled_without_target(self, frames):
        video = Encoder(EncoderConfig(qscale=9)).encode_sequence(frames)
        assert {s.qscale for s in video.stats} == {9}

    def test_rate_controlled_stream_decodable(self, frames):
        config = EncoderConfig(qscale=8, target_bits_per_frame=4000,
                               reference_delay=2)
        video = Encoder(config).encode_sequence(frames)
        decoded = Decoder(FMT, reference_delay=2).decode_sequence(
            video.bitstream, len(frames)
        )
        assert np.array_equal(decoded[-1].y, video.reconstructed[-1].y)


class TestConfigValidation:
    def test_bad_gop(self):
        with pytest.raises(ValidationError):
            EncoderConfig(gop_size=0)

    def test_bad_qscale(self):
        with pytest.raises(ValidationError):
            EncoderConfig(qscale=0)

    def test_bad_delay(self):
        with pytest.raises(ValidationError):
            EncoderConfig(reference_delay=0)
        with pytest.raises(ValidationError):
            Decoder(FMT, reference_delay=0)
