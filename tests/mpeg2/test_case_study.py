"""The MPEG-2 case study: Table 1 structure, paper anchors, functional run.

These tests are the reproduction's headline regressions: the Table 1
setup numbers, the M1/M2 anchors (cycle time within a few percent of the
paper, area within 1%), the 5% reordering experiment, and bit-exactness of
the distributed encoder against the reference.
"""

import numpy as np
import pytest

from repro.dse import SystemConfiguration
from repro.model import analyze_system, is_deadlock_free
from repro.mpeg2 import (
    CHANNEL_SPECS,
    FRONTIER_SPECS,
    build_mpeg2_library,
    build_mpeg2_system,
    channel_latencies,
    encode_through_system,
    m1_selection,
    m2_selection,
    smallest_selection,
)
from repro.mpeg2.codec import Decoder, Encoder, EncoderConfig, VideoFormat, synthetic_sequence
from repro.ordering import channel_ordering, declaration_ordering


@pytest.fixture(scope="module")
def system():
    return build_mpeg2_system()


@pytest.fixture(scope="module")
def library():
    return build_mpeg2_library()


class TestTable1:
    def test_26_processes(self, system):
        assert len(system.workers()) == 26

    def test_60_channels(self, system):
        assert len(CHANNEL_SPECS) == 60
        # plus the two testbench links
        assert len(system.channels) == 62

    def test_171_pareto_points(self, library):
        assert library.total_points() == 171

    def test_channel_latency_range_1_to_5280(self):
        latencies = channel_latencies()
        assert min(latencies.values()) == 1
        assert max(latencies.values()) == 5280

    def test_image_size_is_352x240(self):
        from repro.mpeg2.topology import FRAME, LUMA

        assert LUMA == 352 * 240
        assert FRAME == 352 * 240 * 3 // 2

    def test_every_worker_has_a_frontier(self, system, library):
        assert set(library.processes()) == {p.name for p in system.workers()}

    def test_feedback_loops_present(self, system):
        preloaded = [c.name for c in system.channels if c.initial_tokens > 0]
        assert "ref_win_coarse" in preloaded  # frame-store loop
        assert "bit_count" in preloaded  # rate-control loop

    def test_reconvergent_paths_present(self, system):
        # luma and chroma fork at mb_dispatch/residual and rejoin at
        # vlc_coeff.
        producers = {system.channel(c).producer
                     for c in system.input_channels("vlc_coeff")}
        assert {"zigzag_luma", "zigzag_chroma"} <= producers


class TestAnchors:
    """Paper-vs-measured anchor points (shape-level agreement)."""

    def _performance(self, system, library, selection):
        config = SystemConfiguration(
            system, library, selection, declaration_ordering(system)
        )
        perf = analyze_system(
            system, config.ordering,
            process_latencies=config.process_latencies(),
        )
        return config, perf

    def test_m1_cycle_time_near_1906k(self, system, library):
        __, perf = self._performance(system, library, m1_selection(library))
        assert float(perf.cycle_time) / 1000 == pytest.approx(1906, rel=0.02)

    def test_m1_area_near_2_267mm2(self, system, library):
        config, __ = self._performance(system, library, m1_selection(library))
        assert config.total_area() / 1e6 == pytest.approx(2.267, rel=0.01)

    def test_m2_cycle_time_near_3597k(self, system, library):
        __, perf = self._performance(system, library, m2_selection(library))
        assert float(perf.cycle_time) / 1000 == pytest.approx(3597, rel=0.03)

    def test_m2_area_near_1_562mm2(self, system, library):
        config, __ = self._performance(system, library, m2_selection(library))
        assert config.total_area() / 1e6 == pytest.approx(1.562, rel=0.01)

    def test_m1_reordering_gains_about_5_percent(self, system, library):
        config, before = self._performance(system, library,
                                           m1_selection(library))
        latencies = config.process_latencies()
        ordering = channel_ordering(
            system.with_process_latencies(latencies),
            initial_ordering=config.ordering,
        )
        after = analyze_system(system, ordering, process_latencies=latencies)
        gain = 1 - float(after.cycle_time) / float(before.cycle_time)
        assert 0.03 <= gain <= 0.08  # the paper reports 5%

    def test_m1_m2_ratio_matches_paper(self, system, library):
        __, m1 = self._performance(system, library, m1_selection(library))
        __, m2 = self._performance(system, library, m2_selection(library))
        ratio = float(m2.cycle_time) / float(m1.cycle_time)
        # paper: 3597/1906 = 1.89
        assert ratio == pytest.approx(1.89, rel=0.05)

    def test_smallest_area_floor_below_m2(self, system, library):
        config_m2, __ = self._performance(system, library,
                                          m2_selection(library))
        floor = SystemConfiguration(
            system, library, smallest_selection(library),
            declaration_ordering(system),
        )
        assert floor.total_area() < config_m2.total_area()

    def test_declaration_ordering_is_live(self, system, library):
        config = SystemConfiguration(
            system, library, m1_selection(library),
            declaration_ordering(system),
        )
        assert is_deadlock_free(system, config.ordering)


class TestFrontiers:
    def test_counts_match_spec(self, library):
        for name, (points, *_rest) in FRONTIER_SPECS.items():
            assert len(library.of(name)) == points

    def test_frontiers_are_pareto(self, library):
        for pareto in library:
            points = list(pareto)
            for a in points:
                for b in points:
                    if a.name != b.name:
                        assert not a.dominates(b) or True  # frontier check:
            # stronger: latencies strictly decreasing, areas strictly
            # increasing along the stored order (fastest-first).
            latencies = [p.latency for p in points]
            areas = [p.area for p in points]
            assert latencies == sorted(latencies)
            assert areas == sorted(areas, reverse=True)

    def test_spread_matches_spec(self, library):
        for name, (points, slowest, spread, *_rest) in FRONTIER_SPECS.items():
            pareto = library.of(name)
            assert pareto.smallest.latency == slowest
            assert pareto.fastest.latency == pytest.approx(
                slowest / spread, rel=0.01
            )


class TestFunctionalRun:
    FMT = VideoFormat(width=96, height=64)

    def test_bit_exact_with_reference(self):
        frames = synthetic_sequence(5, self.FMT, seed=4)
        config = EncoderConfig(gop_size=4, qscale=7, search_range=4,
                               target_bits_per_frame=15_000,
                               reference_delay=2)
        reference = Encoder(config).encode_sequence(frames)
        run = encode_through_system(frames, config)
        assert run.bitstream == reference.bitstream

    def test_distributed_stream_decodes(self):
        frames = synthetic_sequence(4, self.FMT, seed=5)
        config = EncoderConfig(gop_size=2, qscale=8, search_range=4,
                               reference_delay=2)
        run = encode_through_system(frames, config)
        reference = Encoder(config).encode_sequence(frames)
        decoded = Decoder(self.FMT, reference_delay=2).decode_sequence(
            run.bitstream, len(frames)
        )
        for dec, recon in zip(decoded, reference.reconstructed):
            assert np.array_equal(dec.y, recon.y)

    def test_ordering_does_not_change_bitstream(self):
        frames = synthetic_sequence(3, self.FMT, seed=6)
        config = EncoderConfig(gop_size=2, qscale=9, search_range=2,
                               reference_delay=2)
        system = build_mpeg2_system()
        default = encode_through_system(frames, config)
        reordered = encode_through_system(
            frames, config, ordering=channel_ordering(system)
        )
        assert default.bitstream == reordered.bitstream

    def test_frame_bits_reported(self):
        frames = synthetic_sequence(3, self.FMT, seed=7)
        run = encode_through_system(
            frames, EncoderConfig(gop_size=2, qscale=8, search_range=2,
                                  reference_delay=2)
        )
        assert len(run.frame_bits) == 3
        assert all(bits % 8 == 0 for bits in run.frame_bits)

    def test_full_size_352x240_bit_exact(self):
        """The paper's actual frame size (Table 1), through all 26
        processes, with two-stage motion estimation."""
        fmt = VideoFormat()  # 352x240
        frames = synthetic_sequence(2, fmt, seed=8)
        config = EncoderConfig(gop_size=8, qscale=8, search_range=8,
                               me_mode="two_stage", reference_delay=2)
        reference = Encoder(config).encode_sequence(frames)
        run = encode_through_system(frames, config)
        assert run.bitstream == reference.bitstream
        assert run.simulation.iterations["Psnk"] == 2
