"""Unit and property tests for the functional codec building blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ValidationError
from repro.mpeg2.codec import (
    BitReader,
    BitWriter,
    INTRA_MATRIX,
    MotionVector,
    blocks_of_macroblock,
    dct2,
    decode_block,
    decode_motion_vector,
    dequantize,
    encode_block,
    encode_motion_vector,
    full_search,
    idct2,
    macroblock_of_blocks,
    predict_macroblock,
    quantize,
    read_se,
    read_ue,
    run_level_decode,
    run_level_encode,
    sad,
    scan,
    unscan,
    write_se,
    write_ue,
)

int8x8 = hnp.arrays(np.int32, (8, 8), elements=st.integers(-255, 255))
uint8x8 = hnp.arrays(np.uint8, (8, 8), elements=st.integers(0, 255))


class TestDct:
    def test_constant_block_energy_in_dc(self):
        block = np.full((8, 8), 100.0)
        coefficients = dct2(block)
        assert coefficients[0, 0] == pytest.approx(800.0)
        assert np.abs(coefficients).sum() == pytest.approx(800.0)

    @settings(max_examples=50, deadline=None)
    @given(block=int8x8)
    def test_round_trip(self, block):
        assert np.allclose(idct2(dct2(block)), block, atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(block=int8x8)
    def test_parseval(self, block):
        # Orthonormal transform preserves energy.
        coefficients = dct2(block)
        assert np.sum(coefficients**2) == pytest.approx(
            float(np.sum(block.astype(np.float64) ** 2)), rel=1e-9
        )

    def test_batched(self):
        blocks = np.arange(2 * 64, dtype=np.float64).reshape(2, 8, 8)
        out = dct2(blocks)
        assert out.shape == (2, 8, 8)
        assert np.allclose(out[0], dct2(blocks[0]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValidationError):
            dct2(np.zeros((4, 4)))
        with pytest.raises(ValidationError):
            idct2(np.zeros((8, 7)))

    def test_macroblock_split_round_trip(self):
        mb = np.arange(256, dtype=np.int32).reshape(16, 16)
        assert np.array_equal(macroblock_of_blocks(blocks_of_macroblock(mb)), mb)

    def test_macroblock_shapes_enforced(self):
        with pytest.raises(ValidationError):
            blocks_of_macroblock(np.zeros((8, 8)))
        with pytest.raises(ValidationError):
            macroblock_of_blocks(np.zeros((2, 8, 8)))


class TestQuant:
    def test_quantize_dequantize_bounded_error(self):
        rng = np.random.default_rng(0)
        block = rng.integers(-200, 200, (8, 8)).astype(np.float64)
        for qscale in (1, 8, 31):
            levels = quantize(block, qscale, intra=False)
            recovered = dequantize(levels, qscale, intra=False)
            step = 2.0 * qscale  # flat inter matrix 16 * 2q/16
            assert np.all(np.abs(recovered - block) <= step / 2 + 1e-9)

    def test_intra_dc_fixed_step(self):
        block = np.zeros((8, 8))
        block[0, 0] = 77.0
        levels = quantize(block, qscale=31, intra=True)
        assert levels[0, 0] == round(77 / 8)
        recovered = dequantize(levels, qscale=31, intra=True)
        assert recovered[0, 0] == levels[0, 0] * 8.0

    def test_larger_qscale_coarser(self):
        rng = np.random.default_rng(1)
        block = rng.normal(0, 60, (8, 8))
        fine = quantize(block, 2, intra=False)
        coarse = quantize(block, 20, intra=False)
        assert np.abs(coarse).sum() <= np.abs(fine).sum()

    def test_qscale_bounds(self):
        with pytest.raises(ValidationError):
            quantize(np.zeros((8, 8)), 0)
        with pytest.raises(ValidationError):
            dequantize(np.zeros((8, 8), dtype=np.int32), 32)

    def test_intra_matrix_shape(self):
        assert INTRA_MATRIX.shape == (8, 8)
        assert INTRA_MATRIX[0, 0] == 8


class TestZigzag:
    def test_scan_visits_every_index_once(self):
        block = np.arange(64, dtype=np.int32).reshape(8, 8)
        assert sorted(scan(block).tolist()) == list(range(64))

    def test_scan_starts_dc_then_low_frequencies(self):
        block = np.arange(64, dtype=np.int32).reshape(8, 8)
        vector = scan(block)
        assert vector[0] == 0  # (0,0)
        assert set(vector[1:3].tolist()) == {1, 8}  # (0,1) and (1,0)

    @settings(max_examples=50, deadline=None)
    @given(block=int8x8)
    def test_scan_unscan_inverse(self, block):
        assert np.array_equal(unscan(scan(block)), block)

    @settings(max_examples=50, deadline=None)
    @given(block=int8x8)
    def test_run_level_round_trip(self, block):
        vector = scan(block)
        assert np.array_equal(run_level_decode(run_level_encode(vector)), vector)

    def test_run_level_drops_trailing_zeros(self):
        vector = np.zeros(64, dtype=np.int32)
        vector[0] = 5
        assert run_level_encode(vector) == [(0, 5)]

    def test_run_level_overrun_rejected(self):
        with pytest.raises(ValidationError):
            run_level_decode([(63, 1), (1, 1)])

    def test_zero_level_rejected(self):
        with pytest.raises(ValidationError):
            run_level_decode([(0, 0)])


class TestBitstream:
    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(st.tuples(st.integers(0, 2**16 - 1),
                                     st.integers(1, 16)), max_size=30))
    def test_writer_reader_round_trip(self, values):
        writer = BitWriter()
        for value, width in values:
            writer.write_bits(value % (1 << width), width)
        reader = BitReader(writer.getvalue())
        for value, width in values:
            assert reader.read_bits(width) == value % (1 << width)

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValidationError):
            BitWriter().write_bits(4, 2)

    def test_align(self):
        writer = BitWriter()
        writer.write_bits(1, 3)
        writer.align()
        assert writer.bit_length == 8

    def test_getbits_matches_written(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        assert writer.getbits() == "1011"

    def test_reader_exhaustion(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(ValidationError):
            reader.read_bit()


class TestVlc:
    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(0, 100_000))
    def test_ue_round_trip(self, value):
        writer = BitWriter()
        write_ue(writer, value)
        assert read_ue(BitReader(writer.getvalue())) == value

    @settings(max_examples=80, deadline=None)
    @given(value=st.integers(-50_000, 50_000))
    def test_se_round_trip(self, value):
        writer = BitWriter()
        write_se(writer, value)
        assert read_se(BitReader(writer.getvalue())) == value

    def test_small_values_short_codes(self):
        writer = BitWriter()
        write_ue(writer, 0)
        assert writer.bit_length == 1  # '1'

    @settings(max_examples=50, deadline=None)
    @given(block=int8x8)
    def test_block_round_trip(self, block):
        pairs = run_level_encode(scan(block))
        writer = BitWriter()
        encode_block(writer, pairs)
        assert decode_block(BitReader(writer.getvalue())) == pairs

    def test_motion_vector_round_trip(self):
        writer = BitWriter()
        encode_motion_vector(writer, -7, 12)
        assert decode_motion_vector(BitReader(writer.getvalue())) == (-7, 12)

    def test_negative_ue_rejected(self):
        with pytest.raises(ValidationError):
            write_ue(BitWriter(), -1)


class TestMotion:
    def test_sad_zero_for_identical(self):
        block = np.full((16, 16), 7, dtype=np.uint8)
        assert sad(block, block) == 0

    def test_full_search_finds_exact_shift(self):
        rng = np.random.default_rng(3)
        reference = rng.integers(0, 255, (64, 64)).astype(np.uint8)
        # current macroblock = reference shifted by (dx=3, dy=-2)
        current = reference[16 - 2 : 32 - 2, 16 + 3 : 32 + 3]
        mv, cost = full_search(current, reference, 1, 1, search_range=4)
        assert (mv.dx, mv.dy) == (3, -2)
        assert cost == 0

    def test_zero_vector_preferred_on_ties(self):
        reference = np.zeros((64, 64), dtype=np.uint8)
        current = np.zeros((16, 16), dtype=np.uint8)
        mv, cost = full_search(current, reference, 1, 1, search_range=4)
        assert (mv.dx, mv.dy) == (0, 0)

    def test_predict_clamps_at_borders(self):
        reference = np.arange(64 * 64, dtype=np.uint8).reshape(64, 64)
        patch = predict_macroblock(reference, 0, 0, MotionVector(-8, -8))
        assert np.array_equal(patch, reference[0:16, 0:16])

    def test_bad_macroblock_shape_rejected(self):
        with pytest.raises(ValidationError):
            full_search(np.zeros((8, 8), dtype=np.uint8),
                        np.zeros((64, 64), dtype=np.uint8), 0, 0)
