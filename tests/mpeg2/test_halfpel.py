"""Half-pel motion estimation: interpolation, refinement, end-to-end."""

import numpy as np
import pytest

from repro.mpeg2.codec import (
    Decoder,
    Encoder,
    EncoderConfig,
    MotionVector,
    VideoFormat,
    halfpel_refine,
    interpolate_block,
    predict_macroblock_halfpel,
    psnr,
    synthetic_sequence,
)
from repro.mpeg2.functional import encode_through_system

FMT = VideoFormat(width=96, height=64)


class TestInterpolation:
    @pytest.fixture()
    def plane(self):
        rng = np.random.default_rng(2)
        return rng.integers(0, 255, (32, 48)).astype(np.uint8)

    def test_integer_position_exact(self, plane):
        block = interpolate_block(plane, 2 * 4, 2 * 6, 16)
        assert np.array_equal(block, plane[4:20, 6:22])

    def test_horizontal_halfpel_average(self, plane):
        block = interpolate_block(plane, 2 * 4, 2 * 6 + 1, 8)
        a = plane[4:12, 6:14].astype(np.int32)
        b = plane[4:12, 7:15].astype(np.int32)
        assert np.array_equal(block, ((a + b + 1) >> 1).astype(np.uint8))

    def test_vertical_halfpel_average(self, plane):
        block = interpolate_block(plane, 2 * 4 + 1, 2 * 6, 8)
        a = plane[4:12, 6:14].astype(np.int32)
        b = plane[5:13, 6:14].astype(np.int32)
        assert np.array_equal(block, ((a + b + 1) >> 1).astype(np.uint8))

    def test_diagonal_four_tap(self, plane):
        block = interpolate_block(plane, 2 * 4 + 1, 2 * 6 + 1, 8)
        a = plane[4:12, 6:14].astype(np.int32)
        b = plane[4:12, 7:15].astype(np.int32)
        c = plane[5:13, 6:14].astype(np.int32)
        d = plane[5:13, 7:15].astype(np.int32)
        assert np.array_equal(block, ((a + b + c + d + 2) >> 2).astype(np.uint8))

    def test_border_clamped(self, plane):
        block = interpolate_block(plane, -5, -5, 16)
        assert np.array_equal(block, plane[0:16, 0:16])
        block = interpolate_block(plane, 10_000, 10_000, 16)
        assert block.shape == (16, 16)


class TestHalfpelRefine:
    def test_never_degrades_integer_result(self):
        rng = np.random.default_rng(5)
        reference = rng.integers(0, 255, (64, 96)).astype(np.uint8)
        current = rng.integers(0, 255, (16, 16)).astype(np.uint8)
        from repro.mpeg2.codec import full_search, sad

        integer_mv, integer_cost = full_search(current, reference, 1, 2, 4)
        half_mv, half_cost = halfpel_refine(current, reference, 1, 2,
                                            integer_mv)
        assert half_cost <= integer_cost

    def test_finds_true_halfpel_shift(self):
        # reference shifted by exactly half a pel horizontally: the
        # half-pel interpolation reconstructs it exactly on smooth content.
        yy, xx = np.mgrid[0:64, 0:96]
        plane = (100 + 40 * np.sin(xx / 7.0)).astype(np.uint8)
        current = interpolate_block(plane, 2 * 16, 2 * 16 + 1, 16)
        mv, cost = halfpel_refine(current, plane, 1, 1, MotionVector(0, 0))
        assert (mv.dx, mv.dy) == (1, 0)  # +1 in half-pel units
        assert cost == 0

    def test_prediction_matches_refined_vector(self):
        rng = np.random.default_rng(6)
        plane = rng.integers(0, 255, (64, 96)).astype(np.uint8)
        mv = MotionVector(3, -1)  # half-pel units
        predicted = predict_macroblock_halfpel(plane, 1, 1, mv)
        direct = interpolate_block(plane, 2 * 16 - 1, 2 * 16 + 3, 16)
        assert np.array_equal(predicted, direct)


class TestHalfpelPipeline:
    @pytest.fixture(scope="class")
    def frames(self):
        return synthetic_sequence(6, FMT, seed=11)

    def test_decoder_round_trip(self, frames):
        config = EncoderConfig(gop_size=4, qscale=7, half_pel=True,
                               reference_delay=2)
        video = Encoder(config).encode_sequence(frames)
        decoded = Decoder(FMT, reference_delay=2).decode_sequence(
            video.bitstream, len(frames)
        )
        for d, r in zip(decoded, video.reconstructed):
            assert np.array_equal(d.y, r.y)
            assert np.array_equal(d.cb, r.cb)

    def test_distributed_bit_exact(self, frames):
        config = EncoderConfig(gop_size=4, qscale=7, me_mode="two_stage",
                               half_pel=True, reference_delay=2)
        reference = Encoder(config).encode_sequence(frames)
        run = encode_through_system(frames, config)
        assert run.bitstream == reference.bitstream

    def test_halfpel_improves_rate_or_quality(self, frames):
        base = EncoderConfig(gop_size=4, qscale=7, reference_delay=2)
        half = EncoderConfig(gop_size=4, qscale=7, half_pel=True,
                             reference_delay=2)
        video_i = Encoder(base).encode_sequence(frames)
        video_h = Encoder(half).encode_sequence(frames)
        psnr_i = sum(psnr(f.y, r.y)
                     for f, r in zip(frames, video_i.reconstructed))
        psnr_h = sum(psnr(f.y, r.y)
                     for f, r in zip(frames, video_h.reconstructed))
        # Half-pel must win on at least one axis and not lose on both.
        better_quality = psnr_h >= psnr_i
        fewer_bits = video_h.total_bits <= video_i.total_bits
        assert better_quality or fewer_bits

    def test_header_flag_self_describing(self, frames):
        # A half-pel stream decodes correctly without telling the decoder.
        config = EncoderConfig(gop_size=4, qscale=8, half_pel=True,
                               reference_delay=2)
        video = Encoder(config).encode_sequence(frames)
        decoded = Decoder(FMT, reference_delay=2).decode_sequence(
            video.bitstream, len(frames)
        )
        assert np.array_equal(decoded[-1].y, video.reconstructed[-1].y)
