"""Round-trip every artifact kind through the store, plus a Hypothesis
property over arbitrary picklable payloads.

One concrete artifact per registered kind, built by the producer that
actually files that kind in the pipeline:

- ``sim``          — :class:`repro.service.SimArtifact` from a simulator run
- ``analysis``     — :class:`repro.model.SystemPerformance` from the engine
- ``verify``       — :class:`repro.verify.VerificationResult`
- ``certificate``  — an abstract-interpretation deadlock-freedom certificate
- ``pareto``       — a sweep frontier summary
"""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import ARTIFACT_KINDS, ArtifactStore, params_digest


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(scope="module")
def ir_hash(motivating, optimal_ordering):
    from repro.ir import lower

    return lower(motivating, optimal_ordering).structural_hash


def test_every_kind_is_exercised_here():
    # Keep this file honest: a new artifact kind must add a round-trip.
    assert set(ARTIFACT_KINDS) == {
        "sim", "analysis", "verify", "certificate", "pareto"
    }


def test_sim_artifact_round_trip(store, motivating, optimal_ordering, ir_hash):
    from repro.service.units import SimArtifact
    from repro.sim import Simulator

    watch = motivating.sinks()[0].name
    result = Simulator(motivating, optimal_ordering).run(
        iterations=16, watch=watch
    )
    artifact = SimArtifact(
        measured_cycle_time=result.measured_cycle_time(watch),
        deadlocked=False,
        deadlock_cycle=(),
        result=result,
    )
    digest = params_digest({"op": "sim", "iterations": 16, "watch": watch})
    store.put(ir_hash, "sim", digest, artifact)
    loaded = store.get(ir_hash, "sim", digest)
    assert loaded == artifact
    assert loaded.measured_cycle_time == result.measured_cycle_time(watch)


def test_analysis_round_trip(store, motivating, optimal_ordering, ir_hash):
    from repro.perf import PerformanceEngine

    performance = PerformanceEngine().analyze(motivating, optimal_ordering)
    digest = params_digest({"op": "analysis"})
    store.put(ir_hash, "analysis", digest, performance)
    loaded = store.get(ir_hash, "analysis", digest)
    assert loaded == performance
    assert loaded.cycle_time == performance.cycle_time
    assert isinstance(loaded.cycle_time, Fraction)


def test_verify_round_trip(store, motivating, optimal_ordering, ir_hash):
    from repro.verify import check_deadlock

    verdict = check_deadlock(motivating, optimal_ordering)
    digest = params_digest({"op": "verify", "por": True})
    store.put(ir_hash, "verify", digest, verdict)
    loaded = store.get(ir_hash, "verify", digest)
    assert loaded == verdict
    assert loaded.verdict == verdict.verdict


def test_certificate_round_trip(
    store, motivating, optimal_ordering, ir_hash
):
    from repro.absint import analyze

    certificate = analyze(motivating, optimal_ordering).certificate
    assert certificate is not None, (
        "the optimal ordering of the motivating example is deadlock-free "
        "and the abstract interpreter is expected to certify it"
    )
    digest = params_digest({"op": "certificate"})
    store.put(ir_hash, "certificate", digest, certificate)
    loaded = store.get(ir_hash, "certificate", digest)
    assert loaded == certificate


def test_pareto_round_trip(store, ir_hash):
    frontier = (
        {
            "target_cycle_time": Fraction(40),
            "cycle_time": Fraction(27),
            "area": 52.0,
            "feasible": True,
            "measured_cycle_time": Fraction(27),
        },
        {
            "target_cycle_time": Fraction(30),
            "cycle_time": Fraction(27),
            "area": 64.0,
            "feasible": True,
            "measured_cycle_time": None,
        },
    )
    digest = params_digest({"op": "pareto", "targets": ("30", "40")})
    store.put(ir_hash, "pareto", digest, frontier)
    assert store.get(ir_hash, "pareto", digest) == frontier


_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.fractions(),
    st.text(max_size=20),
)
_payloads = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.tuples(inner, inner),
        st.dictionaries(st.text(max_size=8), inner, max_size=4),
    ),
    max_leaves=12,
)


@settings(max_examples=40, deadline=None)
@given(kind=st.sampled_from(ARTIFACT_KINDS), payload=_payloads)
def test_any_picklable_payload_round_trips(tmp_path_factory, kind, payload):
    store = ArtifactStore(tmp_path_factory.mktemp("hyp-store"))
    ir_hash = "12" * 32
    digest = params_digest({"payload": repr(payload)})
    store.put(ir_hash, kind, digest, payload)
    assert store.get(ir_hash, kind, digest) == payload
