"""Store robustness: corruption tolerance and concurrent writers.

The store's contract is *a defective entry is a miss, never a crash*:
truncated files, garbage bytes, schema-version skew, and key mismatches
all read as MISS (and the bad file is removed so the defect does not
recur).  Concurrent writers racing on one key are safe because writes go
through ``tmp + os.replace`` — readers only ever see a complete envelope.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.perf.cache import MISS
from repro.store import SCHEMA_VERSION, ArtifactStore, params_digest

IR_HASH = "ef" * 32
DIGEST = params_digest({"iterations": 8})


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def _write_raw(store: ArtifactStore, data: bytes) -> None:
    path = store.path_of(IR_HASH, "sim", DIGEST)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(data)


class TestCorruptionTolerance:
    def test_truncated_entry_is_a_miss(self, store):
        store.put(IR_HASH, "sim", DIGEST, {"payload": list(range(100))})
        path = store.path_of(IR_HASH, "sim", DIGEST)
        path.write_bytes(path.read_bytes()[:10])
        assert store.get(IR_HASH, "sim", DIGEST) is MISS
        assert not path.exists(), "corrupt entry should be removed"

    def test_garbage_bytes_are_a_miss(self, store):
        _write_raw(store, b"\x00\xffnot a pickle at all")
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_empty_file_is_a_miss(self, store):
        _write_raw(store, b"")
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_non_dict_pickle_is_a_miss(self, store):
        _write_raw(store, pickle.dumps([1, 2, 3]))
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_schema_version_mismatch_is_a_miss(self, store):
        envelope = {
            "schema": SCHEMA_VERSION + 1,
            "kind": "sim",
            "ir_hash": IR_HASH,
            "params_digest": DIGEST,
            "payload": "from the future",
        }
        _write_raw(store, pickle.dumps(envelope))
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_key_mismatch_inside_envelope_is_a_miss(self, store):
        # A file renamed (or hash-collided) into the wrong slot must not
        # serve the wrong artifact.
        envelope = {
            "schema": SCHEMA_VERSION,
            "kind": "sim",
            "ir_hash": "00" * 32,
            "params_digest": DIGEST,
            "payload": "wrong design",
        }
        _write_raw(store, pickle.dumps(envelope))
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_unpicklable_class_in_payload_is_a_miss(self, store):
        # Envelope referencing a class that does not exist on the reader's
        # side: pickle raises AttributeError, the store reports MISS.
        from fractions import Fraction

        good = {
            "schema": SCHEMA_VERSION,
            "kind": "sim",
            "ir_hash": IR_HASH,
            "params_digest": DIGEST,
            "payload": Fraction(1, 3),
        }
        blob = pickle.dumps(good).replace(b"fractions", b"nosuchmod")
        assert blob != pickle.dumps(good), "corruption must actually apply"
        _write_raw(store, blob)
        assert store.get(IR_HASH, "sim", DIGEST) is MISS

    def test_corruption_counts_as_miss_in_stats(self, store):
        _write_raw(store, b"garbage")
        store.get(IR_HASH, "sim", DIGEST)
        assert store.stats_dict()["sim"]["misses"] == 1

    def test_good_entries_survive_a_bad_neighbour(self, store):
        other = params_digest({"other": True})
        store.put(IR_HASH, "sim", other, "good")
        _write_raw(store, b"garbage")
        assert store.get(IR_HASH, "sim", DIGEST) is MISS
        assert store.get(IR_HASH, "sim", other) == "good"


def _racing_writer(root: str, worker: int, writes: int) -> None:
    store = ArtifactStore(root)
    for i in range(writes):
        store.put(IR_HASH, "sim", DIGEST, {"worker": worker, "write": i})


def _racing_reader(root: str, reads: int, out) -> None:
    store = ArtifactStore(root)
    bad = 0
    for _ in range(reads):
        value = store.get(IR_HASH, "sim", DIGEST)
        if value is not MISS and not (
            isinstance(value, dict) and "worker" in value
        ):
            bad += 1
    out.put(bad)


class TestConcurrentWriters:
    def test_racing_writers_never_corrupt_readers(self, tmp_path):
        root = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")
        out = ctx.Queue()
        writers = [
            ctx.Process(target=_racing_writer, args=(root, w, 40))
            for w in range(3)
        ]
        readers = [
            ctx.Process(target=_racing_reader, args=(root, 80, out))
            for _ in range(2)
        ]
        for p in writers + readers:
            p.start()
        for p in writers + readers:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert out.get(timeout=5) == 0
        assert out.get(timeout=5) == 0
        # Last writer wins; whichever it was, the surviving entry is a
        # complete envelope from one of the writers.
        store = ArtifactStore(root)
        final = store.get(IR_HASH, "sim", DIGEST)
        assert isinstance(final, dict) and final["worker"] in {0, 1, 2}
        assert store.count() == 1

    def test_no_tmp_debris_after_race(self, tmp_path):
        root = str(tmp_path / "store")
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_racing_writer, args=(root, w, 25))
            for w in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        debris = [p for p in ArtifactStore(root).root.rglob(".tmp-*")]
        assert debris == []
