"""Core ArtifactStore behaviour: keys, atomicity, generations, eviction."""

from __future__ import annotations

import pickle

import pytest

from repro.perf.cache import MISS
from repro.store import (
    ARTIFACT_KINDS,
    SCHEMA_VERSION,
    STORE_ENV_VAR,
    ArtifactStore,
    params_digest,
    store_from_env,
)

IR_HASH = "ab" * 32
OTHER_HASH = "cd" * 32


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


class TestKeys:
    def test_params_digest_is_order_insensitive(self):
        assert params_digest({"a": 1, "b": 2}) == params_digest({"b": 2, "a": 1})

    def test_params_digest_distinguishes_values(self):
        assert params_digest({"a": 1}) != params_digest({"a": 2})

    def test_params_digest_handles_non_json_values(self):
        from fractions import Fraction

        digest = params_digest({"ct": Fraction(1, 3), "pair": ("x", 1)})
        assert len(digest) == 64

    def test_invalid_kind_rejected(self, store):
        with pytest.raises(ValueError):
            store.get(IR_HASH, "Not A Kind", params_digest({}))

    def test_invalid_hash_rejected(self, store):
        with pytest.raises(ValueError):
            store.get("../../etc/passwd", "sim", params_digest({}))

    def test_entry_path_fans_out_by_hash_prefix(self, store):
        digest = params_digest({})
        path = store.path_of(IR_HASH, "sim", digest)
        assert path.parent.name == IR_HASH[:2]
        assert path.parent.parent.name == "sim"


class TestReadWrite:
    def test_missing_root_reads_as_empty(self, store):
        assert store.get(IR_HASH, "sim", params_digest({})) is MISS
        assert store.count() == 0

    def test_round_trip(self, store):
        digest = params_digest({"iterations": 8})
        store.put(IR_HASH, "sim", digest, {"answer": 42})
        assert store.get(IR_HASH, "sim", digest) == {"answer": 42}
        assert store.contains(IR_HASH, "sim", digest)

    def test_keys_are_independent(self, store):
        digest = params_digest({})
        store.put(IR_HASH, "sim", digest, "a")
        store.put(OTHER_HASH, "sim", digest, "b")
        store.put(IR_HASH, "analysis", digest, "c")
        assert store.get(IR_HASH, "sim", digest) == "a"
        assert store.get(OTHER_HASH, "sim", digest) == "b"
        assert store.get(IR_HASH, "analysis", digest) == "c"

    def test_overwrite_is_last_writer_wins(self, store):
        digest = params_digest({})
        store.put(IR_HASH, "sim", digest, "old")
        store.put(IR_HASH, "sim", digest, "new")
        assert store.get(IR_HASH, "sim", digest) == "new"
        assert store.count() == 1

    def test_no_tmp_files_left_behind(self, store):
        digest = params_digest({})
        store.put(IR_HASH, "sim", digest, "x")
        leftovers = [
            p for p in store.root.rglob(".tmp-*") if p.is_file()
        ]
        assert leftovers == []

    def test_stats_count_hits_misses_writes(self, store):
        digest = params_digest({})
        store.get(IR_HASH, "sim", digest)
        store.put(IR_HASH, "sim", digest, "x")
        store.get(IR_HASH, "sim", digest)
        stats = store.stats_dict()["sim"]
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["writes"] == 1
        assert "sim" in store.format_stats()


class TestGeneration:
    def test_fresh_store_is_generation_zero(self, store):
        assert store.generation() == 0

    def test_bump_increments(self, store):
        assert store.bump_generation() == 1
        assert store.bump_generation() == 2
        assert store.generation() == 2

    def test_clear_removes_entries_and_bumps(self, store):
        digest = params_digest({})
        for kind in ARTIFACT_KINDS:
            store.put(IR_HASH, kind, digest, kind)
        removed = store.clear()
        assert removed == len(ARTIFACT_KINDS)
        assert store.count() == 0
        assert store.generation() == 1

    def test_corrupt_generation_file_reads_as_zero(self, store):
        store.bump_generation()
        (store.root / "GENERATION").write_text("not a number")
        assert store.generation() == 0


class TestMaintenance:
    def test_prune_evicts_oldest_first(self, store):
        import os
        import time

        digests = []
        for i in range(5):
            digest = params_digest({"i": i})
            store.put(IR_HASH, "sim", digest, i)
            # mtime granularity can be coarse; force distinct stamps.
            stamp = time.time() - (5 - i)
            os.utime(store.path_of(IR_HASH, "sim", digest), (stamp, stamp))
            digests.append(digest)
        assert store.prune(2) == 3
        assert store.count() == 2
        assert store.get(IR_HASH, "sim", digests[-1]) == 4
        assert store.get(IR_HASH, "sim", digests[0]) is MISS

    def test_prune_same_mtime_is_deterministic(self, store):
        import os

        # Regression: two entries sharing one mtime used to make the
        # survivor filesystem-enumeration-dependent.  The (mtime, path)
        # sort key pins it: the lexicographically larger path survives.
        d1 = params_digest({"i": 1})
        d2 = params_digest({"i": 2})
        store.put(IR_HASH, "sim", d1, "one")
        store.put(IR_HASH, "sim", d2, "two")
        stamp = 1_000_000_000.0
        p1 = store.path_of(IR_HASH, "sim", d1)
        p2 = store.path_of(IR_HASH, "sim", d2)
        os.utime(p1, (stamp, stamp))
        os.utime(p2, (stamp, stamp))
        assert store.prune(1) == 1
        survivor, evicted = sorted([p1, p2], key=str)[::-1]
        assert survivor.exists()
        assert not evicted.exists()

    def test_prune_noop_under_limit(self, store):
        store.put(IR_HASH, "sim", params_digest({}), "x")
        assert store.prune(10) == 0
        assert store.count() == 1

    def test_prune_rejects_negative(self, store):
        with pytest.raises(ValueError):
            store.prune(-1)

    def test_entries_filtered_by_kind(self, store):
        digest = params_digest({})
        store.put(IR_HASH, "sim", digest, 1)
        store.put(IR_HASH, "analysis", digest, 2)
        assert store.count("sim") == 1
        assert store.count() == 2


class TestEnvDefault:
    def test_unset_env_gives_none(self):
        assert store_from_env({}) is None
        assert store_from_env({STORE_ENV_VAR: "  "}) is None

    def test_env_names_the_root(self, tmp_path):
        store = store_from_env({STORE_ENV_VAR: str(tmp_path / "s")})
        assert store is not None
        assert store.root == tmp_path / "s"


class TestEnvelope:
    def test_envelope_is_versioned(self, store):
        digest = params_digest({})
        store.put(IR_HASH, "sim", digest, "payload")
        envelope = pickle.loads(
            store.path_of(IR_HASH, "sim", digest).read_bytes()
        )
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["kind"] == "sim"
        assert envelope["ir_hash"] == IR_HASH
        assert envelope["payload"] == "payload"
