"""ILP substrate: model validation, all three backends, agreement."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InfeasibleError, ValidationError
from repro.ilp import (
    Choice,
    MultiChoiceProblem,
    Sense,
    branch_bound,
    knapsack,
    scipy_backend,
    solve,
)


def brute_force(problem):
    """Exhaustive reference solver."""
    best = None
    for combo in itertools.product(
        *[[c.name for c in g.choices] for g in problem.groups]
    ):
        selection = {g.name: c for g, c in zip(problem.groups, combo)}
        if not problem.is_feasible(selection):
            continue
        value = problem.evaluate(selection)
        if best is None or (
            value > best[0] if problem.maximize else value < best[0]
        ):
            best = (value, selection)
    return best


def knapsack_problem(budget=5):
    problem = MultiChoiceProblem(maximize=True)
    problem.add_group("p1", [
        Choice("slow", 2.0, {"w": 0}),
        Choice("fast", 5.0, {"w": 4}),
    ])
    problem.add_group("p2", [
        Choice("slow", 1.0, {"w": 0}),
        Choice("fast", 4.0, {"w": 3}),
    ])
    problem.add_constraint("w", "<=", budget)
    return problem


class TestModel:
    def test_empty_group_rejected(self):
        with pytest.raises(ValidationError):
            MultiChoiceProblem().add_group("g", [])

    def test_duplicate_group_rejected(self):
        p = MultiChoiceProblem()
        p.add_group("g", [Choice("a", 1.0)])
        with pytest.raises(ValidationError):
            p.add_group("g", [Choice("b", 1.0)])

    def test_duplicate_choice_rejected(self):
        with pytest.raises(ValidationError):
            MultiChoiceProblem().add_group(
                "g", [Choice("a", 1.0), Choice("a", 2.0)]
            )

    def test_duplicate_constraint_rejected(self):
        p = MultiChoiceProblem()
        p.add_constraint("w", "<=", 1)
        with pytest.raises(ValidationError):
            p.add_constraint("w", ">=", 0)

    def test_evaluate_and_feasible(self):
        p = knapsack_problem(budget=4)
        selection = {"p1": "fast", "p2": "slow"}
        assert p.evaluate(selection) == 6.0
        assert p.is_feasible(selection)
        assert not p.is_feasible({"p1": "fast", "p2": "fast"})

    def test_forbid_requires_full_coverage(self):
        p = knapsack_problem()
        with pytest.raises(ValidationError):
            p.forbid({"p1": "fast"})

    def test_forbidden_selection_infeasible(self):
        p = knapsack_problem(budget=4)
        p.forbid({"p1": "fast", "p2": "slow"})
        assert not p.is_feasible({"p1": "fast", "p2": "slow"})


class TestBranchBound:
    def test_simple_optimum(self):
        solution = branch_bound.solve(knapsack_problem(budget=4))
        assert solution.selection == {"p1": "fast", "p2": "slow"}
        assert solution.objective == 6.0

    def test_budget_allows_both(self):
        solution = branch_bound.solve(knapsack_problem(budget=7))
        assert solution.objective == 9.0

    def test_minimize(self):
        p = knapsack_problem(budget=7)
        p.maximize = False
        solution = branch_bound.solve(p)
        assert solution.objective == 3.0

    def test_infeasible(self):
        p = MultiChoiceProblem()
        p.add_group("g", [Choice("a", 1.0, {"w": 5})])
        p.add_constraint("w", "<=", 2)
        with pytest.raises(InfeasibleError):
            branch_bound.solve(p)

    def test_equality_constraint(self):
        p = MultiChoiceProblem()
        p.add_group("g1", [Choice("a", 1.0, {"w": 1}), Choice("b", 5.0, {"w": 2})])
        p.add_group("g2", [Choice("a", 1.0, {"w": 1}), Choice("b", 9.0, {"w": 2})])
        p.add_constraint("w", "==", 3)
        solution = branch_bound.solve(p)
        assert solution.objective == 10.0

    def test_ge_constraint(self):
        p = MultiChoiceProblem(maximize=False)
        p.add_group("g", [Choice("cheap", 1.0, {"q": 0}),
                          Choice("good", 3.0, {"q": 2})])
        p.add_constraint("q", ">=", 1)
        assert branch_bound.solve(p).selection["g"] == "good"

    def test_no_good_cut_forces_second_best(self):
        p = knapsack_problem(budget=7)
        best = branch_bound.solve(p)
        p.forbid(best.selection)
        second = branch_bound.solve(p)
        assert second.selection != best.selection
        assert second.objective <= best.objective

    def test_all_cuts_infeasible(self):
        p = MultiChoiceProblem()
        p.add_group("g", [Choice("a", 1.0), Choice("b", 2.0)])
        p.forbid({"g": "a"})
        p.forbid({"g": "b"})
        with pytest.raises(InfeasibleError):
            branch_bound.solve(p)


class TestKnapsackDP:
    def test_applicable(self):
        assert knapsack.applicable(knapsack_problem())

    def test_not_applicable_cases(self):
        p = knapsack_problem()
        p.add_constraint("z", "<=", 1)
        assert not knapsack.applicable(p)

        q = MultiChoiceProblem()
        q.add_group("g", [Choice("a", 1.0, {"w": 0.5})])
        q.add_constraint("w", "<=", 3)
        assert not knapsack.applicable(q)  # fractional weight

        r = knapsack_problem()
        r.forbid({"p1": "slow", "p2": "slow"})
        assert not knapsack.applicable(r)

    def test_matches_branch_bound(self):
        for budget in range(0, 9):
            p = knapsack_problem(budget=budget)
            assert knapsack.solve(p).objective == \
                branch_bound.solve(p).objective

    def test_rejects_inapplicable(self):
        p = knapsack_problem()
        p.add_constraint("z", ">=", 0)
        with pytest.raises(ValidationError):
            knapsack.solve(p)


@pytest.mark.skipif(not scipy_backend.available(), reason="scipy missing")
class TestScipyBackend:
    def test_matches_branch_bound(self):
        p = knapsack_problem(budget=4)
        assert scipy_backend.solve(p).objective == 6.0

    def test_no_good_cuts(self):
        p = knapsack_problem(budget=7)
        best = scipy_backend.solve(p)
        p.forbid(best.selection)
        second = scipy_backend.solve(p)
        assert second.selection != best.selection

    def test_infeasible(self):
        p = MultiChoiceProblem()
        p.add_group("g", [Choice("a", 1.0, {"w": 5})])
        p.add_constraint("w", "<=", 2)
        with pytest.raises(InfeasibleError):
            scipy_backend.solve(p)


class TestDispatch:
    def test_backend_names(self):
        p = knapsack_problem()
        assert solve(p, "branch_bound").objective == \
            solve(p, "knapsack").objective
        with pytest.raises(ValueError):
            solve(p, "gurobi")


@st.composite
def random_problems(draw):
    problem = MultiChoiceProblem(maximize=draw(st.booleans()))
    n_groups = draw(st.integers(1, 4))
    for g in range(n_groups):
        n_choices = draw(st.integers(1, 4))
        problem.add_group(
            f"g{g}",
            [
                Choice(
                    f"c{i}",
                    draw(st.integers(-10, 10)),
                    {"w": draw(st.integers(0, 6))},
                )
                for i in range(n_choices)
            ],
        )
    problem.add_constraint("w", "<=", draw(st.integers(0, 12)))
    return problem


class TestAgreementProperties:
    @settings(max_examples=120, deadline=None)
    @given(problem=random_problems())
    def test_branch_bound_equals_brute_force(self, problem):
        reference = brute_force(problem)
        try:
            solution = branch_bound.solve(problem)
        except InfeasibleError:
            assert reference is None
            return
        assert reference is not None
        assert solution.objective == pytest.approx(reference[0])
        assert problem.is_feasible(solution.selection)

    @settings(max_examples=60, deadline=None)
    @given(problem=random_problems())
    def test_knapsack_dp_agrees_when_applicable(self, problem):
        if not knapsack.applicable(problem):
            return
        reference = brute_force(problem)
        try:
            solution = knapsack.solve(problem)
        except InfeasibleError:
            assert reference is None
            return
        assert solution.objective == pytest.approx(reference[0])

    @settings(max_examples=40, deadline=None)
    @given(problem=random_problems())
    def test_scipy_agrees(self, problem):
        if not scipy_backend.available():
            return
        reference = brute_force(problem)
        try:
            solution = scipy_backend.solve(problem)
        except InfeasibleError:
            assert reference is None
            return
        assert reference is not None
        assert solution.objective == pytest.approx(reference[0])
