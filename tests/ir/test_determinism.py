"""Determinism properties of :func:`repro.ir.lower`.

The structural hash is the shared cache key of every IR consumer, so it
must be byte-stable across processes, across repeated lowerings, and —
the property dict-based renderings historically get wrong — across the
order in which a semantically identical system was constructed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChannelOrdering
from repro.core.system import SystemGraph
from repro.ir import clear_lowering_cache, lower, structural_hash_of
from tests.strategies import layered_systems

#: Golden digest of the motivating example under declaration order.  The
#: rendering is versioned (``ir:v1``); an intentional schema change must
#: bump the version tag and this digest together, an accidental one fails
#: here.
MOTIVATING_SHA256 = (
    "e58609bdcd544c1b07ddbd91a9f196f4e35a20347339da124c6079dc4281dcdf"
)


def _shuffled_copy(system: SystemGraph, perm_seed: int) -> SystemGraph:
    """The same design, declared in a different order."""
    import random

    rng = random.Random(perm_seed)
    processes = list(system.processes)
    channels = list(system.channels)
    rng.shuffle(processes)
    rng.shuffle(channels)
    clone = SystemGraph(system.name)
    for process in processes:
        clone.add_process(process)
    for channel in channels:
        clone.add_channel(channel)
    return clone


def test_golden_hash_of_the_motivating_example(motivating):
    assert (
        lower(motivating).structural_hash == MOTIVATING_SHA256
    )


@settings(max_examples=40, deadline=None)
@given(system=layered_systems())
def test_repeated_lowering_is_byte_identical(system):
    ordering = ChannelOrdering.declaration_order(system)
    first = lower(system, ordering)
    clear_lowering_cache()
    second = lower(system, ordering)
    assert first.structural_hash == second.structural_hash
    assert first == second


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(), perm_seed=st.integers(0, 1000))
def test_hash_is_declaration_order_independent(system, perm_seed):
    """Same content, different insertion order => same digest.

    The *tables* may differ (ids follow each system's own declaration
    order — that is what keeps TMG construction bit-identical for its
    caller), but the content address must not.
    """
    ordering = ChannelOrdering.declaration_order(system)
    shuffled = _shuffled_copy(system, perm_seed)
    assert lower(system, ordering).structural_hash == (
        lower(shuffled, ordering).structural_hash
    )
    assert structural_hash_of(system, ordering) == (
        structural_hash_of(shuffled, ordering)
    )


@settings(max_examples=40, deadline=None)
@given(system=layered_systems(), scale=st.integers(2, 7))
def test_hash_ignores_process_latencies(system, scale):
    """One IR serves every DSE latency selection."""
    ordering = ChannelOrdering.declaration_order(system)
    scaled = system.with_process_latencies(
        {p.name: p.latency * scale for p in system.processes}
    )
    assert lower(system, ordering).structural_hash == (
        lower(scaled, ordering).structural_hash
    )


@settings(max_examples=40, deadline=None)
@given(system=layered_systems())
def test_memo_hit_preserves_declaration_order_tables(system):
    """A cache hit must return tables matching the caller's ids."""
    ordering = ChannelOrdering.declaration_order(system)
    clear_lowering_cache()
    ir = lower(system, ordering)
    again = lower(system, ordering)
    assert again is ir
    assert again.processes == system.process_names
    assert again.channels == system.channel_names
