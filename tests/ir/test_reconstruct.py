"""``repro.ir.reconstruct`` inverts ``lower``.

The worker protocol ships a pickled :class:`~repro.ir.LoweredIR` and
rebuilds the system and ordering on the other side; that only works if
reconstruction is a true inverse up to structural hash — which these
tests pin on the seed designs and on Hypothesis-generated systems.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.core import ChannelOrdering
from repro.ir import lower, ordering_from_ir, system_from_ir
from tests.strategies import layered_systems


def _round_trip_hash(system, ordering):
    ir = lower(system, ordering)
    rebuilt_system = system_from_ir(ir, system.process_latencies())
    rebuilt_ordering = ordering_from_ir(ir)
    return ir, lower(rebuilt_system, rebuilt_ordering)


class TestSeedDesigns:
    def test_motivating_hash_round_trips(self, motivating, optimal_ordering):
        ir, again = _round_trip_hash(motivating, optimal_ordering)
        assert again.structural_hash == ir.structural_hash

    def test_declaration_ordering_round_trips(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        ir, again = _round_trip_hash(motivating, ordering)
        assert again.structural_hash == ir.structural_hash

    def test_tiny_pipeline_round_trips(self, tiny_pipeline):
        ordering = ChannelOrdering.declaration_order(tiny_pipeline)
        ir, again = _round_trip_hash(tiny_pipeline, ordering)
        assert again.structural_hash == ir.structural_hash

    def test_feedback_tokens_survive(self, feedback_system):
        ordering = ChannelOrdering.declaration_order(feedback_system)
        ir = lower(feedback_system, ordering)
        rebuilt = system_from_ir(ir, feedback_system.process_latencies())
        original = {c.name: c.initial_tokens for c in feedback_system.channels}
        again = {c.name: c.initial_tokens for c in rebuilt.channels}
        assert again == original

    def test_rebuilt_system_preserves_structure(
        self, motivating, optimal_ordering
    ):
        ir = lower(motivating, optimal_ordering)
        rebuilt = system_from_ir(ir, motivating.process_latencies())
        assert rebuilt.process_names == motivating.process_names
        assert [c.name for c in rebuilt.channels] == [
            c.name for c in motivating.channels
        ]
        assert {c.name: c.capacity for c in rebuilt.channels} == {
            c.name: c.capacity for c in motivating.channels
        }

    def test_rebuilt_ordering_matches(self, motivating, optimal_ordering):
        ir = lower(motivating, optimal_ordering)
        rebuilt = ordering_from_ir(ir)
        assert rebuilt.gets == optimal_ordering.gets
        assert rebuilt.puts == optimal_ordering.puts

    def test_default_latencies_are_one(self, motivating, optimal_ordering):
        ir = lower(motivating, optimal_ordering)
        rebuilt = system_from_ir(ir)
        assert all(p.latency == 1 for p in rebuilt.processes)

    def test_simulation_agrees_after_round_trip(
        self, motivating, optimal_ordering
    ):
        from repro.sim import Simulator

        ir = lower(motivating, optimal_ordering)
        rebuilt_system = system_from_ir(ir, motivating.process_latencies())
        rebuilt_ordering = ordering_from_ir(ir)
        watch = motivating.sinks()[0].name
        original = Simulator(motivating, optimal_ordering).run(
            iterations=16, watch=watch
        )
        again = Simulator(rebuilt_system, rebuilt_ordering).run(
            iterations=16, watch=watch
        )
        assert again == original


class TestGeneratedSystems:
    @settings(max_examples=25, deadline=None)
    @given(system=layered_systems())
    def test_hash_round_trips_on_generated_systems(self, system):
        ordering = ChannelOrdering.declaration_order(system)
        ir, again = _round_trip_hash(system, ordering)
        assert again.structural_hash == ir.structural_hash
