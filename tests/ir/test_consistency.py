"""The four IR consumers agree with the pre-IR interpretations.

The refactor's contract is bit-identity: lowering first and executing
the arrays must change *nothing* observable.  The simulator is checked
against the frozen reference engine, the IR event-graph translator
against the TMG route, and the verifier's chains against the ordering
projection they replaced.
"""

import glob

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChannelOrdering, load_system
from repro.errors import SimulationDeadlock
from repro.ir import lower
from repro.model.build import build_tmg
from repro.ordering import channel_ordering, random_ordering
from repro.perf.fingerprint import effective_latencies
from repro.sim import ReferenceSimulator, Simulator
from repro.tmg.event_graph import build_event_graph, event_graph_from_ir
from repro.verify.semantics import TransitionSystem
from tests.strategies import layered_systems

SEED_SYSTEMS = sorted(
    path
    for path in glob.glob("examples/designs/*.json")
    if not path.endswith(".ordering.json")
)


def _orderings(system):
    declaration = ChannelOrdering.declaration_order(system)
    return [declaration, channel_ordering(system, initial_ordering=declaration)]


def _run(simulator_cls, system, ordering, iterations):
    try:
        return simulator_cls(system, ordering).run(iterations=iterations)
    except SimulationDeadlock as deadlock:
        return ("deadlock", deadlock.cycle, deadlock.waiting)


@pytest.mark.parametrize("path", SEED_SYSTEMS)
def test_simulator_matches_reference_on_seed_examples(path):
    system = load_system(path)
    for ordering in _orderings(system):
        expected = _run(ReferenceSimulator, system, ordering, iterations=40)
        actual = _run(Simulator, system, ordering, iterations=40)
        assert actual == expected


@pytest.mark.parametrize("path", SEED_SYSTEMS)
def test_traces_match_reference_on_seed_examples(path):
    system = load_system(path)
    ordering = ChannelOrdering.declaration_order(system)
    expected = ReferenceSimulator(system, ordering, record_trace=True).run(
        iterations=15
    )
    actual = Simulator(system, ordering, record_trace=True).run(iterations=15)
    assert actual.trace == expected.trace
    assert actual == expected


@settings(max_examples=30, deadline=None)
@given(system=layered_systems(), seed=st.integers(0, 25))
def test_simulator_matches_reference_on_random_systems(system, seed):
    ordering = random_ordering(system, seed=seed)
    expected = _run(ReferenceSimulator, system, ordering, iterations=30)
    actual = _run(Simulator, system, ordering, iterations=30)
    assert actual == expected


@pytest.mark.parametrize("path", SEED_SYSTEMS)
def test_event_graph_from_ir_matches_tmg_route(path):
    system = load_system(path)
    for ordering in _orderings(system):
        ir = lower(system, ordering)
        latencies = effective_latencies(system, None)
        direct = build_event_graph(build_tmg(system, ordering).tmg)
        translated = event_graph_from_ir(ir, latencies)
        assert translated.nodes == direct.nodes
        assert translated.succ == direct.succ


@settings(max_examples=30, deadline=None)
@given(system=layered_systems())
def test_event_graph_from_ir_matches_tmg_route_on_random_systems(system):
    ordering = ChannelOrdering.declaration_order(system)
    ir = lower(system, ordering)
    latencies = effective_latencies(system, None)
    direct = build_event_graph(build_tmg(system, ordering).tmg)
    translated = event_graph_from_ir(ir, latencies)
    assert translated.nodes == direct.nodes
    assert translated.succ == direct.succ


@settings(max_examples=30, deadline=None)
@given(system=layered_systems(), seed=st.integers(0, 25))
def test_verifier_chains_match_the_ordering_projection(system, seed):
    """The verifier's IR-decoded chains equal the statements_of view."""
    ordering = random_ordering(system, seed=seed)
    ts = TransitionSystem(system, ordering)
    for process in system.process_names:
        full = ordering.statements_of(process)
        comm = [
            (kind, channel, i)
            for i, (kind, channel) in enumerate(full)
            if kind in ("get", "put")
        ]
        if not comm:
            assert process not in ts.chains
            continue
        assert [
            (s.kind, s.channel, s.chain_index) for s in ts.chains[process]
        ] == comm
        assert ts.chain_totals[process] == len(full)


def test_simulator_exposes_its_ir(motivating):
    simulator = Simulator(motivating)
    assert simulator.ir is lower(motivating)
    assert simulator.ir.structural_hash == (
        TransitionSystem(motivating).ir.structural_hash
    )
