"""Schema and memoization tests of the lowered core IR."""

import pickle

import pytest

from repro.core import ChannelOrdering, SystemBuilder
from repro.core.system import ProcessKind
from repro.errors import ValidationError
from repro.ir import (
    KIND_SINK,
    KIND_SOURCE,
    KIND_WORKER,
    OP_COMPUTE,
    OP_GET,
    OP_PUT,
    clear_lowering_cache,
    kind_code,
    lower,
    lowering_cache_info,
    structural_hash_of,
)


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_lowering_cache()
    yield
    clear_lowering_cache()


class TestTables:
    def test_ids_follow_declaration_order(self, motivating):
        ir = lower(motivating)
        assert ir.processes == motivating.process_names
        assert ir.channels == motivating.channel_names
        assert ir.n_processes == len(motivating.process_names)
        assert ir.n_channels == len(motivating.channel_names)
        for pid, name in enumerate(ir.processes):
            assert ir.pid(name) == pid
        for cid, name in enumerate(ir.channels):
            assert ir.cid(name) == cid

    def test_channel_tables_match_object_model(self, feedback_system):
        ir = lower(feedback_system)
        for cid, name in enumerate(ir.channels):
            channel = feedback_system.channel(name)
            assert ir.processes[ir.producers[cid]] == channel.producer
            assert ir.processes[ir.consumers[cid]] == channel.consumer
            assert ir.channel_latencies[cid] == channel.latency
            assert ir.capacities[cid] == channel.capacity
            assert ir.initial_tokens[cid] == channel.initial_tokens
            assert ir.buffered[cid] == channel.is_buffered
            assert ir.effective_capacities[cid] == channel.effective_capacity

    def test_process_kinds(self, motivating):
        ir = lower(motivating)
        for pid, process in enumerate(motivating.processes):
            assert ir.process_kinds[pid] == kind_code(process.kind)
        assert kind_code(ProcessKind.WORKER) == KIND_WORKER
        assert kind_code(ProcessKind.SOURCE) == KIND_SOURCE
        assert kind_code(ProcessKind.SINK) == KIND_SINK

    def test_programs_decode_to_statement_chains(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        ir = lower(motivating, ordering)
        for pid, name in enumerate(ir.processes):
            assert (
                tuple(ir.statements_of(pid))
                == ordering.statements_of(name)
            )
            assert ir.program_length(pid) == len(ordering.statements_of(name))

    def test_op_args_are_dense_ids(self, motivating):
        ir = lower(motivating)
        for pid in range(ir.n_processes):
            for op, arg in zip(ir.op_kinds[pid], ir.op_args[pid]):
                if op == OP_COMPUTE:
                    assert arg == pid
                else:
                    assert op in (OP_GET, OP_PUT)
                    assert 0 <= arg < ir.n_channels

    def test_comm_indices_skip_exactly_the_compute(self, motivating):
        ir = lower(motivating)
        for pid in range(ir.n_processes):
            comm = ir.comm_indices[pid]
            all_indices = set(range(ir.program_length(pid)))
            computes = {
                i
                for i, op in enumerate(ir.op_kinds[pid])
                if op == OP_COMPUTE
            }
            assert set(comm) == all_indices - computes
            assert list(comm) == sorted(comm)

    def test_first_marked_rule(self, motivating):
        # First get; sources (no gets) their first put; degenerate
        # processes the compute.
        ir = lower(motivating)
        for pid in range(ir.n_processes):
            ops = ir.op_kinds[pid]
            if OP_GET in ops:
                assert ops[ir.first_marked[pid]] == OP_GET
                assert ir.first_marked[pid] == 0
            elif OP_PUT in ops:
                assert ops[ir.first_marked[pid]] == OP_PUT
            else:
                assert ops[ir.first_marked[pid]] == OP_COMPUTE

    def test_total_statements(self, tiny_pipeline):
        ir = lower(tiny_pipeline)
        # Each process: gets + 1 compute + puts; 3 channels -> 6 endpoint
        # statements + 4 computes.
        assert ir.total_statements() == 10

    def test_repr_carries_hash_prefix(self, tiny_pipeline):
        ir = lower(tiny_pipeline)
        assert ir.structural_hash[:12] in repr(ir)

    def test_roundtrips_through_pickle(self, motivating):
        ir = lower(motivating)
        clone = pickle.loads(pickle.dumps(ir))
        assert clone == ir
        assert clone.pid(ir.processes[-1]) == ir.n_processes - 1
        assert clone.cid(ir.channels[-1]) == ir.n_channels - 1


class TestMemo:
    def test_repeated_lowering_returns_the_same_object(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        assert lower(motivating, ordering) is lower(motivating, ordering)

    def test_default_and_explicit_declaration_order_share_one_entry(
        self, motivating
    ):
        first = lower(motivating)
        second = lower(
            motivating, ChannelOrdering.declaration_order(motivating)
        )
        assert first is second
        assert lowering_cache_info()[0] == 1

    def test_clear_forces_recompute(self, motivating):
        first = lower(motivating)
        clear_lowering_cache()
        second = lower(motivating)
        assert first is not second
        assert first == second
        assert first.structural_hash == second.structural_hash

    def test_invalid_ordering_raises(self, motivating):
        bad = ChannelOrdering(gets={"P6": ("d", "e")}, puts={})
        with pytest.raises(ValidationError):
            lower(motivating, bad)

    def test_distinct_orderings_get_distinct_entries(self, motivating):
        declaration = ChannelOrdering.declaration_order(motivating)
        swapped = ChannelOrdering(
            gets={**declaration.gets, "P6": ("e", "d", "g")},
            puts=dict(declaration.puts),
        )
        a = lower(motivating, declaration)
        b = lower(motivating, swapped)
        assert a is not b
        assert a.structural_hash != b.structural_hash
        assert lowering_cache_info()[0] == 2


class TestStructuralHash:
    def test_matches_standalone_hash(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        assert (
            lower(motivating, ordering).structural_hash
            == structural_hash_of(motivating, ordering)
        )

    def test_process_latency_is_not_structural(self):
        def build(latency):
            return (
                SystemBuilder("lat")
                .source("src", latency=1)
                .process("A", latency=latency)
                .sink("snk", latency=1)
                .channel("i", "src", "A")
                .channel("o", "A", "snk")
                .build()
            )

        assert (
            lower(build(3)).structural_hash == lower(build(9)).structural_hash
        )

    def test_channel_latency_is_structural(self):
        def build(latency):
            return (
                SystemBuilder("lat")
                .source("src", latency=1)
                .process("A", latency=2)
                .sink("snk", latency=1)
                .channel("i", "src", "A", latency=latency)
                .channel("o", "A", "snk")
                .build()
            )

        assert (
            lower(build(1)).structural_hash != lower(build(4)).structural_hash
        )

    def test_capacity_and_tokens_are_structural(self):
        def build(capacity):
            return (
                SystemBuilder("cap")
                .source("src", latency=1)
                .process("A", latency=2)
                .sink("snk", latency=1)
                .channel("i", "src", "A", capacity=capacity)
                .channel("o", "A", "snk")
                .build()
            )

        assert (
            lower(build(0)).structural_hash != lower(build(2)).structural_hash
        )
