"""Shared fixtures: the paper's motivating example and small systems."""

from __future__ import annotations

import pytest

from repro.core import (
    SystemBuilder,
    motivating_deadlock_ordering,
    motivating_example,
    motivating_optimal_ordering,
    motivating_suboptimal_ordering,
)


@pytest.fixture(scope="session")
def motivating():
    """The Fig. 2 / Fig. 4 system with reconstructed latencies."""
    return motivating_example()


@pytest.fixture(scope="session")
def deadlock_ordering(motivating):
    return motivating_deadlock_ordering(motivating)


@pytest.fixture(scope="session")
def suboptimal_ordering(motivating):
    return motivating_suboptimal_ordering(motivating)


@pytest.fixture(scope="session")
def optimal_ordering(motivating):
    return motivating_optimal_ordering(motivating)


@pytest.fixture()
def tiny_pipeline():
    """src -> A -> B -> snk with small latencies."""
    return (
        SystemBuilder("tiny")
        .source("src", latency=1)
        .process("A", latency=3)
        .process("B", latency=2)
        .sink("snk", latency=1)
        .channel("i", "src", "A", latency=1)
        .channel("x", "A", "B", latency=2)
        .channel("o", "B", "snk", latency=1)
        .build()
    )


@pytest.fixture()
def feedback_system():
    """A two-process loop kept live by one pre-loaded feedback channel."""
    return (
        SystemBuilder("fb")
        .source("src", latency=1)
        .process("A", latency=3)
        .process("B", latency=2)
        .sink("snk", latency=1)
        .channel("i", "src", "A", latency=1)
        .channel("x", "A", "B", latency=1)
        .channel("y", "B", "A", latency=2, initial_tokens=1)
        .channel("o", "B", "snk", latency=1)
        .build()
    )
