"""``marked_places`` must mirror the TMG builder's place set exactly.

The certificate checker never materialises a ``TimedMarkedGraph`` — it
walks :class:`~repro.absint.structure.MarkedPlace` tuples derived
straight from the IR tables.  The soundness of everything downstream
(token invariants, the Commoner ranking, min-token cycle bounds) rests
on those tuples matching :func:`repro.model.build_tmg`'s places
field-for-field, so this suite pins the two constructions against each
other on the shipped examples and on random layered systems.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.absint import marked_places
from repro.core import ChannelOrdering
from repro.ir import lower
from repro.model import build_tmg
from tests.strategies import layered_systems


def _tmg_places(system, ordering):
    model = build_tmg(system, ordering)
    return {(p.name, p.source, p.target, p.tokens) for p in model.tmg.places}


def _absint_places(system, ordering):
    ir = lower(system, ordering)
    return {(p.name, p.source, p.target, p.tokens) for p in marked_places(ir)}


class TestMirrorsBuildTmg:
    def test_motivating_declaration_order(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        assert _absint_places(motivating, ordering) == _tmg_places(
            motivating, ordering
        )

    def test_motivating_deadlock_ordering(self, motivating, deadlock_ordering):
        assert _absint_places(motivating, deadlock_ordering) == _tmg_places(
            motivating, deadlock_ordering
        )

    def test_buffered_split_places(self, feedback_system):
        ordering = ChannelOrdering.declaration_order(feedback_system)
        places = _absint_places(feedback_system, ordering)
        assert places == _tmg_places(feedback_system, ordering)
        names = {name for name, *_ in places}
        # The pre-loaded feedback channel uses the split (data/credit)
        # buffered model.
        assert "y/data" in names
        assert "y/credit" in names

    @settings(max_examples=50, deadline=None)
    @given(system=layered_systems())
    def test_random_layered_systems(self, system):
        ordering = ChannelOrdering.declaration_order(system)
        assert _absint_places(system, ordering) == _tmg_places(
            system, ordering
        )


class TestTokenAccounting:
    def test_data_plus_credit_is_effective_capacity(self, feedback_system):
        ordering = ChannelOrdering.declaration_order(feedback_system)
        ir = lower(feedback_system, ordering)
        by_name = {p.name: p for p in marked_places(ir)}
        for cid, channel in enumerate(ir.channels):
            if not ir.buffered[cid]:
                continue
            data = by_name[f"{channel}/data"]
            credit = by_name[f"{channel}/credit"]
            assert data.tokens == ir.initial_tokens[cid]
            assert (
                data.tokens + credit.tokens == ir.effective_capacities[cid]
            )

    def test_each_process_chain_carries_one_token(self, motivating):
        ordering = ChannelOrdering.declaration_order(motivating)
        ir = lower(motivating, ordering)
        tokens_by_process: dict[str, int] = {}
        for place in marked_places(ir):
            owner, _, rest = place.name.partition("/")
            if not rest or rest in ("data", "credit"):
                continue
            tokens_by_process[owner] = (
                tokens_by_process.get(owner, 0) + place.tokens
            )
        assert tokens_by_process
        assert all(total == 1 for total in tokens_by_process.values())
