"""Issue/check lifecycle of the deadlock-freedom certificate."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.absint import (
    CERTIFICATE_VERSION,
    METHOD_SIPHON_RANKING,
    CertificateError,
    DeadlockFreedomCertificate,
    check_certificate,
    find_token_free_cycle,
    issue_certificate,
)
from repro.ir import lower


@pytest.fixture()
def live_ir(motivating, optimal_ordering):
    return lower(motivating, optimal_ordering)


@pytest.fixture()
def dead_ir(motivating, deadlock_ordering):
    return lower(motivating, deadlock_ordering)


class TestIssue:
    def test_live_configuration_is_certified(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        assert certificate.ir_hash == live_ir.structural_hash
        assert certificate.system_name == live_ir.system_name
        assert certificate.method == METHOD_SIPHON_RANKING
        assert certificate.version == CERTIFICATE_VERSION

    def test_check_accepts_a_fresh_certificate(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        check_certificate(live_ir, certificate)  # must not raise

    def test_deadlocked_configuration_is_refused(self, dead_ir):
        assert issue_certificate(dead_ir) is None

    def test_exactly_one_of_certificate_and_cycle(self, live_ir, dead_ir):
        assert find_token_free_cycle(live_ir) is None
        cycle = find_token_free_cycle(dead_ir)
        assert cycle is not None and len(cycle) >= 2

    def test_ranks_are_deterministic(self, live_ir):
        first = issue_certificate(live_ir)
        second = issue_certificate(live_ir)
        assert first == second


class TestCheckRejects:
    def test_certificate_for_a_different_ir(
        self, live_ir, motivating, suboptimal_ordering
    ):
        other = lower(motivating, suboptimal_ordering)
        certificate = issue_certificate(other)
        assert certificate is not None
        with pytest.raises(CertificateError, match="issued for IR"):
            check_certificate(live_ir, certificate)

    def test_tampered_ranking(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        top = len(certificate.ranks) - 1
        inverted = dataclasses.replace(
            certificate,
            ranks=tuple(
                (name, top - rank) for name, rank in certificate.ranks
            ),
        )
        with pytest.raises(CertificateError, match="not a valid ranking"):
            check_certificate(live_ir, inverted)

    def test_missing_transition_rank(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        truncated = dataclasses.replace(
            certificate, ranks=certificate.ranks[1:]
        )
        with pytest.raises(CertificateError, match="assigns no rank"):
            check_certificate(live_ir, truncated)

    def test_unknown_version(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        stale = dataclasses.replace(certificate, version="cert:v0")
        with pytest.raises(CertificateError, match="version"):
            check_certificate(live_ir, stale)

    def test_unknown_method(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        bogus = dataclasses.replace(certificate, method="oracle")
        with pytest.raises(CertificateError, match="method"):
            check_certificate(live_ir, bogus)


class TestSerialization:
    def test_roundtrip_preserves_validity(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        again = DeadlockFreedomCertificate.from_dict(certificate.to_dict())
        assert again == certificate
        check_certificate(live_ir, again)

    def test_document_is_json_serializable(self, live_ir):
        certificate = issue_certificate(live_ir)
        assert certificate is not None
        document = json.loads(json.dumps(certificate.to_dict()))
        check_certificate(
            live_ir, DeadlockFreedomCertificate.from_dict(document)
        )

    def test_malformed_document_is_rejected(self):
        with pytest.raises(CertificateError, match="malformed"):
            DeadlockFreedomCertificate.from_dict({"version": "cert:v1"})

    def test_non_object_ranks_are_rejected(self):
        with pytest.raises(CertificateError, match="malformed"):
            DeadlockFreedomCertificate.from_dict(
                {
                    "ir_hash": "x",
                    "system": "s",
                    "method": METHOD_SIPHON_RANKING,
                    "version": CERTIFICATE_VERSION,
                    "ranks": ["not", "a", "mapping"],
                }
            )
