"""Text and JSON renderings of the analysis result."""

from __future__ import annotations

import json

from repro.absint import analyze, format_result, result_to_dict


class TestFormatResult:
    def test_certified_report(self, motivating, optimal_ordering):
        text = format_result(analyze(motivating, optimal_ordering))
        assert "static analysis of" in text
        assert "deadlock-freedom: CERTIFIED" in text
        assert "siphon-ranking" in text

    def test_refuted_report_names_the_cycle(
        self, motivating, deadlock_ordering
    ):
        result = analyze(motivating, deadlock_ordering)
        text = format_result(result)
        assert "deadlock-freedom: REFUTED" in text
        assert result.token_free_cycle is not None
        assert result.token_free_cycle[0] in text
        assert "dead channels:" in text

    def test_process_cycle_invariants_are_condensed(
        self, motivating, optimal_ordering
    ):
        text = format_result(analyze(motivating, optimal_ordering))
        assert "[process-cycle]" in text
        # One summary line, not one line per process chain.
        assert text.count("[process-cycle]") == 1

    def test_rendering_is_deterministic(self, motivating, optimal_ordering):
        first = format_result(analyze(motivating, optimal_ordering))
        second = format_result(analyze(motivating, optimal_ordering))
        assert first == second


class TestResultToDict:
    def test_document_is_json_serializable(
        self, motivating, optimal_ordering
    ):
        document = result_to_dict(analyze(motivating, optimal_ordering))
        restored = json.loads(json.dumps(document, sort_keys=True))
        assert restored["system"] == motivating.name
        assert restored["deadlock_free"] is True
        assert restored["certificate"]["method"] == "siphon-ranking"
        assert restored["token_free_cycle"] is None

    def test_refuted_document(self, motivating, deadlock_ordering):
        document = result_to_dict(analyze(motivating, deadlock_ordering))
        assert document["deadlock_free"] is False
        assert document["certificate"] is None
        assert document["token_free_cycle"]
        assert document["dead_channels"]
