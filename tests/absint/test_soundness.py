"""The soundness contract, property-tested against concrete semantics.

Three properties over random layered systems:

1. **Occupancy bounds over-approximate every trace.**  Along any timed
   simulation, the per-channel occupancy stays inside the static
   ``[lo, hi]`` interval.  Tie-breaks at equal timestamps are resolved
   *against* the property being checked (gets before puts when checking
   ``hi``, puts before gets when checking ``lo``), so a failure is a
   genuine soundness bug, never a trace-ordering artifact.
2. **Certificates agree with exhaustive search** — in both directions
   (on marked graphs Commoner's condition is exact, not just sound).
3. **Statically-dead channels never fire concretely.**

Together the suite runs well over 200 random systems, satisfying the
coverage floor in ISSUE.md.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.absint import analyze
from repro.core import ChannelOrdering
from repro.errors import SimulationDeadlock
from repro.obs import MemorySink
from repro.sim import Simulator
from repro.verify import Verdict, check_deadlock
from tests.strategies import layered_systems

ITERATIONS = 8


def _transfer_events(system, ordering, iterations=ITERATIONS):
    """Time-stamped put/get completions of one simulation (or its prefix
    up to a deadlock)."""
    sink = MemorySink()
    simulator = Simulator(system, ordering, sinks=[sink])
    try:
        simulator.run(iterations=iterations)
    except SimulationDeadlock:
        pass
    return [
        event for event in sink.events() if event.kind in ("put", "get")
    ]


def _occupancy_extremes(system, events, puts_first):
    """Per-channel (min, max) occupancy along the trace.

    ``puts_first`` resolves simultaneous completions: puts before gets
    maximises the transient occupancy (for checking ``lo`` soundly),
    gets before puts minimises it (for checking ``hi`` soundly).
    """
    order = {"put": 0, "get": 1} if puts_first else {"get": 0, "put": 1}
    ordered = sorted(events, key=lambda ev: (ev.time, order[ev.kind]))
    occupancy = {ch.name: ch.initial_tokens for ch in system.channels}
    extremes = {name: (occ, occ) for name, occ in occupancy.items()}
    for event in ordered:
        occupancy[event.channel] += 1 if event.kind == "put" else -1
        lo, hi = extremes[event.channel]
        current = occupancy[event.channel]
        extremes[event.channel] = (min(lo, current), max(hi, current))
    return extremes


@settings(max_examples=200, deadline=None)
@given(system=layered_systems())
def test_simulated_occupancy_stays_within_static_bounds(system):
    ordering = ChannelOrdering.declaration_order(system)
    result = analyze(system, ordering)
    if not result.deadlock_free:
        return  # refuted configurations are covered by the agreement test
    events = _transfer_events(system, ordering)
    hi_extremes = _occupancy_extremes(system, events, puts_first=False)
    lo_extremes = _occupancy_extremes(system, events, puts_first=True)
    for bound in result.bounds:
        assert hi_extremes[bound.channel][1] <= bound.hi, bound.channel
        assert lo_extremes[bound.channel][0] >= bound.lo, bound.channel


@settings(max_examples=75, deadline=None)
@given(system=layered_systems(max_layers=3, max_width=2))
def test_certificate_agrees_with_exhaustive_search(system):
    ordering = ChannelOrdering.declaration_order(system)
    result = analyze(system, ordering)
    verdict = check_deadlock(system, ordering).verdict
    if result.deadlock_free:
        assert verdict is Verdict.DEADLOCK_FREE
    else:
        assert verdict is Verdict.DEADLOCKED


@settings(max_examples=100, deadline=None)
@given(system=layered_systems())
def test_certified_systems_simulate_without_deadlock(system):
    ordering = ChannelOrdering.declaration_order(system)
    result = analyze(system, ordering)
    if not result.deadlock_free:
        return
    Simulator(system, ordering).run(iterations=ITERATIONS)  # must not raise


@settings(max_examples=100, deadline=None)
@given(system=layered_systems())
def test_dead_channels_never_fire_concretely(system):
    ordering = ChannelOrdering.declaration_order(system)
    dead = set(analyze(system, ordering).dead_channels)
    fired = {event.channel for event in _transfer_events(system, ordering)}
    assert not fired & dead
