"""The occupancy fixpoint engine: bounds, dead structure, caching."""

from __future__ import annotations

import pytest

from repro.absint import (
    analysis_cache_info,
    analyze,
    analyze_ir,
    clear_analysis_cache,
)
from repro.core import ChannelOrdering, SystemBuilder
from repro.ir import lower


def buffered_pipeline(n_stages: int, capacity: int = 2):
    """src -> s0 -> ... -> s(n-1) -> snk, all channels buffered."""
    builder = SystemBuilder(f"abspipe{n_stages}")
    builder.source("src", latency=1)
    names = [f"s{i}" for i in range(n_stages)]
    for name in names:
        builder.process(name, latency=1)
    builder.sink("snk", latency=1)
    chain = ["src"] + names + ["snk"]
    for i in range(len(chain) - 1):
        builder.channel(
            f"c{i}", chain[i], chain[i + 1], latency=1, capacity=capacity
        )
    return builder.build()


@pytest.fixture()
def credit_loop():
    """Two workers exchanging one circulating token through deep FIFOs.

    Channels ``f`` and ``bk`` declare capacity 4, but the loop carries a
    single token, so neither FIFO can ever hold more than one item — the
    min-token-cycle pass must prove it.
    """
    return (
        SystemBuilder("creditloop")
        .source("src", latency=1)
        .process("w1", latency=1)
        .process("w2", latency=1)
        .sink("snk", latency=1)
        .channel("c_in", "src", "w1", latency=1)
        .channel("f", "w1", "w2", latency=1, capacity=4)
        .channel("bk", "w2", "w1", latency=1, capacity=4, initial_tokens=1)
        .channel("c_out", "w2", "snk", latency=1)
        .build()
    )


@pytest.fixture()
def dead_on_arrival():
    """A live src->w1->snk spine plus a token-free w1<->w2 rendezvous loop.

    ``w1`` completes its first get (channel ``a``) and then blocks on
    ``y`` forever: ``w2`` cannot put ``y`` before getting ``x``, which
    ``w1`` only puts *after* getting ``y``.  Channels ``x``, ``y`` and
    ``o`` are therefore statically dead while ``a`` fires once.
    """
    return (
        SystemBuilder("doa")
        .source("src", latency=1)
        .process("w1", latency=1)
        .process("w2", latency=1)
        .sink("snk", latency=1)
        .channel("a", "src", "w1", latency=1)
        .channel("x", "w1", "w2", latency=1)
        .channel("y", "w2", "w1", latency=1)
        .channel("o", "w1", "snk", latency=1)
        .build()
    )


class TestPipelineBounds:
    def test_bounds_reach_capacity(self):
        system = buffered_pipeline(3, capacity=2)
        result = analyze(system)
        assert result.deadlock_free
        assert len(result.bounds) == 4
        for bound in result.bounds:
            assert (bound.lo, bound.hi) == (0, 2)
            assert bound.effective_capacity == 2

    def test_bounds_are_sorted_by_channel(self):
        result = analyze(buffered_pipeline(4))
        names = [bound.channel for bound in result.bounds]
        assert names == sorted(names)

    def test_no_dead_structure_in_a_live_pipeline(self):
        result = analyze(buffered_pipeline(3))
        assert result.dead_channels == ()
        assert result.unreachable_ops == ()

    def test_rendezvous_systems_have_no_bounds(self, tiny_pipeline):
        result = analyze(tiny_pipeline)
        assert result.bounds == ()
        assert result.deadlock_free

    def test_widening_converges_on_deep_fifos(self):
        system = buffered_pipeline(2, capacity=1000)
        result = analyze(system)
        assert result.rounds < 100
        assert all(bound.hi == 1000 for bound in result.bounds)


class TestMinTokenCycleTightening:
    def test_loop_fifos_are_bounded_by_the_circulating_token(
        self, credit_loop
    ):
        result = analyze(credit_loop)
        assert result.deadlock_free
        assert result.bound_of("f").hi == 1
        assert result.bound_of("bk").hi == 1
        assert result.bound_of("f").declared_capacity == 4
        assert result.bound_of("bk").declared_capacity == 4

    def test_tightening_is_reported_as_an_invariant(self, credit_loop):
        result = analyze(credit_loop)
        subjects = {
            invariant.subject
            for invariant in result.invariants
            if invariant.kind == "min-token-cycle"
        }
        assert {"f", "bk"} <= subjects

    def test_feedforward_pipelines_are_not_tightened(self):
        result = analyze(buffered_pipeline(3, capacity=2))
        kinds = {invariant.kind for invariant in result.invariants}
        assert "min-token-cycle" not in kinds


class TestDeadStructure:
    def test_dead_channels(self, dead_on_arrival):
        result = analyze(dead_on_arrival)
        assert not result.deadlock_free
        assert set(result.dead_channels) == {"o", "x", "y"}

    def test_unreachable_statements(self, dead_on_arrival):
        result = analyze(dead_on_arrival)
        ops = {
            (op.process, op.kind, op.channel)
            for op in result.unreachable_ops
        }
        assert ("w1", "get", "y") in ops
        assert ("w1", "put", "x") in ops
        assert ("w2", "put", "y") in ops
        assert ("snk", "get", "o") in ops
        # Computes behind a permanently-blocked get are dead too.
        assert ("w1", "compute", None) in ops
        assert ("w2", "compute", None) in ops
        # The source side stays live: its put on 'a' fires once.
        assert not any(process == "src" for process, _, _ in ops)

    def test_refutation_carries_a_cycle(self, dead_on_arrival):
        result = analyze(dead_on_arrival)
        assert result.certificate is None
        assert result.token_free_cycle is not None

    def test_certificate_and_cycle_are_exclusive(
        self, motivating, optimal_ordering, deadlock_ordering
    ):
        live = analyze(motivating, optimal_ordering)
        assert live.certificate is not None
        assert live.token_free_cycle is None
        dead = analyze(motivating, deadlock_ordering)
        assert dead.certificate is None
        assert dead.token_free_cycle is not None


class TestCaching:
    def test_results_are_cached_by_structural_hash(self, motivating):
        clear_analysis_cache()
        ir = lower(motivating, ChannelOrdering.declaration_order(motivating))
        first = analyze_ir(ir)
        before = analysis_cache_info().hits
        second = analyze_ir(ir)
        assert second is first
        assert analysis_cache_info().hits == before + 1

    def test_analyze_defaults_to_declaration_order(self, motivating):
        explicit = analyze(
            motivating, ChannelOrdering.declaration_order(motivating)
        )
        assert analyze(motivating).ir_hash == explicit.ir_hash

    def test_clear_drops_entries_but_keeps_counters(self, motivating):
        analyze(motivating)
        misses_before = analysis_cache_info().misses
        clear_analysis_cache()
        analyze(motivating)
        assert analysis_cache_info().misses == misses_before + 1
