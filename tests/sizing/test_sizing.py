"""Tests for FIFO buffer sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import motivating_example, motivating_optimal_ordering, pipeline
from repro.errors import ValidationError
from repro.model import analyze_system
from repro.sizing import (
    cycle_time_with_capacities,
    minimize_buffers,
    size_buffers,
)
from tests.strategies import layered_systems


class TestSizeBuffers:
    def test_pipeline_reaches_floor(self):
        system = pipeline(4, process_latency=6, channel_latency=2)
        # rendezvous CT is 10 (two coupled stages); 1-deep FIFOs decouple
        # down to the per-stage floor of 6 + 2 = 8.
        assert analyze_system(system).cycle_time == 10
        result = size_buffers(system, target_cycle_time=8)
        assert result.feasible
        assert result.cycle_time == 8

    def test_unreachable_target_reports_infeasible(self):
        system = pipeline(4, process_latency=6, channel_latency=2)
        result = size_buffers(system, target_cycle_time=3)
        assert not result.feasible
        assert result.cycle_time == 8  # saturated at the floor

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError):
            size_buffers(pipeline(2), target_cycle_time=0)

    def test_initial_tokens_respected(self, feedback_system):
        result = size_buffers(feedback_system, target_cycle_time=8)
        assert result.capacities["y"] >= 1  # the pre-loaded channel

    def test_motivating_example_below_rendezvous_optimum(self):
        system = motivating_example()
        ordering = motivating_optimal_ordering(system)
        # rendezvous optimum is 12; buffering can push below it.
        result = size_buffers(system, target_cycle_time=10,
                              ordering=ordering)
        assert result.feasible
        assert result.cycle_time <= 10

    def test_max_capacity_cap(self):
        system = pipeline(2, process_latency=4, channel_latency=1)
        result = size_buffers(system, target_cycle_time=1, max_capacity=2)
        assert not result.feasible
        assert all(c <= 2 for c in result.capacities.values())


class TestMinimizeBuffers:
    def test_never_worse_than_greedy(self):
        system = motivating_example()
        ordering = motivating_optimal_ordering(system)
        greedy = size_buffers(system, 10, ordering=ordering)
        trimmed = minimize_buffers(system, 10, ordering=ordering)
        assert trimmed.feasible
        assert trimmed.total_slots <= greedy.total_slots
        assert trimmed.cycle_time <= 10

    def test_trim_keeps_target(self):
        system = pipeline(5, process_latency=7, channel_latency=3)
        result = minimize_buffers(system, target_cycle_time=10)
        assert result.feasible
        assert (
            cycle_time_with_capacities(system, result.capacities) ==
            result.cycle_time
        )

    def test_infeasible_passthrough(self):
        system = pipeline(2, process_latency=9, channel_latency=1)
        result = minimize_buffers(system, target_cycle_time=2)
        assert not result.feasible


class TestSizingProperties:
    @settings(max_examples=20, deadline=None)
    @given(system=layered_systems(max_layers=3, max_width=2))
    def test_sized_system_meets_reported_cycle_time(self, system):
        from repro.ordering import channel_ordering

        ordering = channel_ordering(system)  # guaranteed live
        rendezvous_ct = analyze_system(system, ordering).cycle_time
        if rendezvous_ct == 0:
            return
        target = rendezvous_ct  # always reachable
        result = size_buffers(system, target_cycle_time=target,
                              ordering=ordering)
        assert result.feasible
        assert (
            cycle_time_with_capacities(system, result.capacities, ordering)
            == result.cycle_time
        )
        assert result.cycle_time <= target

    @settings(max_examples=15, deadline=None)
    @given(system=layered_systems(max_layers=3, max_width=2),
           factor=st.floats(0.5, 1.0))
    def test_result_consistency(self, system, factor):
        from repro.ordering import channel_ordering

        ordering = channel_ordering(system)
        rendezvous_ct = analyze_system(system, ordering).cycle_time
        if rendezvous_ct == 0:
            return
        target = max(1, int(float(rendezvous_ct) * factor))
        result = size_buffers(system, target_cycle_time=target,
                              max_capacity=16, ordering=ordering)
        if result.feasible:
            assert result.cycle_time <= target
        else:
            assert result.cycle_time > target
