"""Tests for the Section 3 TMG construction."""

import pytest

from repro.core import ChannelOrdering, SystemBuilder
from repro.errors import ValidationError
from repro.model import (
    build_tmg,
    channel_transition,
    process_transition,
    statement_place,
)
from repro.model.build import (
    buffered_get_transition,
    buffered_put_transition,
)


class TestNames:
    def test_prefixes(self):
        assert channel_transition("a") == "ch:a"
        assert process_transition("P2") == "proc:P2"
        assert statement_place("P2", "put", "b") == "P2/put:b"
        assert statement_place("P2", "compute") == "P2/comp"

    def test_statement_place_needs_channel(self):
        with pytest.raises(ValidationError):
            statement_place("P2", "get")


class TestBlockingModel:
    def test_element_counts(self, motivating):
        model = build_tmg(motivating)
        tmg = model.tmg
        # one transition per channel (no buffering here) + one per process
        assert len(tmg.transitions) == 8 + 7
        # one place per statement: per process 1 compute + its gets + puts
        expected_places = sum(
            1
            + len(motivating.input_channels(p.name))
            + len(motivating.output_channels(p.name))
            for p in motivating.processes
        )
        assert len(tmg.places) == expected_places

    def test_channel_transition_delay_is_latency(self, motivating):
        tmg = build_tmg(motivating).tmg
        assert tmg.delay("ch:d") == 3
        assert tmg.delay("proc:P2") == 5

    def test_chain_structure_of_p2(self, motivating):
        """Fig. 3: a -> L2 -> b -> d -> f, cyclically."""
        tmg = build_tmg(motivating).tmg
        # P2's compute place is fed by channel a's transition.
        comp = tmg.place("P2/comp")
        assert comp.source == "ch:a"
        assert comp.target == "proc:P2"
        # first put place fed by the computation
        put_b = tmg.place("P2/put:b")
        assert put_b.source == "proc:P2"
        assert put_b.target == "ch:b"
        # the first read follows the last write (chain loops back)
        get_a = tmg.place("P2/get:a")
        assert get_a.source == "ch:f"
        assert get_a.target == "ch:a"

    def test_channel_fed_by_put_and_get_places(self, motivating):
        tmg = build_tmg(motivating).tmg
        feeders = {tmg.place(p).name for p in tmg.input_places("ch:b")}
        assert feeders == {"P2/put:b", "P3/get:b"}

    def test_initial_marking_first_get_places(self, motivating):
        """One token in the first get-place of each reading process and in
        the source's first put-place (the paper's marking rule)."""
        tmg = build_tmg(motivating).tmg
        marking = tmg.initial_marking()
        marked = {name for name, tokens in marking.items() if tokens}
        assert marked == {
            "Psrc/put:a",  # environment always ready
            "P2/get:a",
            "P3/get:b",
            "P4/get:c",
            "P5/get:f",
            "P6/get:d",  # declaration order: d first
            "Psnk/get:h",
        }

    def test_marking_follows_ordering(self, motivating):
        ordering = ChannelOrdering.from_orders(
            motivating, gets={"P6": ("g", "d", "e")}
        )
        tmg = build_tmg(motivating, ordering).tmg
        assert tmg.tokens("P6/get:g") == 1
        assert tmg.tokens("P6/get:d") == 0

    def test_latency_overrides(self, motivating):
        model = build_tmg(motivating, process_latencies={"P2": 50})
        assert model.tmg.delay("proc:P2") == 50
        # the original system is untouched
        assert motivating.process("P2").latency == 5

    def test_negative_override_rejected(self, motivating):
        with pytest.raises(ValidationError):
            build_tmg(motivating, process_latencies={"P2": -1})

    def test_invalid_ordering_rejected(self, motivating):
        bad = ChannelOrdering(gets={"P6": ("d", "e")}, puts={})
        with pytest.raises(ValidationError):
            build_tmg(motivating, bad)


class TestBufferedChannels:
    def _system(self, capacity=0, tokens=1):
        return (
            SystemBuilder("buf")
            .source("src")
            .process("A", latency=2)
            .process("B", latency=2)
            .sink("snk")
            .channel("i", "src", "A")
            .channel("x", "A", "B", latency=3, capacity=capacity,
                     initial_tokens=tokens)
            .channel("o", "B", "snk")
            .build()
        )

    def test_preloaded_channel_splits(self):
        tmg = build_tmg(self._system()).tmg
        assert "ch:x.put" in tmg.transition_names
        assert "ch:x.get" in tmg.transition_names
        assert "ch:x" not in tmg.transition_names
        assert tmg.delay("ch:x.put") == 3
        assert tmg.delay("ch:x.get") == 0

    def test_data_and_credit_places(self):
        tmg = build_tmg(self._system(capacity=3, tokens=1)).tmg
        assert tmg.tokens("x/data") == 1
        assert tmg.tokens("x/credit") == 2

    def test_capacity_only_channel_also_buffered(self):
        tmg = build_tmg(self._system(capacity=2, tokens=0)).tmg
        assert tmg.tokens("x/data") == 0
        assert tmg.tokens("x/credit") == 2

    def test_capacity_defaults_to_initial_tokens(self):
        tmg = build_tmg(self._system(capacity=0, tokens=2)).tmg
        assert tmg.tokens("x/data") == 2
        assert tmg.tokens("x/credit") == 0


class TestSystemTmgHelpers:
    def test_critical_processes_extraction(self, motivating):
        model = build_tmg(motivating)
        cycle = ("ch:a", "proc:P2", "ch:b", "proc:P3")
        assert model.critical_processes(cycle) == ("P2", "P3")
        assert model.critical_channels(cycle) == ("a", "b")

    def test_critical_channels_strip_buffer_suffix(self, feedback_system):
        model = build_tmg(feedback_system)
        cycle = ("ch:y.put", "ch:y.get", "proc:A")
        assert model.critical_channels(cycle) == ("y",)

    def test_processes_touching(self, motivating):
        model = build_tmg(motivating)
        places = ("P2/put:b", "P3/get:b", "P2/comp")
        assert model.processes_touching(places) == ("P2", "P3")
