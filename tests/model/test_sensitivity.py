"""Sensitivity/bottleneck analysis tests."""

import pytest
from hypothesis import given, settings

from repro.model import (
    analyze_system,
    format_sensitivity,
    sensitivity_report,
)
from tests.strategies import layered_systems


class TestMotivatingSensitivity:
    def test_critical_process_has_zero_slack(self, motivating,
                                             optimal_ordering):
        report = sensitivity_report(motivating, optimal_ordering)
        assert report.cycle_time == 12
        p2 = report.of("P2")
        assert p2.on_critical_cycle
        assert p2.slack == 0
        assert p2.potential > 0

    def test_noncritical_has_positive_slack(self, motivating,
                                            optimal_ordering):
        report = sensitivity_report(motivating, optimal_ordering)
        p4 = report.of("P4")
        assert not p4.on_critical_cycle
        assert p4.slack > 0
        assert p4.potential == 0

    def test_slack_is_tight(self, motivating, optimal_ordering):
        """Increasing a process latency by slack keeps the cycle time;
        slack+1 increases it."""
        report = sensitivity_report(motivating, optimal_ordering)
        for entry in report.entries:
            if entry.slack == 0 or entry.slack > 10_000:
                continue
            at_slack = analyze_system(
                motivating, optimal_ordering,
                process_latencies={entry.process: entry.latency + entry.slack},
            ).cycle_time
            past_slack = analyze_system(
                motivating, optimal_ordering,
                process_latencies={
                    entry.process: entry.latency + entry.slack + 1
                },
            ).cycle_time
            assert at_slack == report.cycle_time
            assert past_slack > report.cycle_time

    def test_potential_matches_direct_analysis(self, motivating,
                                               optimal_ordering):
        report = sensitivity_report(motivating, optimal_ordering)
        p2 = report.of("P2")
        at_zero = analyze_system(
            motivating, optimal_ordering, process_latencies={"P2": 0}
        ).cycle_time
        assert report.cycle_time - at_zero == p2.potential

    def test_bottlenecks_sorted(self, motivating, suboptimal_ordering):
        report = sensitivity_report(motivating, suboptimal_ordering)
        potentials = [float(e.potential) for e in report.bottlenecks()]
        assert potentials == sorted(potentials, reverse=True)
        assert all(p > 0 for p in potentials)

    def test_of_unknown_raises(self, motivating, optimal_ordering):
        report = sensitivity_report(motivating, optimal_ordering)
        with pytest.raises(KeyError):
            report.of("ghost")

    def test_format(self, motivating, optimal_ordering):
        report = sensitivity_report(motivating, optimal_ordering)
        text = format_sensitivity(report)
        assert "cycle time: 12" in text
        assert "P2" in text
        limited = format_sensitivity(report, limit=2)
        assert len(limited.splitlines()) == 4

    def test_latency_overrides_respected(self, motivating, optimal_ordering):
        report = sensitivity_report(
            motivating, optimal_ordering, process_latencies={"P2": 1}
        )
        expected = analyze_system(
            motivating, optimal_ordering, process_latencies={"P2": 1}
        ).cycle_time
        assert report.cycle_time == expected
        assert report.cycle_time < 12  # faster P2 helps


@settings(max_examples=15, deadline=None)
@given(system=layered_systems(max_layers=3, max_width=2))
def test_slack_and_potential_consistency(system):
    from repro.ordering import channel_ordering

    report = sensitivity_report(system, channel_ordering(system))
    for entry in report.entries:
        # critical processes never have slack; processes with potential
        # must be critical (speeding a non-critical process cannot help).
        if entry.on_critical_cycle:
            assert entry.slack == 0
        if entry.potential > 0:
            assert entry.on_critical_cycle
