"""System-level analysis against the paper's ground-truth numbers."""

from fractions import Fraction

import pytest

from repro.errors import DeadlockError
from repro.model import analyze_system, deadlock_cycle, is_deadlock_free
from repro.tmg import Engine


class TestMotivatingNumbers:
    def test_suboptimal_cycle_time_is_20(self, motivating, suboptimal_ordering):
        perf = analyze_system(motivating, suboptimal_ordering)
        assert perf.cycle_time == 20
        assert perf.throughput == Fraction(1, 20)  # the paper's 0.05

    def test_optimal_cycle_time_is_12(self, motivating, optimal_ordering):
        perf = analyze_system(motivating, optimal_ordering)
        assert perf.cycle_time == 12

    def test_improvement_is_40_percent(self, motivating, suboptimal_ordering,
                                       optimal_ordering):
        before = analyze_system(motivating, suboptimal_ordering).cycle_time
        after = analyze_system(motivating, optimal_ordering).cycle_time
        assert 1 - after / before == Fraction(2, 5)

    def test_optimal_critical_cycle_is_p2_chain(self, motivating,
                                                optimal_ordering):
        # At the optimum the binding constraint is P2's own serial cycle:
        # a(2) + L2(5) + b(1) + f(1) + d(3) = 12.
        perf = analyze_system(motivating, optimal_ordering)
        assert perf.critical_processes == ("P2",)
        assert set(perf.critical_channels) == {"a", "b", "f", "d"}

    def test_deadlock_raises_with_cycle(self, motivating, deadlock_ordering):
        with pytest.raises(DeadlockError) as excinfo:
            analyze_system(motivating, deadlock_ordering)
        cycle = excinfo.value.cycle
        # The Section 2 circular wait: P2 on d, P6 on g, P5 on f.
        assert set(cycle) >= {"d", "g", "f"}

    @pytest.mark.parametrize("engine", list(Engine))
    def test_engines_agree(self, motivating, suboptimal_ordering, engine):
        perf = analyze_system(motivating, suboptimal_ordering, engine=engine)
        assert perf.cycle_time == 20


class TestDeadlockChecks:
    def test_is_deadlock_free(self, motivating, suboptimal_ordering,
                              deadlock_ordering):
        assert is_deadlock_free(motivating, suboptimal_ordering)
        assert not is_deadlock_free(motivating, deadlock_ordering)

    def test_deadlock_cycle_names_system_elements(self, motivating,
                                                  deadlock_ordering):
        cycle = deadlock_cycle(motivating, deadlock_ordering)
        assert cycle is not None
        for name in cycle:
            assert motivating.has_process(name) or motivating.has_channel(name)

    def test_deadlock_cycle_none_when_live(self, motivating,
                                           optimal_ordering):
        assert deadlock_cycle(motivating, optimal_ordering) is None

    def test_deadlock_independent_of_latencies(self, motivating,
                                               deadlock_ordering):
        # Deadlock is structural: cranking latencies changes nothing.
        fast = motivating.with_process_latencies(
            {p.name: 1 for p in motivating.processes}
        )
        assert not is_deadlock_free(fast, deadlock_ordering)


class TestLatencyOverrides:
    def test_override_changes_cycle_time(self, motivating, optimal_ordering):
        perf = analyze_system(
            motivating, optimal_ordering, process_latencies={"P2": 10}
        )
        # P2's chain: 2 + 10 + 1 + 1 + 3 = 17
        assert perf.cycle_time == 17

    def test_speeding_up_noncritical_changes_nothing(self, motivating,
                                                     optimal_ordering):
        perf = analyze_system(
            motivating, optimal_ordering, process_latencies={"P4": 0}
        )
        assert perf.cycle_time == 12


class TestFeedback:
    def test_feedback_loop_cycle_time(self, feedback_system):
        perf = analyze_system(feedback_system)
        # loop A -> x -> B -> y -> A carries 1 token:
        # (3 + 1 + 2 + 2[y latency, buffered put]) = 8
        assert perf.cycle_time == 8
        assert set(perf.critical_processes) == {"A", "B"}

    def test_feedback_tokens_increase_throughput(self, feedback_system):
        from repro.core import Channel

        richer = feedback_system.copy()
        richer._channels["y"] = Channel(
            "y", "B", "A", latency=2, capacity=2, initial_tokens=2
        )
        perf = analyze_system(richer)
        assert perf.cycle_time < 8
