"""Cross-model consistency: the two builders agree where they overlap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Channel, SystemGraph
from repro.model import build_nonblocking_tmg, build_tmg
from repro.tmg import analyze
from tests.strategies import layered_systems


def _all_buffered(system: SystemGraph, capacity: int) -> SystemGraph:
    clone = system.copy()
    for channel in system.channels:
        clone._channels[channel.name] = Channel(
            channel.name, channel.producer, channel.consumer,
            latency=channel.latency,
            capacity=max(capacity, channel.initial_tokens),
            initial_tokens=channel.initial_tokens,
        )
    return clone


@settings(max_examples=25, deadline=None)
@given(system=layered_systems(max_layers=3, max_width=2),
       capacity=st.integers(1, 4))
def test_blocking_builder_with_capacity_equals_nonblocking_builder(
    system, capacity
):
    """For an all-buffered system, ``build_tmg`` (which splits buffered
    channels) and ``build_nonblocking_tmg`` must produce TMGs with the
    same cycle time — two code paths, one model."""
    buffered = _all_buffered(system, capacity)
    blocking_view = build_tmg(buffered)
    nonblocking_view = build_nonblocking_tmg(buffered)
    ct_a = analyze(blocking_view.tmg).cycle_time
    ct_b = analyze(nonblocking_view.tmg).cycle_time
    assert ct_a == ct_b


@settings(max_examples=25, deadline=None)
@given(system=layered_systems(max_layers=3, max_width=2))
def test_default_capacity_parameter_equivalent(system):
    buffered = _all_buffered(system, 2)
    via_field = build_nonblocking_tmg(buffered)
    via_default = build_nonblocking_tmg(system, default_capacity=2)
    # Channels with pre-loaded tokens keep max(capacity, tokens) in both.
    assert analyze(via_field.tmg).cycle_time == \
        analyze(via_default.tmg).cycle_time
