"""Tests for the non-blocking (FIFO) channel model extension."""

import pytest

from repro.core import SystemBuilder
from repro.errors import ValidationError
from repro.model import build_nonblocking_tmg, build_tmg
from repro.tmg import analyze


def buffered_pipeline(capacity=2):
    return (
        SystemBuilder("nb")
        .source("src", latency=1)
        .process("A", latency=4)
        .process("B", latency=4)
        .sink("snk", latency=1)
        .channel("i", "src", "A", latency=1, capacity=capacity)
        .channel("x", "A", "B", latency=1, capacity=capacity)
        .channel("o", "B", "snk", latency=1, capacity=capacity)
        .build()
    )


class TestConstruction:
    def test_split_transitions(self):
        model = build_nonblocking_tmg(buffered_pipeline())
        assert "ch:x.put" in model.tmg.transition_names
        assert "ch:x.get" in model.tmg.transition_names

    def test_data_credit_marking(self):
        model = build_nonblocking_tmg(buffered_pipeline(capacity=3))
        assert model.tmg.tokens("x/data") == 0
        assert model.tmg.tokens("x/credit") == 3

    def test_zero_capacity_rejected(self):
        system = buffered_pipeline(capacity=0)
        with pytest.raises(ValidationError, match="capacity"):
            build_nonblocking_tmg(system)

    def test_default_capacity_parameter(self):
        system = buffered_pipeline(capacity=0)
        model = build_nonblocking_tmg(system, default_capacity=2)
        assert model.tmg.tokens("x/credit") == 2

    def test_tokens_above_capacity_rejected(self):
        system = (
            SystemBuilder("bad")
            .source("src")
            .process("A")
            .process("B")
            .sink("snk")
            .channel("i", "src", "A", capacity=1)
            .channel("x", "A", "B", capacity=1, initial_tokens=3)
            .channel("o", "B", "snk", capacity=1)
            .build()
        )
        with pytest.raises(ValidationError, match="initial_tokens"):
            build_nonblocking_tmg(system)


class TestPerformance:
    def test_fifo_slack_never_hurts(self):
        """Replacing rendezvous with FIFOs cannot lengthen the cycle time
        (credits only add tokens to reverse cycles)."""
        rendezvous = (
            SystemBuilder("r")
            .source("src", latency=1)
            .process("A", latency=4)
            .process("B", latency=4)
            .sink("snk", latency=1)
            .channel("i", "src", "A", latency=1)
            .channel("x", "A", "B", latency=1)
            .channel("o", "B", "snk", latency=1)
            .build()
        )
        blocking_ct = analyze(build_tmg(rendezvous).tmg).cycle_time
        fifo_ct = analyze(
            build_nonblocking_tmg(rendezvous, default_capacity=4).tmg
        ).cycle_time
        assert fifo_ct <= blocking_ct

    def test_deeper_fifo_monotone(self):
        shallow = analyze(
            build_nonblocking_tmg(buffered_pipeline(capacity=1)).tmg
        ).cycle_time
        deep = analyze(
            build_nonblocking_tmg(buffered_pipeline(capacity=4)).tmg
        ).cycle_time
        assert deep <= shallow
