"""TAB1 — Table 1, the MPEG-2 Encoder experimental setup.

Regenerates every row of Table 1 from the built case study: 26 processes,
60 channels, 171 Pareto points, 352×240 frames, channel latencies from 1
to 5,280 cycles.  The benchmark times the full case-study construction
(topology + Pareto library + latency characterization).
"""

from repro.mpeg2 import (
    CHANNEL_SPECS,
    build_mpeg2_library,
    build_mpeg2_system,
    channel_latencies,
)
from repro.mpeg2.topology import FRAME_SPEC_ROWS

from conftest import print_table


def _build_case_study():
    system = build_mpeg2_system()
    library = build_mpeg2_library()
    latencies = channel_latencies()
    return system, library, latencies


def test_bench_table1_setup(benchmark):
    system, library, latencies = benchmark(_build_case_study)

    rows = FRAME_SPEC_ROWS(system, library, latencies)
    expected = {
        "Processes": 26,
        "Channels": 60,
        "Pareto points": 171,
        "Image size (pixels)": "352x240",
    }
    produced = dict(rows)
    for key, value in expected.items():
        assert produced[key] == value
    assert produced["Channel latencies (cycles)"] == "1..5280"

    benchmark.extra_info.update({k: str(v) for k, v in rows})
    print_table("Table 1 (reproduced)", rows)
