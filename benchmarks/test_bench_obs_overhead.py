"""OBS — the observability layer must be (near) free when unused.

The tracing rework put a sink dispatch on the simulator's hottest path
(every compute/put/get records through ``TraceRecorder.record``).  This
benchmark guards the design promise: with no sink and no metrics attached
the recorder's single ``_active`` check keeps the simulator within a
small factor of its pre-instrumentation cost, and attaching observers
never changes results.

Reported numbers:

* bare simulator time on a synthetic SoC (the baseline);
* the same run with a :class:`~repro.obs.NullSink` attached (pays event
  construction + dispatch) and with full in-memory tracing;
* overhead ratios, asserted under generous ceilings so the benchmark
  fails if someone accidentally makes the off-path expensive.
"""

import statistics
import time

from repro.core import synthetic_soc
from repro.obs import MemorySink, MetricsRegistry, NullSink
from repro.ordering import channel_ordering
from repro.sim import Simulator

#: Bare run (no sinks, no metrics, no record_trace) may cost at most this
#: multiple of itself re-measured — i.e. the guard is on run-to-run noise —
#: and the observed-vs-bare ratio ceilings below catch real regressions.
BARE_OVERHEAD_CEILING = 1.15
ITERATIONS = 40
REPEATS = 5


def _system():
    system = synthetic_soc(60, seed=7)
    return system, channel_ordering(system)


def _time_run(system, ordering, repeats=REPEATS, **kwargs):
    times = []
    results = []
    for _ in range(repeats):
        simulator = Simulator(system, ordering, **kwargs)
        start = time.perf_counter()
        results.append(simulator.run(iterations=ITERATIONS))
        times.append(time.perf_counter() - start)
    return min(times), results[-1]


def test_bench_null_path_overhead(benchmark):
    """With nothing attached, the recorder must stay out of the way."""
    system, ordering = _system()
    # Warm up imports/caches before timing.
    Simulator(system, ordering).run(iterations=2)

    t_bare, bare = _time_run(system, ordering)
    t_rebare, _ = _time_run(system, ordering)
    t_null, nulled = _time_run(system, ordering, sinks=[NullSink()])
    t_traced, _ = _time_run(system, ordering, sinks=[MemorySink()])
    t_metrics, metered = _time_run(
        system, ordering, metrics=MetricsRegistry()
    )

    benchmark.pedantic(
        lambda: Simulator(system, ordering).run(iterations=ITERATIONS),
        rounds=3,
        iterations=1,
    )

    noise = max(t_bare, t_rebare) / min(t_bare, t_rebare)
    null_ratio = t_null / t_bare
    traced_ratio = t_traced / t_bare
    metrics_ratio = t_metrics / t_bare
    benchmark.extra_info.update({
        "bare_s": round(t_bare, 4),
        "noise_ratio": round(noise, 3),
        "null_sink_ratio": round(null_ratio, 3),
        "memory_sink_ratio": round(traced_ratio, 3),
        "metrics_ratio": round(metrics_ratio, 3),
    })
    print(f"\nbare {t_bare*1e3:.1f} ms | null sink x{null_ratio:.2f} | "
          f"memory sink x{traced_ratio:.2f} | metrics x{metrics_ratio:.2f}")

    # Results are bit-identical however the run is observed.
    assert bare == nulled == metered

    # Metrics are recorded once at end-of-run: effectively free.
    assert metrics_ratio < BARE_OVERHEAD_CEILING + (noise - 1)
    # A sink pays event construction; keep it bounded (generous ceiling —
    # this catches accidental quadratic behaviour, not micro-noise).
    assert null_ratio < 3.0
    assert traced_ratio < 4.0


def test_bench_ring_buffer_bounded_memory(benchmark):
    """A bounded ring keeps only ``capacity`` events however long the run."""
    from repro.obs import RingBufferSink

    system, ordering = _system()
    sink = RingBufferSink(capacity=256)

    def run():
        return Simulator(system, ordering, sinks=[sink]).run(
            iterations=ITERATIONS
        )

    benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(sink.events()) == 256
    assert sink.dropped > 0
    benchmark.extra_info.update({
        "kept": 256,
        "dropped": sink.dropped,
        "drop_ratio": round(sink.dropped / (sink.dropped + 256), 3),
    })


def test_bench_trace_volume(benchmark):
    """Report the event volume a traced run produces (sizing guidance for
    the JSONL/Perfetto exports in docs/OBSERVABILITY.md)."""
    system, ordering = _system()
    sink = MemorySink()
    benchmark.pedantic(
        lambda: Simulator(system, ordering, sinks=[sink]).run(
            iterations=ITERATIONS
        ),
        rounds=1,
        iterations=1,
    )
    events = sink.events()
    per_cycle = len(events) / max(e.time for e in events)
    benchmark.extra_info.update({
        "events": len(events),
        "events_per_cycle": round(per_cycle, 2),
        "kinds": len({e.kind for e in events}),
    })
    print(f"\n{len(events)} events, {per_cycle:.2f}/cycle "
          f"(median wait "
          f"{statistics.median(e.wait for e in events):.0f} cycles)")
    assert events
