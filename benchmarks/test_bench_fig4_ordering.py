"""FIG4 — Algorithm 1 on the motivating example (labels, optimum, 40%).

Regenerates Fig. 4 end to end: the forward/backward labels of panel (b),
the final orders of panel (c), and the 20 → 12 cycle-time improvement
(40%).  The benchmark times one full Algorithm 1 run.
"""

from fractions import Fraction

from repro.core import motivating_suboptimal_ordering
from repro.model import analyze_system
from repro.ordering import channel_ordering_with_labels

from conftest import print_table


def test_bench_fig4_channel_ordering(benchmark, motivating):
    initial = motivating_suboptimal_ordering(motivating)
    outcome = benchmark(channel_ordering_with_labels, motivating, initial)

    # Panel (b): every label matches the paper exactly.
    forward = {c: outcome.labels.head(c) for c in motivating.channel_names}
    backward = {c: outcome.labels.tail(c) for c in motivating.channel_names}
    assert forward == {
        "a": (3, 1), "f": (13, 2), "b": (13, 3), "d": (13, 4),
        "g": (17, 5), "c": (17, 6), "e": (19, 7), "h": (22, 8),
    }
    assert backward == {
        "h": (2, 1), "d": (10, 2), "g": (10, 3), "e": (10, 4),
        "f": (13, 5), "c": (13, 6), "b": (16, 7), "a": (23, 8),
    }

    # Panel (c): final orders and performance.
    assert outcome.ordering.gets_of("P6") == ("d", "g", "e")
    assert outcome.ordering.puts_of("P2") == ("b", "f", "d")
    before = analyze_system(motivating, initial).cycle_time
    after = analyze_system(motivating, outcome.ordering).cycle_time
    assert (before, after) == (20, 12)
    assert 1 - Fraction(after, before) == Fraction(2, 5)  # the paper's 40%

    benchmark.extra_info.update(
        {
            "cycle_time_before": int(before),
            "cycle_time_after": int(after),
            "improvement_pct": 40.0,
            "p2_puts": "->".join(outcome.ordering.puts_of("P2")),
            "p6_gets": "->".join(outcome.ordering.gets_of("P6")),
        }
    )
    print_table(
        "Fig. 4 ordering (paper: CT 20 -> 12, 40% better)",
        [
            ("suboptimal CT", before),
            ("Algorithm 1 CT", after),
            ("improvement", "40%"),
            ("P2 puts", outcome.ordering.puts_of("P2")),
            ("P6 gets", outcome.ordering.gets_of("P6")),
        ],
    )
