"""M1 — Section 6: reordering alone improves M1 by ~5% at zero area cost.

"When applied to implementation M1, ERMES is capable of detecting some
unnecessary serialization of processes that could run in parallel.  By
reordering the interface primitives of some processes, it resolved this
issue without making any change on their core computational parts.  The
result is a 5% improvement of the CT without any increase in area."
"""

from repro.dse import SystemConfiguration
from repro.model import analyze_system
from repro.mpeg2 import m1_selection
from repro.ordering import channel_ordering, declaration_ordering

from conftest import print_table


def _reorder_m1(system, library):
    config = SystemConfiguration(
        system, library, m1_selection(library), declaration_ordering(system)
    )
    latencies = config.process_latencies()
    before = analyze_system(
        system, config.ordering, process_latencies=latencies
    )
    ordering = channel_ordering(
        system.with_process_latencies(latencies),
        initial_ordering=config.ordering,
    )
    after = analyze_system(system, ordering, process_latencies=latencies)
    return config, before, after


def test_bench_m1_reordering(benchmark, mpeg2_system, mpeg2_library):
    config, before, after = benchmark(_reorder_m1, mpeg2_system, mpeg2_library)

    ct_before = float(before.cycle_time) / 1000
    ct_after = float(after.cycle_time) / 1000
    gain = 1 - ct_after / ct_before
    area = config.total_area() / 1e6

    # Paper anchors: CT 1,906 KCycles, area 2.267 mm², 5% improvement.
    assert abs(ct_before - 1906) / 1906 < 0.02
    assert abs(area - 2.267) / 2.267 < 0.01
    assert 0.03 <= gain <= 0.08

    benchmark.extra_info.update(
        {
            "ct_before_kcycles": round(ct_before, 1),
            "ct_after_kcycles": round(ct_after, 1),
            "gain_pct": round(100 * gain, 2),
            "area_mm2": round(area, 3),
        }
    )
    print_table(
        "M1 reordering (paper: 1906 KCycles, 5% better, area unchanged)",
        [
            ("CT before", f"{ct_before:.0f} KCycles"),
            ("CT after", f"{ct_after:.0f} KCycles"),
            ("improvement", f"{100 * gain:.1f}%"),
            ("area", f"{area:.3f} mm2 (unchanged)"),
            ("serialization found",
             f"critical cycle through {', '.join(before.critical_processes)}"),
        ],
    )
