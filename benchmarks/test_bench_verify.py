"""VERIFY — explicit-state model checking with partial-order reduction.

Two claims.  First, the stubborn-set reduction earns its keep: on a
6-stage buffered pipeline (independently moving endpoints are the
interleaving worst case) it must explore at least 5x fewer states than
the naive full interleaving — in practice the gap is closer to two
orders of magnitude.  Second, verification at the scale the explorer
uses it (a 4-process rendezvous system, checked after every Algorithm-1
run) completes in well under a second, so machine-checking liveness is
cheap enough to keep on by default.
"""

import time

from repro.core import SystemBuilder
from repro.core.generators import fork_join
from repro.verify import Verdict, check_deadlock


def buffered_pipeline(n_stages: int, capacity: int = 1):
    """src -> s0 -> ... -> s(n-1) -> snk, all channels buffered."""
    builder = SystemBuilder(f"bufpipe{n_stages}")
    builder.source("src", latency=1)
    names = [f"s{i}" for i in range(n_stages)]
    for name in names:
        builder.process(name, latency=1)
    builder.sink("snk", latency=1)
    chain = ["src"] + names + ["snk"]
    for i in range(len(chain) - 1):
        builder.channel(
            f"c{i}", chain[i], chain[i + 1], latency=1, capacity=capacity
        )
    return builder.build()


def test_bench_verify_por_reduction_6_stage_pipeline(benchmark):
    system = buffered_pipeline(6)
    naive = check_deadlock(system, por=False)
    reduced = benchmark.pedantic(
        check_deadlock, args=(system,), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    assert reduced.verdict is naive.verdict is Verdict.DEADLOCK_FREE
    ratio = naive.states_explored / reduced.states_explored
    assert ratio >= 5.0, (
        f"POR must explore >= 5x fewer states than naive "
        f"({naive.states_explored} vs {reduced.states_explored})"
    )
    benchmark.extra_info.update(
        {
            "stages": 6,
            "naive_states": naive.states_explored,
            "por_states": reduced.states_explored,
            "reduction_x": round(ratio, 1),
            "por_pruned": reduced.por_pruned,
        }
    )


def test_bench_verify_4_process_system_subsecond(benchmark):
    system = fork_join(4)  # 4 workers + testbench, pure rendezvous
    start = time.perf_counter()
    result = benchmark.pedantic(
        check_deadlock, args=(system,), rounds=5, iterations=1,
        warmup_rounds=1,
    )
    elapsed = time.perf_counter() - start
    assert result.verdict is Verdict.DEADLOCK_FREE
    assert elapsed < 1.0, "explorer-scale verification must be < 1 s"
    benchmark.extra_info.update(
        {
            "processes": len(system.processes),
            "channels": len(system.channels),
            "states": result.states_explored,
            "elapsed_s": round(elapsed, 4),
        }
    )
