"""FIG6L — Fig. 6 left panel: timing-optimization exploration from M2.

"The left-hand side of Fig. 6 shows a timing-optimization exploration as
the result of imposing a constraint on the target cycle time TCT = 2,000
KCycles ... The final implementation gives a speed-up of 2x with respect
to the initial one, with an area overhead."

Emits the full (iteration, cycle time, area) series behind the plot.
"""

from repro.dse import SystemConfiguration, explore, series
from repro.mpeg2 import m2_selection
from repro.ordering import declaration_ordering

from conftest import print_table

TCT = 2_000_000  # the paper's 2,000 KCycles


def _run(system, library):
    config = SystemConfiguration(
        system, library, m2_selection(library), declaration_ordering(system)
    )
    return explore(config, target_cycle_time=TCT)


def test_bench_fig6_timing_optimization(benchmark, mpeg2_system,
                                        mpeg2_library):
    result = benchmark.pedantic(
        _run, args=(mpeg2_system, mpeg2_library), rounds=1, iterations=1
    )

    start = result.initial_record
    final = result.final_record

    # Shape assertions (paper: meets 2,000 KCycles, ~2x speed-up, area up,
    # first action is timing optimization, an area-recovery iteration
    # violates along the way).
    assert float(start.cycle_time) / 1000 > 3000  # M2 starts well above
    assert result.history[1].action == "timing_optimization"
    assert final.meets_target
    assert result.speedup >= 1.7
    assert final.area > start.area
    violations = [
        r for r in result.history[1:]
        if r.action == "area_recovery" and not r.meets_target
    ]
    assert violations, "expected the Fig. 6 violation/recovery dynamic"

    benchmark.extra_info.update(
        {
            "target_kcycles": TCT // 1000,
            "start_ct_kcycles": round(float(start.cycle_time) / 1000, 1),
            "final_ct_kcycles": round(float(final.cycle_time) / 1000, 1),
            "speedup": round(result.speedup, 2),
            "area_overhead_pct": round(100 * result.area_change, 2),
            "iterations": len(result.history) - 1,
        }
    )
    rows = [
        (
            point["iteration"],
            point["action"],
            f"{point['cycle_time']:.0f} KCycles",
            f"{point['area']:.3f} mm2",
            "meets" if point["meets_target"] else "VIOLATES",
        )
        for point in series(result, cycle_time_unit=1000, area_unit=1e6)
    ]
    print_table(
        f"Fig. 6 left: timing optimization, TCT = {TCT // 1000} KCycles "
        "(paper: 2x speed-up, +44.57% area, 4 iterations)",
        rows,
    )
    print(f"  speed-up {result.speedup:.2f}x, "
          f"area change {100 * result.area_change:+.2f}%")
