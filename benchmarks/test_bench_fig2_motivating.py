"""FIG2 — Section 2 motivating example: the ordering space and its hazards.

Regenerates the narrative numbers of Fig. 2 / Section 2: the 36-ordering
space, the deadlocking Listing-1 order (with its circular wait), and the
classification of every ordering as deadlocking or live (with its cycle
time).  The benchmark times the exhaustive classification — the "many
simulations and repeated HLS tool runs" a designer would otherwise need.
"""

from repro.core import motivating_deadlock_ordering
from repro.model import deadlock_cycle
from repro.ordering import exhaustive_search

from conftest import print_table


def test_bench_fig2_order_space_classification(benchmark, motivating):
    result = benchmark(exhaustive_search, motivating)

    assert result.total_orderings == 36
    assert result.deadlocking_orderings == 14
    assert result.best_cycle_time == 12
    assert result.worst_cycle_time == 20

    wait = deadlock_cycle(motivating, motivating_deadlock_ordering(motivating))
    assert wait is not None and set(wait) >= {"d", "g", "f"}

    benchmark.extra_info.update(
        {
            "orderings": result.total_orderings,
            "deadlocking": result.deadlocking_orderings,
            "live": result.live_orderings,
            "best_cycle_time": int(result.best_cycle_time),
            "worst_cycle_time": int(result.worst_cycle_time),
            "listing1_circular_wait": " -> ".join(wait),
        }
    )
    print_table(
        "Fig. 2 / Section 2 (paper: 36 orderings, deadlock on Listing 1)",
        [
            ("orderings", 36, "reproduced", result.total_orderings),
            ("deadlocking", "-", "reproduced", result.deadlocking_orderings),
            ("circular wait", "P2-d-P6-g-P5-f", "reproduced",
             " -> ".join(wait)),
        ],
    )
