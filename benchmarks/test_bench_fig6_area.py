"""FIG6R — Fig. 6 right panel: area-recovery exploration from M2.

"The right-hand side of Fig. 6 shows an area-recovery exploration ...
(TCT = 4,000 KCycles) in order to reduce the area occupation ... the
resulting implementation yields an area reduction of 32.46% with respect
to M2, in exchange for a timing degradation of less than 1%."
"""

from repro.dse import SystemConfiguration, explore, series
from repro.mpeg2 import m2_selection
from repro.ordering import declaration_ordering

from conftest import print_table

TCT = 4_000_000  # the paper's 4,000 KCycles


def _run(system, library):
    config = SystemConfiguration(
        system, library, m2_selection(library), declaration_ordering(system)
    )
    return explore(config, target_cycle_time=TCT)


def test_bench_fig6_area_recovery(benchmark, mpeg2_system, mpeg2_library):
    result = benchmark.pedantic(
        _run, args=(mpeg2_system, mpeg2_library), rounds=1, iterations=1
    )

    start = result.initial_record
    final = result.final_record

    # Shape assertions (paper: starting point already meets the target,
    # the first step is area recovery, final area ~32% below M2, timing
    # within 1% of the start).
    assert start.meets_target
    assert result.history[1].action == "area_recovery"
    assert final.meets_target
    area_reduction = -result.area_change
    assert 0.25 <= area_reduction <= 0.40
    ct_degradation = (
        float(final.cycle_time) - float(start.cycle_time)
    ) / float(start.cycle_time)
    assert ct_degradation <= 0.01  # "less than 1%"

    benchmark.extra_info.update(
        {
            "target_kcycles": TCT // 1000,
            "start_ct_kcycles": round(float(start.cycle_time) / 1000, 1),
            "final_ct_kcycles": round(float(final.cycle_time) / 1000, 1),
            "area_reduction_pct": round(100 * area_reduction, 2),
            "ct_degradation_pct": round(100 * ct_degradation, 2),
            "iterations": len(result.history) - 1,
        }
    )
    rows = [
        (
            point["iteration"],
            point["action"],
            f"{point['cycle_time']:.0f} KCycles",
            f"{point['area']:.3f} mm2",
            "meets" if point["meets_target"] else "VIOLATES",
        )
        for point in series(result, cycle_time_unit=1000, area_unit=1e6)
    ]
    print_table(
        f"Fig. 6 right: area recovery, TCT = {TCT // 1000} KCycles "
        "(paper: -32.46% area, <1% slower, 3 iterations)",
        rows,
    )
    print(f"  area change {100 * result.area_change:+.2f}%, "
          f"CT change {100 * ct_degradation:+.2f}%")
