"""Extension bench: bus-width optimization on the MPEG-2 interconnect.

The paper characterizes channel latencies from "the quantity of the data
to be transferred and the physical constraints imposed by the HLS tool";
this bench treats those physical constraints as a knob: starting from
8-element lanes everywhere, let :func:`repro.hls.optimize_widths` pick the
cheapest per-channel widths that hold M1's cycle time — showing which of
the 60 channels actually earn their wires.
"""

from repro.dse import SystemConfiguration
from repro.hls import optimize_widths
from repro.model import analyze_system
from repro.mpeg2 import CHANNEL_SPECS, m1_selection
from repro.ordering import declaration_ordering

from conftest import print_table


def _volumes() -> dict[str, int]:
    return {
        name: spec[2] for name, spec in CHANNEL_SPECS.items()
    }


def test_bench_mpeg2_bus_widths(benchmark, mpeg2_system, mpeg2_library):
    config = SystemConfiguration(
        mpeg2_system, mpeg2_library, m1_selection(mpeg2_library),
        declaration_ordering(mpeg2_system),
    )
    latencies = config.process_latencies()
    baseline = analyze_system(
        mpeg2_system, config.ordering, process_latencies=latencies
    )
    target = baseline.cycle_time  # hold M1's performance exactly

    result = benchmark.pedantic(
        optimize_widths,
        args=(mpeg2_system, _volumes(), target),
        kwargs={
            "widths": (8, 16, 32, 64),
            "ordering": config.ordering,
            "process_latencies": latencies,
        },
        rounds=1,
        iterations=1,
    )

    assert result.feasible
    assert result.cycle_time <= target
    wide = {name: w for name, w in result.widths.items() if w > 8}
    narrow = sum(1 for w in result.widths.values() if w == 8)
    assert narrow > 0, "most control channels should stay narrow"

    benchmark.extra_info.update(
        {
            "target_kcycles": round(float(target) / 1000, 1),
            "achieved_kcycles": round(float(result.cycle_time) / 1000, 1),
            "total_lanes": int(result.wire_area),
            "widened_channels": len(wide),
            "narrow_channels": narrow,
        }
    )
    print_table(
        "MPEG-2 bus widths holding M1's cycle time",
        [("total lanes", int(result.wire_area)),
         ("widened channels", len(wide)),
         ("kept at 8 lanes", narrow)]
        + sorted(wide.items(), key=lambda kv: -kv[1])[:10],
    )
