"""GEN — generated workload suite: the full flow over seeded families.

Three claims.  First, every registered workload family regenerates
deterministically from ``(seed, size)`` and survives the entire flow —
lint clean of errors, Algorithm 1 ordering, exhaustive deadlock
verification (POR + symmetry), and exact cycle-time analysis.  Second,
replication declared by the composition layer arrives at ERM701 as
*declared* families (the diagnostic says so) rather than being
rediscovered by canonical labeling.  Third, the declared families seed
the explorer's orbit dedup: sweeping three targets over an OFDM workload
with a shared orbit set machine-checks at least one ordering and serves
at least one later verification from the orbit, metered on
``dse.sym.verify_deduped``.

The measurements are published as ``BENCH_workloads.json`` for CI.
"""

import json
from pathlib import Path

from repro.core.system import ChannelOrdering
from repro.dse import SystemConfiguration
from repro.dse.sweep import sweep_targets
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.lint import Severity, lint_system
from repro.model import analyze_system
from repro.obs import DseProfiler
from repro.ordering import channel_ordering
from repro.verify import check_deadlock
from repro.workloads import family_names, generate

#: Families the pipeline bench sweeps (all of them; the acceptance floor
#: is three).
PIPELINE_SEED = 7
VERIFY_BUDGET_STATES = 200_000
VERIFY_BUDGET_SECONDS = 30.0
REPORT = Path(__file__).resolve().parents[1] / "BENCH_workloads.json"

_report: dict = {"experiment": "GEN"}


def _run_pipeline(family: str) -> dict:
    """lint -> order -> verify -> analyze for one generated workload."""
    workload = generate(family, seed=PIPELINE_SEED)
    system = workload.system
    lint = lint_system(system)
    assert not lint.has_at_least(Severity.ERROR), (
        f"{workload.name} must lint clean of errors"
    )
    ordering = channel_ordering(system)
    verdict = check_deadlock(
        system,
        ordering,
        por=True,
        sym=True,
        budget_states=VERIFY_BUDGET_STATES,
        budget_seconds=VERIFY_BUDGET_SECONDS,
    )
    assert verdict.conclusive and not verdict.deadlocked, (
        f"{workload.name} must verify deadlock-free "
        f"(verdict {verdict.verdict.value})"
    )
    cycle_time = analyze_system(system, ordering).cycle_time
    return {
        "workload": workload.name,
        "processes": len(system.process_names),
        "channels": len(system.channel_names),
        "declared_families": [f.name for f in system.declared_families],
        "verify_states": verdict.states_explored,
        "cycle_time": float(cycle_time),
    }


def test_bench_workloads_pipeline(benchmark):
    rows = [_run_pipeline(family) for family in family_names()]
    assert len(rows) >= 3, "the suite must cover at least three families"
    benchmark.pedantic(
        _run_pipeline, args=("ofdm-rx",), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    _report["pipeline"] = rows
    benchmark.extra_info.update({"families": len(rows)})
    for row in rows:
        print(
            f"\n{row['workload']}: {row['processes']}p/{row['channels']}c "
            f"verified in {row['verify_states']} states, "
            f"cycle time {row['cycle_time']:g}, "
            f"families {row['declared_families'] or '(none)'}"
        )


def test_bench_workloads_declared_not_rediscovered(benchmark):
    def declared_erm701() -> dict:
        counts: dict[str, int] = {}
        for family in ("ofdm-rx", "noc-torus", "butterfly"):
            workload = generate(family, seed=PIPELINE_SEED)
            assert workload.system.declared_families, (
                f"{workload.name} must ship declared families"
            )
            result = lint_system(workload.system)
            findings = [
                d for d in result.diagnostics if d.rule == "ERM701"
            ]
            assert findings, f"{workload.name} must report ERM701"
            for diagnostic in findings:
                assert "declared by the composition layer" in (
                    diagnostic.message
                ), (
                    f"{workload.name}: ERM701 must report the declared "
                    f"family, not a rediscovered orbit: "
                    f"{diagnostic.message}"
                )
            counts[workload.name] = len(findings)
        return counts

    counts = benchmark.pedantic(
        declared_erm701, rounds=3, iterations=1, warmup_rounds=0
    )
    _report["declared_families"] = counts
    benchmark.extra_info.update(counts)
    print("\nERM701 declared-family findings: " + ", ".join(
        f"{name}={n}" for name, n in counts.items()
    ))


def test_bench_workloads_orbit_dedup(benchmark):
    workload = generate("ofdm-rx", seed=3, size=3)
    system = workload.system
    # Two implementations per worker; replicated lanes share base
    # latencies by construction, so lane-permuted candidates stay
    # isomorphic and the orbit dedup has something to collapse.
    library = ImplementationLibrary(
        ParetoSet.from_points(
            process.name,
            [
                Implementation(
                    f"{process.name}.small", max(process.latency, 1) * 2,
                    10.0,
                ),
                Implementation(
                    f"{process.name}.fast", max(process.latency, 1), 20.0
                ),
            ],
        )
        for process in system.workers()
    )
    config = SystemConfiguration.initial(
        system,
        library,
        ordering=ChannelOrdering.declaration_order(system),
        pick="smallest",
    )
    initial_ct = float(
        analyze_system(
            system,
            config.ordering,
            process_latencies=config.process_latencies(),
        ).cycle_time
    )
    targets = [initial_ct * 0.9, initial_ct * 0.7, initial_ct * 0.5]

    def swept() -> tuple[int, int, int]:
        profiler = DseProfiler()
        seen: set[str] = set()
        points = sweep_targets(
            config,
            targets=targets,
            batch=False,
            profiler=profiler,
            sym_seen=seen,
        )
        assert len(points) == len(targets)
        runs = profiler.metrics.counter("dse.verify.runs").value
        deduped = profiler.metrics.counter(
            "dse.sym.verify_deduped"
        ).value
        return runs, deduped, len(seen)

    runs, deduped, classes = benchmark.pedantic(
        swept, rounds=3, iterations=1, warmup_rounds=0
    )
    assert deduped >= 1, (
        "sweeping a replicated DSL workload must serve at least one "
        f"verification from the orbit set (runs={runs}, "
        f"deduped={deduped})"
    )
    assert classes <= runs
    section = {
        "workload": workload.name,
        "verify_runs": runs,
        "verify_deduped": deduped,
        "orbit_classes": classes,
    }
    _report["orbit_dedup"] = section
    benchmark.extra_info.update(section)
    REPORT.write_text(json.dumps(_report, indent=2) + "\n")
    print(
        f"\n{workload.name}: {runs} verify runs, {deduped} served from "
        f"the shared orbit set ({classes} canonical classes)"
    )
