"""SCAL — Section 6 "Analysis of scalability".

"We generated graphs with up to 10,000 processes interconnected with
15,000 channels ... The experimental results demonstrate that our
approach scales well, as ERMES takes a time of the order of a few minutes
in the worst cases."

One benchmark per size runs Algorithm 1 plus the performance analysis on
a synthetic SoC of that size; the 10,000-process point (the paper's
maximum) is asserted to finish well inside the paper's "few minutes".
"""

import time

import pytest

from repro.core import synthetic_soc
from repro.model import analyze_system
from repro.ordering import channel_ordering


def _order_and_analyze(system):
    ordering = channel_ordering(system)
    # Float mode matches how a production tool would analyze 25k+ node
    # graphs; exactness is validated against small graphs in the tests.
    return analyze_system(system, ordering, exact=False)


@pytest.mark.parametrize("n_processes", [100, 1000, 4000])
def test_bench_scalability_sweep(benchmark, n_processes):
    system = synthetic_soc(n_processes, seed=0)
    performance = benchmark.pedantic(
        _order_and_analyze, args=(system,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert performance.cycle_time > 0
    benchmark.extra_info.update(
        {
            "processes": n_processes,
            "channels": len(system.channels),
            "cycle_time": float(performance.cycle_time),
        }
    )


def test_bench_scalability_paper_maximum(benchmark):
    """The paper's largest instance: 10,000 processes / ~15,000 worker
    channels, required to finish in minutes (ours: seconds)."""
    system = synthetic_soc(10_000, seed=0)
    start = time.perf_counter()
    performance = benchmark.pedantic(
        _order_and_analyze, args=(system,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    elapsed = time.perf_counter() - start
    assert performance.cycle_time > 0
    assert elapsed < 300, "must stay within the paper's 'few minutes'"
    benchmark.extra_info.update(
        {
            "processes": 10_000,
            "channels": len(system.channels),
            "elapsed_s": round(elapsed, 2),
        }
    )
    print(f"\n10,000 processes / {len(system.channels)} channels: "
          f"{elapsed:.1f}s (paper: minutes)")
