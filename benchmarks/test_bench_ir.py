"""IR — compile once, run everywhere must actually pay for itself.

The lowered core IR (:mod:`repro.ir`) fronts every consumer of a
``(system, ordering)`` pair, so it carries two quantified promises:

* **lowering is cheap** — a cold :func:`repro.ir.lower` costs less than
  5% of a single simulation run, so no caller needs to think twice about
  lowering eagerly (and a warm call is a dict probe);
* **the array simulator is fast** — executing the dense integer program
  beats the frozen interpretive engine
  (:class:`repro.sim.ReferenceSimulator`, the pre-IR implementation kept
  verbatim as oracle and baseline) by at least 1.5x, with bit-identical
  results.

Both are asserted here so a refactor that quietly fattens the lowering
or slows the hot loop fails the benchmark suite, not a profile later.
"""

import time

from repro.core import synthetic_soc
from repro.ir import clear_lowering_cache, lower
from repro.ordering import channel_ordering
from repro.sim import ReferenceSimulator, Simulator

#: Enforced floor on array-engine vs interpretive-engine speed (measured
#: ~3.8x on this workload; 1.5x leaves room for slow CI machines).
MIN_SPEEDUP = 1.5
#: Enforced ceiling on cold lowering cost relative to one simulation.
MAX_LOWERING_FRACTION = 0.05
ITERATIONS = 60
REPEATS = 5


def _system():
    system = synthetic_soc(60, seed=7)
    return system, channel_ordering(system)


def _time_run(simulator_cls, system, ordering, repeats=REPEATS):
    times = []
    results = []
    for _ in range(repeats):
        simulator = simulator_cls(system, ordering)
        start = time.perf_counter()
        results.append(simulator.run(iterations=ITERATIONS))
        times.append(time.perf_counter() - start)
    return min(times), results[-1]


def _time_cold_lowering(system, ordering, repeats=REPEATS):
    times = []
    for _ in range(repeats):
        clear_lowering_cache()
        start = time.perf_counter()
        lower(system, ordering)
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_ir_simulator_speedup(benchmark):
    """The array program runs >= 1.5x the interpretive walk, same bits."""
    system, ordering = _system()
    # Warm imports, the lowering memo, and the branch predictors alike.
    Simulator(system, ordering).run(iterations=2)
    ReferenceSimulator(system, ordering).run(iterations=2)

    t_ir, ir_result = _time_run(Simulator, system, ordering)
    t_ref, ref_result = _time_run(ReferenceSimulator, system, ordering)

    benchmark.pedantic(
        lambda: Simulator(system, ordering).run(iterations=ITERATIONS),
        rounds=3,
        iterations=1,
    )

    speedup = t_ref / t_ir
    benchmark.extra_info.update({
        "ir_engine_s": round(t_ir, 4),
        "reference_engine_s": round(t_ref, 4),
        "speedup": round(speedup, 2),
    })
    print(f"\nIR engine {t_ir*1e3:.1f} ms | reference {t_ref*1e3:.1f} ms | "
          f"speedup x{speedup:.2f}")

    # Same semantics, faster execution — the whole point of the IR.
    assert ir_result == ref_result
    assert speedup >= MIN_SPEEDUP


def test_bench_ir_lowering_cost(benchmark):
    """Cold lowering stays under 5% of one simulation; warm is a probe."""
    system, ordering = _system()
    Simulator(system, ordering).run(iterations=2)

    t_sim, _ = _time_run(Simulator, system, ordering)
    t_cold = _time_cold_lowering(system, ordering)

    lower(system, ordering)  # ensure warm
    start = time.perf_counter()
    for _ in range(100):
        lower(system, ordering)
    t_warm = (time.perf_counter() - start) / 100

    benchmark.pedantic(
        lambda: (clear_lowering_cache(), lower(system, ordering)),
        rounds=3,
        iterations=1,
    )

    fraction = t_cold / t_sim
    benchmark.extra_info.update({
        "cold_lowering_ms": round(t_cold * 1e3, 3),
        "warm_lowering_us": round(t_warm * 1e6, 2),
        "simulation_ms": round(t_sim * 1e3, 2),
        "cold_fraction_of_sim": round(fraction, 4),
    })
    print(f"\ncold lower {t_cold*1e3:.2f} ms "
          f"({fraction:.1%} of a {t_sim*1e3:.1f} ms simulation) | "
          f"warm {t_warm*1e6:.1f} us")

    assert fraction < MAX_LOWERING_FRACTION
    # A warm call must be orders of magnitude below cold (memo working).
    assert t_warm < t_cold / 2
