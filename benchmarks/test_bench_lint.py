"""LINT — static-analysis throughput on a large synthetic SoC.

The linter fronts every simulation and exploration run, so it must be
cheap even on SoC-scale graphs: the full rule catalog — structural rules,
deadlock diagnosis, the Algorithm-1 comparison with its two exact
analyses, and the hygiene sweeps — over a 300-process synthetic SoC has a
hard budget of one second.  The structural pre-flight subset (what the
explorer and the simulator actually run per invocation) must stay in the
low milliseconds.
"""

import time

from repro.core import synthetic_soc
from repro.lint import PREFLIGHT_RULES, lint_system, preflight
from repro.ordering import declaration_ordering


def test_bench_lint_full_catalog_300(benchmark):
    system = synthetic_soc(300, seed=0)
    ordering = declaration_ordering(system)
    start = time.perf_counter()
    result = benchmark.pedantic(
        lint_system, args=(system, ordering), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, "full-catalog lint of 300 processes must be < 1 s"
    # The declaration order of a random SoC leaves cycle time on the
    # table, so the catalog has real work to do (ERM301 runs two exact
    # analyses plus Algorithm 1) — this is not an empty-run measurement.
    assert "ERM301" in result.codes()
    benchmark.extra_info.update(
        {
            "processes": 300,
            "channels": len(system.channels),
            "findings": len(result),
            "codes": ",".join(result.codes()),
            "elapsed_s": round(elapsed, 4),
        }
    )


def test_bench_lint_preflight_300(benchmark):
    system = synthetic_soc(300, seed=0)
    ordering = declaration_ordering(system)
    result = benchmark.pedantic(
        preflight, args=(system, ordering), rounds=5, iterations=1,
        warmup_rounds=1,
    )
    assert result is None  # clean design: preflight returns, not raises
    benchmark.extra_info.update(
        {"processes": 300, "rules": ",".join(PREFLIGHT_RULES)}
    )
