"""ABSINT — abstract interpretation at scale, certificates vs BFS.

Two claims.  First, the fixpoint engine scales far beyond anything the
explicit-state checker can touch: a 300-process buffered pipeline (301
channels, a state space around ``2^301``) analyses — bounds,
invariants, certificate — in under a second.  Second, the certificate
pays off where BFS *does* run: on the 6-stage buffered pipeline the
certificate-backed verdict explores at least 10x fewer states than the
uncertified search (it explores none at all).
"""

import time

from repro.absint import analyze, clear_analysis_cache
from repro.core import SystemBuilder
from repro.verify import Verdict, check_deadlock


def buffered_pipeline(n_stages: int, capacity: int = 1):
    """src -> s0 -> ... -> s(n-1) -> snk, all channels buffered."""
    builder = SystemBuilder(f"bufpipe{n_stages}")
    builder.source("src", latency=1)
    names = [f"s{i}" for i in range(n_stages)]
    for name in names:
        builder.process(name, latency=1)
    builder.sink("snk", latency=1)
    chain = ["src"] + names + ["snk"]
    for i in range(len(chain) - 1):
        builder.channel(
            f"c{i}", chain[i], chain[i + 1], latency=1, capacity=capacity
        )
    return builder.build()


def test_bench_absint_300_process_pipeline(benchmark):
    system = buffered_pipeline(300, capacity=2)

    def run():
        clear_analysis_cache()  # measure the analysis, not the memo
        return analyze(system)

    start = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - start
    assert elapsed < 1.0, (
        f"300-process pipeline must analyse in < 1s (took {elapsed:.3f}s)"
    )
    assert result.deadlock_free
    assert len(result.bounds) == 301
    assert all(bound.hi == 2 for bound in result.bounds)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    benchmark.extra_info.update(
        {
            "processes": 302,
            "channels": 301,
            "rounds": result.rounds,
            "ranked_transitions": len(result.certificate.ranks),
            "one_shot_seconds": elapsed,
        }
    )


def test_bench_absint_certificate_vs_bfs(benchmark):
    system = buffered_pipeline(6)
    searched = check_deadlock(system)
    certified = benchmark.pedantic(
        check_deadlock,
        args=(system,),
        kwargs={"use_certificate": True},
        rounds=3,
        iterations=1,
        warmup_rounds=0,
    )
    assert searched.verdict is certified.verdict is Verdict.DEADLOCK_FREE
    assert certified.states_explored == 0
    ratio = searched.states_explored / max(certified.states_explored, 1)
    assert ratio >= 10.0, (
        "certificate-backed verification must explore >= 10x fewer states "
        f"({searched.states_explored} vs {certified.states_explored})"
    )
    benchmark.extra_info.update(
        {
            "bfs_states": searched.states_explored,
            "certified_states": certified.states_explored,
            "reduction": ratio,
        }
    )
