"""SIMD — batched lock-step simulation must beat sequential runs >= 5x.

The DSE loop evaluates dozens of latency-only neighbors per iteration;
:class:`repro.sim.BatchSimulator` advances them all over one compiled
:class:`~repro.ir.LoweredIR`, executing the shared control path once with
per-lane clocks in ``(B,)`` numpy vectors.  The promise is twofold and
both halves are asserted here:

* **aggregate throughput** — a 64-candidate batch of the motivating
  example finishes >= 5x faster than 64 sequential
  :class:`~repro.sim.Simulator` runs;
* **bit-identity** — every one of the 64 lanes equals the frozen
  :class:`~repro.sim.ReferenceSimulator`'s result for that candidate
  alone (and the lane-0 trace matches when a sink is attached).
"""

import random
import time

from repro.core import ChannelOrdering, motivating_example
from repro.obs.sinks import MemorySink
from repro.sim import (
    BatchLane,
    BatchSimulator,
    ReferenceSimulator,
    Simulator,
)

#: Enforced floor on batch vs sequential aggregate throughput (measured
#: well above this on a 64-lane batch; 5x is the registry's claim).
MIN_SPEEDUP = 5.0
N_LANES = 64
ITERATIONS = 60
REPEATS = 5


def _setup():
    system = motivating_example()
    ordering = ChannelOrdering.declaration_order(system)
    rng = random.Random(42)
    names = list(system.process_names)
    lanes = [BatchLane()] + [
        BatchLane(process_latencies={n: rng.randint(1, 20) for n in names})
        for _ in range(N_LANES - 1)
    ]
    return system, ordering, lanes


def _time_batch(system, ordering, lanes):
    times, results = [], None
    for _ in range(REPEATS):
        simulator = BatchSimulator(system, ordering, lanes=lanes)
        start = time.perf_counter()
        results = simulator.run(iterations=ITERATIONS)
        times.append(time.perf_counter() - start)
    return min(times), results


def _time_sequential(system, ordering, lanes):
    times = []
    for _ in range(REPEATS):
        simulators = [
            Simulator(
                system, ordering,
                process_latencies=lane.process_latencies or {},
            )
            for lane in lanes
        ]
        start = time.perf_counter()
        for simulator in simulators:
            simulator.run(iterations=ITERATIONS)
        times.append(time.perf_counter() - start)
    return min(times)


def test_bench_simd_batch_speedup(benchmark):
    """64 lanes in lock-step >= 5x faster than 64 sequential runs."""
    system, ordering, lanes = _setup()
    # Warm the lowering memo and branch predictors on both paths.
    BatchSimulator(system, ordering, lanes=lanes[:2]).run(iterations=2)
    Simulator(system, ordering).run(iterations=2)

    t_batch, results = _time_batch(system, ordering, lanes)
    t_seq = _time_sequential(system, ordering, lanes)

    benchmark.pedantic(
        lambda: BatchSimulator(system, ordering, lanes=lanes).run(
            iterations=ITERATIONS
        ),
        rounds=3,
        iterations=1,
    )

    speedup = t_seq / t_batch
    benchmark.extra_info.update({
        "lanes": N_LANES,
        "batch_s": round(t_batch, 4),
        "sequential_s": round(t_seq, 4),
        "speedup": round(speedup, 2),
    })
    print(f"\nbatch {t_batch*1e3:.1f} ms | sequential {t_seq*1e3:.1f} ms | "
          f"speedup x{speedup:.2f} over {N_LANES} lanes")

    # Every lane bit-identical to the frozen reference engine.
    for lane, result in zip(lanes, results):
        expected = ReferenceSimulator(
            system, ordering,
            process_latencies=lane.process_latencies or {},
        ).run(iterations=ITERATIONS)
        assert result == expected

    assert speedup >= MIN_SPEEDUP


def test_bench_simd_traced_lane_identical(benchmark):
    """A traced lane streams the identical events the scalar engine does."""
    system, ordering, lanes = _setup()
    sink_batch, sink_scalar = MemorySink(), MemorySink()
    traced = [BatchLane(record_trace=True, sinks=(sink_batch,))] + lanes[1:]

    results = benchmark.pedantic(
        lambda: BatchSimulator(system, ordering, lanes=traced).run(
            iterations=ITERATIONS
        ),
        rounds=1,
        iterations=1,
    )
    expected = Simulator(
        system, ordering, record_trace=True, sinks=(sink_scalar,)
    ).run(iterations=ITERATIONS)

    assert results[0].trace == expected.trace
    assert results[0] == expected
    n = len(sink_scalar._events)
    # The benchmarked lambda may have run more than once; the scalar
    # emission order must prefix-match every batched replay.
    assert sink_batch._events[:n] == sink_scalar._events
    benchmark.extra_info.update({"events_per_run": n})
