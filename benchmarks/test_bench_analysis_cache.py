"""CACHE — the memoized/incremental analysis engine on the DSE hot loop.

Quantifies the three layers of ``repro.perf`` on realistic workloads:

* **result hits** — replaying an identical analysis stream (the pattern of
  repeated explorations and target sweeps) through a warm
  :class:`~repro.perf.PerformanceEngine`, asserted >= 3x faster than the
  uncached reference path;
* **incremental structure reuse** — a latency-only stream (the explorer's
  per-iteration pattern) against from-scratch TMG builds;
* **end-to-end** — a full ERMES exploration with and without a warm shared
  engine.

Results are asserted bit-identical to the uncached path on every request.
"""

import time

import pytest

from repro.core import ChannelOrdering, synthetic_soc
from repro.dse import Explorer, SystemConfiguration
from repro.hls import Implementation, ImplementationLibrary, ParetoSet
from repro.model import analyze_system
from repro.ordering import channel_ordering
from repro.perf import PerformanceEngine

SPEEDUP_FLOOR = 3.0


def _latency_stream(system, repeats=40):
    """The hot-loop shape: same structure, rotating latency overrides."""
    workers = [p.name for p in system.workers()]
    stream = []
    for i in range(repeats):
        scale = 1 + (i % 5)
        stream.append({
            name: system.process(name).latency * scale for name in workers
        })
    return stream


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def test_bench_result_cache_replay(benchmark, motivating):
    """A replayed analysis stream must hit the result cache and be >= 3x
    faster than the uncached reference (the acceptance criterion)."""
    ordering = ChannelOrdering.declaration_order(motivating)
    stream = _latency_stream(motivating, repeats=40)
    engine = PerformanceEngine(float_screen=False)

    def uncached():
        return [
            analyze_system(motivating, ordering, process_latencies=lat)
            for lat in stream
        ]

    def cached():
        return [
            analyze_system(motivating, ordering, process_latencies=lat,
                           perf_engine=engine)
            for lat in stream
        ]

    reference, t_uncached = _timed(uncached)
    warmup = cached()  # first pass: misses (incremental builds)
    assert warmup == reference  # bit-identical, report included
    hot, t_cached = benchmark.pedantic(
        lambda: _timed(cached), rounds=1, iterations=1, warmup_rounds=0,
    )
    assert hot == reference
    speedup = t_uncached / t_cached
    stats = engine.results.stats
    assert stats.hits >= len(stream), "replay must be served from cache"
    assert speedup >= SPEEDUP_FLOOR, (
        f"warm cache replay only {speedup:.1f}x faster "
        f"(required >= {SPEEDUP_FLOOR}x): {stats}"
    )
    benchmark.extra_info.update({
        "uncached_s": round(t_uncached, 4),
        "cached_s": round(t_cached, 4),
        "speedup": round(speedup, 1),
        "hit_rate": stats.hit_rate,
    })
    print(f"\nresult-cache replay: {t_uncached*1e3:.1f}ms -> "
          f"{t_cached*1e3:.1f}ms ({speedup:.0f}x), {stats}")


def test_bench_incremental_structure_reuse(benchmark):
    """Latency-only changes on a mid-size SoC: the incremental path skips
    TMG construction + liveness and must beat from-scratch rebuilds."""
    system = synthetic_soc(300, seed=7)
    ordering = channel_ordering(system)  # declaration order deadlocks
    stream = _latency_stream(system, repeats=10)

    def uncached():
        return [
            analyze_system(system, ordering, process_latencies=lat,
                           exact=False)
            for lat in stream
        ]

    def incremental():
        # Fresh engine each call: result cache cannot hit across the
        # distinct latency maps; only structure reuse is in play.
        engine = PerformanceEngine(max_results=0, float_screen=False)
        return [
            analyze_system(system, ordering, process_latencies=lat,
                           exact=False, perf_engine=engine)
            for lat in stream
        ]

    reference, t_uncached = _timed(uncached)
    got, t_incremental = benchmark.pedantic(
        lambda: _timed(incremental), rounds=1, iterations=1, warmup_rounds=0,
    )
    assert got == reference
    speedup = t_uncached / t_incremental
    benchmark.extra_info.update({
        "uncached_s": round(t_uncached, 4),
        "incremental_s": round(t_incremental, 4),
        "speedup": round(speedup, 2),
    })
    print(f"\nincremental structures (300 processes, 10 latency sets): "
          f"{t_uncached*1e3:.0f}ms -> {t_incremental*1e3:.0f}ms "
          f"({speedup:.1f}x)")
    assert speedup > 1.0, "structure reuse must not be slower than rebuilds"


def test_bench_explorer_end_to_end(benchmark, motivating):
    """A repeated ERMES run against a warm shared engine: the second run's
    analyses are all result-cache hits."""
    sets = []
    for process in motivating.workers():
        base = process.latency
        sets.append(ParetoSet.from_points(process.name, [
            Implementation(f"{process.name}.small", base * 4, 10.0),
            Implementation(f"{process.name}.mid", base * 2, 16.0),
            Implementation(f"{process.name}.fast", base, 26.0),
        ]))
    library = ImplementationLibrary(sets)
    config = SystemConfiguration.initial(
        motivating, library,
        ordering=ChannelOrdering.declaration_order(motivating),
        pick="smallest",
    )

    engine = PerformanceEngine()
    cold, t_cold = _timed(
        lambda: Explorer(target_cycle_time=20, perf_engine=engine).run(config)
    )
    warm, t_warm = benchmark.pedantic(
        lambda: _timed(
            lambda: Explorer(target_cycle_time=20,
                             perf_engine=engine).run(config)
        ),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert warm.history == cold.history
    stats = engine.results.stats
    assert stats.hits > 0
    benchmark.extra_info.update({
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "hit_rate": stats.hit_rate,
    })
    print(f"\nERMES rerun: {t_cold*1e3:.1f}ms cold -> {t_warm*1e3:.1f}ms "
          f"warm, {stats}")
