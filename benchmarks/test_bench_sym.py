"""SYM — structural symmetry: quotient search, orbit dedup, labeling cost.

Three claims.  First, quotient-space verification composes with the
stubborn-set reduction and pays on genuinely symmetric designs: on an
8-stage rotationally symmetric ring with per-stage testbenches the
quotient search must explore at least 4x fewer states than POR alone,
with the same verdict.  Second, orbit-canonical deduplication of the
ordering space cuts exhaustive-search analyses at least 2x while the
reported aggregates stay bit-identical to the plain sweep.  Third,
canonical labeling is cheap enough to run by default: analyzing a
60-process SoC costs under 5% of one simulation of that SoC.

The measurements are published as ``BENCH_sym.json`` for CI to upload.
"""

import json
import time
from pathlib import Path

from repro.core import SystemBuilder, synthetic_soc
from repro.core.system import ChannelOrdering
from repro.ir import lower
from repro.ordering import channel_ordering
from repro.ordering.exhaustive import exhaustive_search
from repro.sim import Simulator
from repro.sym import analyze_symmetry
from repro.verify import check_deadlock

#: Enforced floor on POR-only vs POR+quotient explored states (measured
#: ~6.3x on the 8-stage ring; 4x leaves headroom for checker changes).
MIN_QUOTIENT_REDUCTION = 4.0
#: Enforced floor on orderings-evaluated vs canonical classes (measured
#: 16x on the two-lane family; 2x is the acceptance bar).
MIN_DEDUP_REDUCTION = 2.0
MAX_LABELING_FRACTION = 0.05
SIM_ITERATIONS = 60
REPORT = Path(__file__).resolve().parents[1] / "BENCH_sym.json"

_report: dict = {"experiment": "SYM"}


def ring_with_taps(k=8, capacity=2, tokens=1):
    """k-stage rotationally symmetric ring, each stage with src + snk.

    Channels are declared grouped by role (all in*, all ring*, all
    out*) so every stage's statement order is aligned with the rotation
    and the strict automorphism group contains Z_k.  Capacity-2 ring
    channels carrying one token keep many interleavings live at once —
    the regime where the stubborn-set reduction alone is weak and the
    quotient earns its keep.
    """
    b = SystemBuilder(f"ringtap{k}")
    for i in range(k):
        b.source(f"src{i}", latency=1)
        b.process(f"st{i}", latency=1)
        b.sink(f"snk{i}", latency=1)
    for i in range(k):
        b.channel(f"in{i}", f"src{i}", f"st{i}", capacity=1)
    for i in range(k):
        b.channel(
            f"ring{i}", f"st{i}", f"st{(i + 1) % k}",
            capacity=capacity, initial_tokens=tokens,
        )
    for i in range(k):
        b.channel(f"out{i}", f"st{i}", f"snk{i}", capacity=1)
    return b.build()


def two_port_lanes(lanes=2):
    """Lanes whose worker reads/writes an interchangeable A/B pair."""
    b = SystemBuilder(f"twolanes{lanes}")
    for i in range(lanes):
        b.source(f"srcA{i}", latency=1)
        b.source(f"srcB{i}", latency=1)
        b.process(f"w{i}", latency=3)
        b.sink(f"snkA{i}", latency=1)
        b.sink(f"snkB{i}", latency=1)
    for i in range(lanes):
        b.channel(f"a{i}", f"srcA{i}", f"w{i}", capacity=2)
        b.channel(f"b{i}", f"srcB{i}", f"w{i}", capacity=2)
    for i in range(lanes):
        b.channel(f"oa{i}", f"w{i}", f"snkA{i}", capacity=2)
        b.channel(f"ob{i}", f"w{i}", f"snkB{i}", capacity=2)
    return b.build()


def test_bench_sym_quotient_state_reduction(benchmark):
    system = ring_with_taps(8)
    plain = check_deadlock(system, por=True)
    quotient = benchmark.pedantic(
        check_deadlock, args=(system,), kwargs={"por": True, "sym": True},
        rounds=3, iterations=1, warmup_rounds=0,
    )
    assert plain.conclusive and quotient.conclusive
    assert quotient.deadlocked == plain.deadlocked
    ratio = plain.states_explored / quotient.states_explored
    assert ratio >= MIN_QUOTIENT_REDUCTION, (
        f"quotient must explore >= {MIN_QUOTIENT_REDUCTION}x fewer states "
        f"than POR alone ({plain.states_explored} vs "
        f"{quotient.states_explored})"
    )
    section = {
        "stages": 8,
        "por_states": plain.states_explored,
        "quotient_states": quotient.states_explored,
        "reduction_x": round(ratio, 2),
        "sym_merged": quotient.sym_merged,
        "verdicts_agree": True,
    }
    _report["quotient"] = section
    benchmark.extra_info.update(section)
    print(
        f"\nPOR {plain.states_explored} states | POR+sym "
        f"{quotient.states_explored} states | x{ratio:.2f} reduction"
    )


def test_bench_sym_ordering_dedup(benchmark):
    system = two_port_lanes(2)
    plain = exhaustive_search(system)
    deduped = benchmark.pedantic(
        exhaustive_search, args=(system,), kwargs={"sym_dedup": True},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # Bit-identical aggregates: dedup reuses class results, never skips.
    assert deduped.total_orderings == plain.total_orderings
    assert deduped.deadlocking_orderings == plain.deadlocking_orderings
    assert deduped.best_cycle_time == plain.best_cycle_time
    assert deduped.worst_cycle_time == plain.worst_cycle_time
    assert deduped.best_ordering == plain.best_ordering
    analyses = deduped.sym_classes
    ratio = deduped.total_orderings / analyses
    assert ratio >= MIN_DEDUP_REDUCTION, (
        f"orbit dedup must cut analyses >= {MIN_DEDUP_REDUCTION}x "
        f"({deduped.total_orderings} orderings vs {analyses} classes)"
    )
    section = {
        "orderings": deduped.total_orderings,
        "canonical_classes": analyses,
        "deduped": deduped.sym_deduped,
        "reduction_x": round(ratio, 2),
        "bit_identical": True,
    }
    _report["ordering_dedup"] = section
    benchmark.extra_info.update(section)
    print(
        f"\n{deduped.total_orderings} orderings | {analyses} canonical "
        f"classes | x{ratio:.2f} fewer analyses"
    )


def test_bench_sym_labeling_cost(benchmark):
    system = synthetic_soc(60, seed=7)
    ordering = channel_ordering(system)
    ir = lower(system, ordering)
    Simulator(system, ordering).run(iterations=2)  # warm the machinery

    t_sim = min(
        _timed(lambda: Simulator(system, ordering).run(
            iterations=SIM_ITERATIONS
        ))
        for _ in range(3)
    )
    t_label = min(
        _timed(lambda: analyze_symmetry(ir)) for _ in range(3)
    )
    benchmark.pedantic(
        analyze_symmetry, args=(ir,), rounds=3, iterations=1,
        warmup_rounds=0,
    )
    fraction = t_label / t_sim
    assert fraction < MAX_LABELING_FRACTION, (
        f"canonical labeling must cost < {MAX_LABELING_FRACTION:.0%} of "
        f"one simulation ({t_label*1e3:.2f} ms vs {t_sim*1e3:.2f} ms)"
    )
    section = {
        "processes": len(system.processes),
        "channels": len(system.channels),
        "labeling_ms": round(t_label * 1e3, 3),
        "simulation_ms": round(t_sim * 1e3, 3),
        "fraction_of_sim": round(fraction, 4),
    }
    _report["labeling"] = section
    benchmark.extra_info.update(section)
    REPORT.write_text(json.dumps(_report, indent=2) + "\n")
    print(
        f"\nlabeling {t_label*1e3:.2f} ms "
        f"({fraction:.1%} of a {t_sim*1e3:.1f} ms simulation)"
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
