"""Extension bench: the MPEG-2 system-level Pareto frontier.

Section 6 frames ERMES as enabling "richer design-space explorations" than
the fixed Pareto set of the compositional flow it builds on.  This bench
realizes one: sweeping the target cycle time from relaxed to aggressive
and collecting the best feasible configuration per target — the
latency/area frontier of the whole encoder with reordering in the loop.
"""

from repro.dse import SystemConfiguration, pareto_points, sweep_table, sweep_targets
from repro.mpeg2 import m2_selection
from repro.ordering import declaration_ordering

from conftest import print_table

TARGETS = [4_500_000, 3_500_000, 2_800_000, 2_200_000, 1_900_000]


def _run(system, library):
    config = SystemConfiguration(
        system, library, m2_selection(library), declaration_ordering(system)
    )
    return sweep_targets(config, TARGETS, max_iterations=8)


def test_bench_mpeg2_pareto_sweep(benchmark, mpeg2_system, mpeg2_library):
    points = benchmark.pedantic(
        _run, args=(mpeg2_system, mpeg2_library), rounds=1, iterations=1
    )

    feasible = [p for p in points if p.feasible]
    assert len(feasible) >= 3
    frontier = pareto_points(points)
    # the frontier trades monotonically: faster costs area
    cts = [float(p.cycle_time) for p in frontier]
    areas = [p.area for p in frontier]
    assert cts == sorted(cts)
    assert areas == sorted(areas, reverse=True)

    benchmark.extra_info.update(
        {
            "targets": len(points),
            "feasible": len(feasible),
            "frontier_size": len(frontier),
        }
    )
    print_table(
        "MPEG-2 system-level Pareto frontier (cycle time vs area)",
        [
            (f"{float(p.cycle_time) / 1000:.0f} KCycles",
             f"{p.area / 1e6:.3f} mm2")
            for p in frontier
        ],
    )
    print(sweep_table(points, area_unit=1e6, cycle_time_unit=1000))
