"""FIG3 — the TMG model of Section 3 (Fig. 3 shows P2's portion).

Regenerates the structural facts of the model — chain places per process,
channel transitions fed by put/get place pairs, the initial marking rule —
and times model construction plus Howard analysis (the operation the
methodology performs at every exploration iteration).
"""

from repro.core import motivating_suboptimal_ordering
from repro.model import build_tmg
from repro.tmg import analyze

from conftest import print_table


def _build_and_analyze(system, ordering):
    model = build_tmg(system, ordering)
    return model, analyze(model.tmg)


def test_bench_fig3_model_build_and_analysis(benchmark, motivating):
    ordering = motivating_suboptimal_ordering(motivating)
    model, report = benchmark(_build_and_analyze, motivating, ordering)
    tmg = model.tmg

    # Fig. 3 structure for P2: channel a feeds L2 feeds puts b, f, d.
    assert tmg.place("P2/comp").source == "ch:a"
    assert tmg.place("P2/comp").target == "proc:P2"
    feeders = {tmg.place(p).name for p in tmg.input_places("ch:b")}
    assert feeders == {"P2/put:b", "P3/get:b"}

    # Initial marking: first get-place of each process + source put-place.
    marked = sorted(n for n, t in tmg.initial_marking().items() if t)
    assert "Psrc/put:a" in marked and "P2/get:a" in marked

    assert report.cycle_time == 20

    benchmark.extra_info.update(
        {
            "transitions": len(tmg.transitions),
            "places": len(tmg.places),
            "initial_tokens": sum(tmg.initial_marking().values()),
            "cycle_time": int(report.cycle_time),
        }
    )
    print_table(
        "Fig. 3 TMG model (suboptimal ordering)",
        [
            ("transitions", len(tmg.transitions)),
            ("places", len(tmg.places)),
            ("marked places", len(marked)),
            ("cycle time", report.cycle_time, "(paper: 20, throughput 0.05)"),
        ],
    )
