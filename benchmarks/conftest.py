"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4 for the experiment index) and reports the reproduced numbers
through ``benchmark.extra_info`` as well as stdout (run with ``-s`` to see
the rows).
"""

from __future__ import annotations

import pytest

from repro.core import motivating_example
from repro.mpeg2 import build_mpeg2_library, build_mpeg2_system


@pytest.fixture(scope="session")
def motivating():
    return motivating_example()


@pytest.fixture(scope="session")
def mpeg2_system():
    return build_mpeg2_system()


@pytest.fixture(scope="session")
def mpeg2_library():
    return build_mpeg2_library()


def print_table(title: str, rows: list[tuple]) -> None:
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + "  ".join(str(cell) for cell in row))
