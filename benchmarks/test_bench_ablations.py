"""Ablation benches for the design choices called out in DESIGN.md §6.

Not paper artifacts, but quantified justifications of implementation
choices: the cycle-time engine (Howard vs Lawler vs enumeration), exact
Fraction vs float arithmetic in Howard, and the ILP backends.
"""

import pytest

from repro.core import motivating_example, synthetic_soc
from repro.ilp import Choice, MultiChoiceProblem, branch_bound, knapsack, scipy_backend
from repro.model import build_tmg
from repro.ordering import channel_ordering
from repro.tmg import (
    build_event_graph,
    maximum_cycle_ratio,
    maximum_cycle_ratio_enumerated,
    maximum_cycle_ratio_lawler,
)


@pytest.fixture(scope="module")
def small_graph():
    system = motivating_example()
    return build_event_graph(build_tmg(system).tmg)


@pytest.fixture(scope="module")
def large_graph():
    system = synthetic_soc(800, seed=1)
    ordering = channel_ordering(system)
    return build_event_graph(build_tmg(system, ordering).tmg)


class TestEngineAblation:
    def test_bench_howard_small(self, benchmark, small_graph):
        result = benchmark(maximum_cycle_ratio, small_graph)
        assert result.ratio > 0

    def test_bench_lawler_small(self, benchmark, small_graph):
        value = benchmark(maximum_cycle_ratio_lawler, small_graph)
        assert value > 0

    def test_bench_enumeration_small(self, benchmark, small_graph):
        ratio, __ = benchmark(maximum_cycle_ratio_enumerated, small_graph)
        assert ratio > 0

    def test_bench_howard_large_float(self, benchmark, large_graph):
        result = benchmark.pedantic(
            maximum_cycle_ratio, args=(large_graph,),
            kwargs={"exact": False}, rounds=2, iterations=1,
        )
        assert result.ratio > 0

    def test_bench_howard_large_exact(self, benchmark, large_graph):
        result = benchmark.pedantic(
            maximum_cycle_ratio, args=(large_graph,),
            kwargs={"exact": True}, rounds=2, iterations=1,
        )
        assert result.ratio > 0


def _selection_problem(n_groups=20, n_choices=8):
    problem = MultiChoiceProblem(maximize=True)
    for g in range(n_groups):
        problem.add_group(
            f"p{g}",
            [
                Choice(f"c{i}", float((g * 7 + i * 3) % 11),
                       {"w": (g + i) % 5})
                for i in range(n_choices)
            ],
        )
    problem.add_constraint("w", "<=", n_groups)
    return problem


class TestIlpAblation:
    def test_bench_branch_bound(self, benchmark):
        problem = _selection_problem()
        solution = benchmark(branch_bound.solve, problem)
        assert problem.is_feasible(solution.selection)

    def test_bench_knapsack_dp(self, benchmark):
        problem = _selection_problem()
        assert knapsack.applicable(problem)
        solution = benchmark(knapsack.solve, problem)
        assert problem.is_feasible(solution.selection)

    @pytest.mark.skipif(not scipy_backend.available(), reason="no scipy")
    def test_bench_scipy_milp(self, benchmark):
        problem = _selection_problem()
        solution = benchmark.pedantic(
            scipy_backend.solve, args=(problem,), rounds=3, iterations=1
        )
        assert problem.is_feasible(solution.selection)

    def test_backends_agree(self):
        problem = _selection_problem()
        a = branch_bound.solve(problem).objective
        b = knapsack.solve(problem).objective
        assert a == b
        if scipy_backend.available():
            assert scipy_backend.solve(problem).objective == a


class TestControlFifoAblation:
    def test_bench_control_fifo_depth(self, benchmark, mpeg2_library):
        """DESIGN.md's CONTROL_FIFO_DEPTH choice: sweep the depth of the
        narrow control channels and measure M1's cycle time.  Depth 0
        (pure rendezvous) couples the datapath through the GOP fan-out;
        the curve flattens once the pipeline is decoupled, which is where
        the default (4) sits."""
        import repro.mpeg2.topology as topo
        from repro.dse import SystemConfiguration
        from repro.model import analyze_system
        from repro.mpeg2 import m1_selection
        from repro.ordering import declaration_ordering

        def sweep():
            curve = {}
            original = topo.CONTROL_FIFO_DEPTH
            try:
                for depth in (0, 1, 2, 4, 8):
                    topo.CONTROL_FIFO_DEPTH = depth
                    system = topo.build_mpeg2_system()
                    config = SystemConfiguration(
                        system, mpeg2_library, m1_selection(mpeg2_library),
                        declaration_ordering(system),
                    )
                    perf = analyze_system(
                        system, config.ordering,
                        process_latencies=config.process_latencies(),
                    )
                    curve[depth] = float(perf.cycle_time)
            finally:
                topo.CONTROL_FIFO_DEPTH = original
            return curve

        curve = benchmark.pedantic(sweep, rounds=1, iterations=1)
        # rendezvous control tokens serialize the pipeline badly...
        assert curve[0] > 1.10 * curve[4]
        # ...and the curve has flattened by the default depth.
        assert curve[4] <= curve[2]
        assert abs(curve[8] - curve[4]) / curve[4] < 0.02
        benchmark.extra_info.update(
            {f"ct_depth_{d}": v for d, v in curve.items()}
        )
        print("\ncontrol-FIFO depth -> M1 cycle time (KCycles):")
        for depth, ct in curve.items():
            print(f"  depth {depth}: {ct / 1000:.0f}")


class TestOrderingAblation:
    def test_bench_algorithm1_mpeg2_scale(self, benchmark):
        """Algorithm 1 on a system of the MPEG-2's size (O(E log E))."""
        system = synthetic_soc(26, n_channels=60, seed=0)
        ordering = benchmark(channel_ordering, system)
        ordering.validate(system)

    def test_bench_annealing_baseline(self, benchmark):
        """Simulated annealing at the same scale: hundreds of full TMG
        analyses to (maybe) improve on the constructive heuristic — the
        cost/quality trade that justifies Algorithm 1."""
        from repro.model import analyze_system
        from repro.ordering import anneal_ordering

        system = synthetic_soc(26, n_channels=60, seed=0)
        constructive = analyze_system(
            system, channel_ordering(system)
        ).cycle_time
        result = benchmark.pedantic(
            anneal_ordering, args=(system,),
            kwargs={"iterations": 200, "seed": 0}, rounds=1, iterations=1,
        )
        assert result.cycle_time <= constructive
        benchmark.extra_info.update(
            {
                "constructive_ct": float(constructive),
                "annealed_ct": float(result.cycle_time),
                "gain_pct": round(
                    100 * (1 - float(result.cycle_time) / float(constructive)),
                    3,
                ),
                "analyses": result.evaluations,
            }
        )
