"""SHARD — the sharded sweep backend must beat sequential >= 2.5x at 4
workers, bit-identically, and the artifact store must carry the results
across processes.

Three phases over one 64-candidate latency sweep of a 40-process
synthetic SoC:

* **A (sequential baseline)** — every unit inline in this process, no
  store;
* **B (sharded, cold store)** — the same units over a 4-worker pool
  writing a fresh :class:`~repro.store.ArtifactStore`; asserted >= 2.5x
  faster than A with ``measurement()``-identical outcomes;
* **C (warm store, fresh pool)** — a brand-new pool (cold memos, per the
  reset initializer) over the same store answers **every** unit from
  disk: cross-process reuse, the store's whole reason to exist.

The reproduced numbers are printed, attached to ``benchmark.extra_info``
and published as ``BENCH_shard.json`` for CI to upload.
"""

import json
import os
import random
import time
from pathlib import Path

from repro.core import synthetic_soc
from repro.ordering import channel_ordering
from repro.service import (
    SOURCE_STORE,
    Candidate,
    ShardedRunner,
    WorkUnit,
    invalidate_worker_state,
)
from repro.store import ArtifactStore

#: Enforced floor on sharded vs sequential throughput at 4 workers —
#: asserted when the machine actually has >= 4 cores to run them on
#: (CI's runners do; a 1-core container physically cannot parallelize).
MIN_SPEEDUP = 2.5
#: Enforced floor on warm-store vs sequential throughput: replaying the
#: sweep from disk instead of recomputing is core-count-independent.
MIN_WARM_SPEEDUP = 2.5
N_CANDIDATES = 64
N_WORKERS = 4
ITERATIONS = 400
REPORT = Path(__file__).resolve().parents[1] / "BENCH_shard.json"


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _setup():
    system = synthetic_soc(40, seed=1)
    ordering = channel_ordering(system)
    rng = random.Random(42)
    workers = [p.name for p in system.workers()]
    units = []
    for index in range(N_CANDIDATES):
        chosen = rng.sample(workers, 5)
        latencies = {name: rng.randint(1, 64) for name in chosen}
        units.append(
            WorkUnit(
                index=index,
                candidate=Candidate.of(latencies),
                iterations=ITERATIONS,
            )
        )
    return system, ordering, units


def test_bench_shard_speedup_and_store_reuse(benchmark, tmp_path):
    system, ordering, units = _setup()
    store = ArtifactStore(tmp_path / "store")

    # Phase A — sequential baseline, storeless, cold memos.
    invalidate_worker_state()
    with ShardedRunner(workers=1) as runner:
        start = time.perf_counter()
        sequential = runner.run(system, ordering, units)
        t_seq = time.perf_counter() - start

    # Phase B — 4 workers, cold store.  The pool is created (forked)
    # inside the timed region: pool startup is part of the price a real
    # sweep pays.
    with ShardedRunner(workers=N_WORKERS, store=store) as runner:
        start = time.perf_counter()
        sharded = runner.run(system, ordering, units)
        t_shard = time.perf_counter() - start

    speedup = t_seq / t_shard
    assert [o.measurement() for o in sharded] == [
        o.measurement() for o in sequential
    ], "sharded outcomes must be bit-identical to the sequential baseline"
    assert store.count("sim") == N_CANDIDATES

    # Phase C — fresh pool (reset initializer: cold memos), same store:
    # every answer comes from disk, nothing is recomputed.
    with ShardedRunner(workers=N_WORKERS, store=store) as runner:
        start = time.perf_counter()
        warm = runner.run(system, ordering, units)
        t_warm = time.perf_counter() - start

    warm_speedup = t_seq / t_warm
    store_hits = sum(1 for o in warm if o.source == SOURCE_STORE)
    assert [o.measurement() for o in warm] == [
        o.measurement() for o in sequential
    ]
    assert store_hits == N_CANDIDATES

    benchmark.pedantic(
        lambda: ShardedRunner(workers=1).run(system, ordering, units[:4]),
        rounds=1,
        iterations=1,
    )

    cores = _cores()
    report = {
        "experiment": "SHARD",
        "system": {"processes": len(system.processes),
                   "channels": len(system.channels)},
        "candidates": N_CANDIDATES,
        "iterations": ITERATIONS,
        "workers": N_WORKERS,
        "cores": cores,
        "sequential_s": round(t_seq, 4),
        "sharded_cold_s": round(t_shard, 4),
        "warm_store_s": round(t_warm, 4),
        "speedup": round(speedup, 2),
        "warm_speedup": round(warm_speedup, 2),
        "min_speedup": MIN_SPEEDUP,
        "speedup_enforced": cores >= N_WORKERS,
        "bit_identical": True,
        "warm_store_hits": store_hits,
    }
    benchmark.extra_info.update(report)
    REPORT.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\nsequential {t_seq*1e3:.0f} ms | sharded(cold) "
        f"{t_shard*1e3:.0f} ms | warm-store {t_warm*1e3:.0f} ms | "
        f"parallel x{speedup:.2f} ({cores} cores) | "
        f"warm x{warm_speedup:.2f} | store hits {store_hits}/{N_CANDIDATES}"
    )

    # Replaying from the store beats recomputing regardless of cores.
    assert warm_speedup >= MIN_WARM_SPEEDUP
    if cores >= N_WORKERS:
        assert speedup >= MIN_SPEEDUP
