"""Quickstart: analyze, order, and simulate a small system.

Builds a four-stage accelerator with a reconvergent fork/join, shows how
the get/put statement order changes the throughput of the synthesized
system, lets Algorithm 1 pick the best order, and cross-checks the
analytic cycle time against the cycle-accurate simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    analyze_system,
    channel_ordering,
    declaration_ordering,
    simulate,
)
from repro.dsl import Design, wire_for_latency


def build_accelerator():
    """src → split → {fir (slow), fft (slower)} → merge → snk."""
    design = Design("accelerator")
    design.source("src", latency=1)
    design.worker("split", latency=2)
    design.worker("fir", latency=6)
    design.worker("fft", latency=14)
    design.worker("merge", latency=3)
    design.sink("snk", latency=1)
    design.connect("samples", "src", "split", wire=wire_for_latency(2))
    # Declaration order encodes two natural-looking mistakes: the fast
    # FIR branch is fed first, and the merge waits for the slow FFT
    # result before draining the FIR -- which parks the FIR (and the
    # splitter behind it) on blocked rendezvous every iteration.
    design.connect("to_fir", "split", "fir", wire=wire_for_latency(1))
    design.connect("to_fft", "split", "fft", wire=wire_for_latency(2))
    design.connect("from_fft", "fft", "merge", wire=wire_for_latency(2))
    design.connect("from_fir", "fir", "merge", wire=wire_for_latency(1))
    design.connect("out", "merge", "snk", wire=wire_for_latency(1))
    return design.build()


def main() -> None:
    system = build_accelerator()
    print(f"system: {len(system.workers())} processes, "
          f"{len(system.channels)} channels, "
          f"{system.order_space_size()} possible statement orders\n")

    # 1. Performance under the order the designer wrote.
    naive = declaration_ordering(system)
    before = analyze_system(system, naive)
    print(f"declaration order: cycle time {before.cycle_time} "
          f"(throughput {float(before.throughput):.4f} items/cycle)")
    print(f"  bottleneck: {' -> '.join(before.critical_processes)}")

    # 2. Algorithm 1: optimized, deadlock-free order.
    ordered = channel_ordering(system)
    after = analyze_system(system, ordered)
    print(f"\nAlgorithm 1 order: cycle time {after.cycle_time}")
    print(f"  split puts: {list(ordered.puts_of('split'))}")
    print(f"  merge gets: {list(ordered.gets_of('merge'))}")
    gain = 1 - float(after.cycle_time) / float(before.cycle_time)
    print(f"  improvement: {gain:.1%}")

    # 3. Validate the analytic number by simulating the "RTL".
    result = simulate(system, ordered, iterations=100)
    measured = result.measured_cycle_time("snk")
    print(f"\nsimulated cycle time: {measured} "
          f"(analysis said {after.cycle_time})")
    assert measured == after.cycle_time


if __name__ == "__main__":
    main()
