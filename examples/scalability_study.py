"""Scalability study (Section 6): synthetic SoCs up to 10,000 processes.

Regenerates the paper's scalability experiment: random systems "with
characteristics similar to those of the MPEG-2, including the presence of
feedback loops and reconvergent paths", swept in size while timing the two
operations the methodology performs per iteration — Algorithm 1 ordering
and the TMG performance analysis.  The paper reports "a few minutes in
the worst cases"; this implementation takes seconds.

Run:  python examples/scalability_study.py [--full]
      (--full includes the 10,000-process point; default stops at 2,000)
"""

import sys
import time

from repro import analyze_system, channel_ordering, synthetic_soc


def sweep(sizes) -> None:
    print(f"{'processes':>10} {'channels':>10} {'order (s)':>10} "
          f"{'analyze (s)':>12} {'cycle time':>12}")
    for size in sizes:
        system = synthetic_soc(size, seed=0)
        start = time.perf_counter()
        ordering = channel_ordering(system)
        t_order = time.perf_counter() - start
        start = time.perf_counter()
        performance = analyze_system(system, ordering, exact=False)
        t_analyze = time.perf_counter() - start
        print(f"{len(system.workers()):>10} {len(system.channels):>10} "
              f"{t_order:>10.3f} {t_analyze:>12.3f} "
              f"{float(performance.cycle_time):>12.0f}")


def main() -> None:
    sizes = [100, 500, 1000, 2000]
    if "--full" in sys.argv:
        sizes += [5000, 10000]
    sweep(sizes)
    if "--full" not in sys.argv:
        print("\n(re-run with --full for the paper's 10,000-process point)")


if __name__ == "__main__":
    main()
