"""Design-space exploration on your own accelerator.

Shows the full ERMES workflow on a user-defined system: build the
topology, characterize each process's micro-architectures with the HLS
knob model, pick a target cycle time, explore, and validate the returned
configuration by simulation.  This is the template to adapt for new
designs.

Run:  python examples/custom_accelerator_dse.py
"""

from repro import (
    ImplementationLibrary,
    SystemConfiguration,
    analyze_system,
    simulate,
    synthesize_pareto_set,
)
from repro.dse import explore, iteration_table, summarize
from repro.dsl import Design, wire_for_latency
from repro.hls import KnobSpace
from repro.ordering import conservative_ordering


def build_system():
    """A video-filter pipeline with a rate-control style feedback loop."""
    design = Design("video_filter")
    design.source("camera", latency=4)
    design.worker("demosaic", latency=40)
    design.worker("denoise", latency=120)
    design.worker("sharpen", latency=60)
    design.worker("tonemap", latency=45)
    design.worker("stats", latency=15)
    design.sink("display", latency=2)
    design.connect("raw", "camera", "demosaic", wire=wire_for_latency(16))
    design.connect("rgb", "demosaic", "denoise", wire=wire_for_latency(12))
    design.connect("clean", "denoise", "sharpen", wire=wire_for_latency(12))
    design.connect("crisp", "sharpen", "tonemap", wire=wire_for_latency(12))
    design.connect("frame", "tonemap", "display", wire=wire_for_latency(16))
    design.connect("histogram", "tonemap", "stats", wire=wire_for_latency(2))
    # Exposure parameters computed from the previous frame's stats:
    # a feedback loop kept live by one pre-loaded default value.
    design.connect("exposure", "stats", "demosaic",
                   wire=wire_for_latency(1, tokens=1))
    return design.build()


def characterize(system):
    """Run the synthetic 'HLS' on each process: knobs -> Pareto frontier."""
    knobs = KnobSpace(unroll_factors=(1, 2, 4), pipeline=(0, 2, 1),
                      sharing_levels=(0, 1))
    return ImplementationLibrary(
        synthesize_pareto_set(
            p.name,
            base_latency=p.latency,
            base_area=3.0 * p.latency,
            knobs=knobs,
            seed=42,
            max_points=6,
        )
        for p in system.workers()
    )


def main() -> None:
    system = build_system()
    library = characterize(system)
    print(f"characterized {len(library)} processes, "
          f"{library.total_points()} Pareto points total\n")

    # Start from the cheapest implementation of everything.
    config = SystemConfiguration.initial(
        system, library, ordering=conservative_ordering(system),
        pick="smallest",
    )
    start = analyze_system(
        system, config.ordering, process_latencies=config.process_latencies()
    )
    print(f"all-smallest start: cycle time {start.cycle_time}, "
          f"area {config.total_area():.0f} um2")

    # Ask for 2.5x the throughput and let ERMES figure it out.
    target = int(start.cycle_time / 2.5)
    print(f"target cycle time: {target}\n")
    result = explore(config, target_cycle_time=target)
    print(iteration_table(result))
    print(summarize(result))

    # Trust but verify: run the returned configuration in the simulator.
    final = result.final
    sim = simulate(
        system,
        final.ordering,
        iterations=60,
        process_latencies=final.process_latencies(),
    )
    measured = sim.measured_cycle_time("display")
    print(f"\nsimulated cycle time of the returned configuration: "
          f"{measured} (analysis said {result.final_record.cycle_time})")
    print("selected implementations:")
    for process in sorted(final.selection):
        impl = final.implementation(process)
        print(f"  {process:<10} {impl.name:<16} latency {impl.latency:>4} "
              f"area {impl.area:>8.1f}")


if __name__ == "__main__":
    main()
