"""Multirate dataflow under the paper's machinery.

The paper's related work contrasts its three-phase blocking processes with
synchronous-dataflow design styles.  The `repro.sdf` front end bridges
them: specify an SDF graph with token rates, compile it to the blocking
system model by homogeneous expansion, and then everything in this
repository — channel ordering, TMG cycle time, buffer sizing, simulation —
applies unchanged.

Run:  python examples/sdf_multirate.py
"""

from repro.model import analyze_system
from repro.sdf import SdfGraph, sdf_to_system
from repro.sizing import size_buffers


def audio_pipeline() -> SdfGraph:
    """A little multirate audio chain: frame → overlap blocks → spectra."""
    graph = SdfGraph("audio")
    graph.add_actor("framer", execution_time=8)      # emits 4 blocks/frame
    graph.add_actor("window", execution_time=3)      # 1 block in, 1 out
    graph.add_actor("fft", execution_time=12)        # 2 blocks in, 1 spectrum
    graph.add_actor("energy", execution_time=2)      # 4 spectra -> 1 report
    graph.add_edge("blocks", "framer", "window", production=4, consumption=1)
    graph.add_edge("windowed", "window", "fft", production=1, consumption=2)
    graph.add_edge("spectra", "fft", "energy", production=1, consumption=4)
    return graph


def main() -> None:
    graph = audio_pipeline()
    vector = graph.repetition_vector()
    print("repetition vector:", vector,
          f"({graph.firings_per_iteration()} firings per iteration)")

    compiled = sdf_to_system(graph)
    system = compiled.system
    print(f"expanded to {len(system.processes)} serial processes, "
          f"{len(system.channels)} channels "
          "(incl. actor-serialization links)")

    perf = analyze_system(system, compiled.ordering)
    print(f"\niteration period under blocking rendezvous: {perf.cycle_time}")
    print(f"bottleneck: {' ,'.join(perf.critical_processes)}")

    # The famous CD -> DAT sample-rate converter: the repetition vector
    # explodes, which is exactly why rate-consistency analysis matters
    # before committing to an expansion.
    cd_dat = SdfGraph("cd2dat")
    for name in ("cd", "s1", "s2", "s3", "s4", "dat"):
        cd_dat.add_actor(name)
    cd_dat.add_edge("e1", "cd", "s1", production=1, consumption=1)
    cd_dat.add_edge("e2", "s1", "s2", production=2, consumption=3)
    cd_dat.add_edge("e3", "s2", "s3", production=2, consumption=7)
    cd_dat.add_edge("e4", "s3", "s4", production=8, consumption=7)
    cd_dat.add_edge("e5", "s4", "dat", production=5, consumption=1)
    vector = cd_dat.repetition_vector()
    print("\nCD->DAT (44.1 kHz -> 48 kHz) repetition vector:")
    for actor, count in vector.items():
        print(f"  {actor:>4}: {count}")
    print(f"  one iteration = {cd_dat.firings_per_iteration()} firings — "
          "analyze before you unfold!")

    # Buffer the expanded audio pipeline to its best achievable rate.
    floor = size_buffers(system, target_cycle_time=1,
                         ordering=compiled.ordering, max_capacity=8)
    print(f"\nwith up to 8-deep FIFOs everywhere the period floor is "
          f"{floor.cycle_time} (compute-bound)")

    # The DSL spells the same thing in one line and closes the expansion
    # with per-actor testbenches, so the result passes full validation
    # (and lint) as-is.
    from repro.dsl import rate_chain, streaming_design

    chain = rate_chain("upsampler", [(1, 2), (3, 2)],
                       execution_times=[2, 4, 3])
    closed = streaming_design(chain)
    perf2 = analyze_system(closed.system, closed.ordering)
    print(f"\nDSL rate_chain 'upsampler' ({closed.repetitions}): "
          f"{len(closed.system.processes)} processes, "
          f"period {perf2.cycle_time}")


if __name__ == "__main__":
    main()
