"""Regenerate the checked-in design JSONs under ``examples/designs/``.

These files feed two consumers:

* documentation — ready-made inputs for every ``ermes`` subcommand
  (``ermes lint examples/designs/motivating.json``);
* CI — the workflow runs ``ermes lint --fail-on error`` over every design
  here, so the shipped examples can never regress into structurally
  broken or every-ordering-deadlocked specifications.

Run from the repository root::

    PYTHONPATH=src python examples/designs/export.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import (
    fork_join,
    motivating_example,
    motivating_suboptimal_ordering,
    pipeline,
    save_ordering,
    save_system,
    synthetic_soc,
)

HERE = Path(__file__).resolve().parent


def main() -> None:
    designs = {
        "motivating": motivating_example(),
        "fork_join": fork_join(3),
        "pipeline": pipeline(5),
        "soc24": synthetic_soc(24, seed=0),
    }
    for name, system in designs.items():
        path = HERE / f"{name}.json"
        save_system(system, path)
        print(f"wrote {path}")
    # The Section 2 hand-fixed ordering: live but suboptimal, so
    # `ermes lint --ordering` demonstrates ERM301 with the exact delta.
    ordering_path = HERE / "motivating.suboptimal.ordering.json"
    save_ordering(
        motivating_suboptimal_ordering(designs["motivating"]), ordering_path
    )
    print(f"wrote {ordering_path}")


if __name__ == "__main__":
    main()
