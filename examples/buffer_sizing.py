"""FIFO buffer sizing: pushing past the rendezvous optimum.

Channel reordering (Algorithm 1) optimizes a system *without touching its
protocol*: the best reachable cycle time is bounded by the coupling the
rendezvous channels impose.  Replacing channels with small FIFOs buys
further decoupling at a storage cost — the sizing problem the paper's
related work says "must be carefully" solved.  This example walks the
whole ladder on the motivating example:

  deadlocking order -> live order -> Algorithm 1 optimum -> sized FIFOs

and prints the storage each extra bit of throughput costs.

Run:  python examples/buffer_sizing.py
"""

from repro import (
    analyze_system,
    channel_ordering,
    minimize_buffers,
    motivating_example,
    motivating_suboptimal_ordering,
)
from repro.viz import ascii_series


def main() -> None:
    system = motivating_example()
    ordering = channel_ordering(
        system, initial_ordering=motivating_suboptimal_ordering(system)
    )
    base = analyze_system(system, ordering)
    print(f"Algorithm 1 on rendezvous channels: cycle time {base.cycle_time}")
    print(f"  binding constraint: {' ,'.join(base.critical_processes)}'s "
          "own serial cycle — no reorder can go lower\n")

    print(f"{'target':>8} {'achieved':>9} {'slots':>6}  capacities")
    achieved = []
    for target in range(int(base.cycle_time), 6, -1):
        result = minimize_buffers(system, target_cycle_time=target,
                                  ordering=ordering, max_capacity=16)
        if not result.feasible:
            print(f"{target:>8} {'---':>9} {'---':>6}  floor reached "
                  f"(best {result.cycle_time})")
            break
        sized = {k: v for k, v in result.capacities.items() if v > 1}
        print(f"{target:>8} {str(result.cycle_time):>9} "
              f"{result.total_slots:>6}  "
              f"{sized if sized else 'all rendezvous-equivalent (depth 1)'}")
        achieved.append(float(result.cycle_time))

    if achieved:
        print("\nachieved cycle time as targets tighten:")
        print(ascii_series(achieved, width=40, height=8))


if __name__ == "__main__":
    main()
