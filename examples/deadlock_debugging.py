"""Deadlock debugging: the paper's Section 2 story, fully automated.

Reproduces the motivating example end to end: the Listing-1 statement
order deadlocks; a hand-made reorder is live but slow; Algorithm 1 finds
the optimum.  Shows the diagnostic workflow a designer gets from the
tool: the exact circular wait (statically and from a runtime simulation),
the full classification of the order space, and the fix.

Run:  python examples/deadlock_debugging.py
"""

from repro import (
    SimulationDeadlock,
    analyze_system,
    channel_ordering,
    deadlock_cycle,
    exhaustive_search,
    motivating_deadlock_ordering,
    motivating_example,
    motivating_suboptimal_ordering,
    simulate,
)


def main() -> None:
    system = motivating_example()
    print(f"the motivating example has {system.order_space_size()} "
          "possible statement orders\n")

    # --- Step 1: the order the designer wrote deadlocks -----------------
    listing1 = motivating_deadlock_ordering(system)
    wait = deadlock_cycle(system, listing1)
    print("Listing-1 order (P2 writes b,d,f; P6 reads g,d,e):")
    print(f"  static analysis: DEADLOCK, circular wait "
          f"{' -> '.join(wait)}")

    # The simulation confirms it (this is the lengthy debug loop the
    # static check replaces).
    try:
        simulate(system, listing1, iterations=5)
    except SimulationDeadlock as stuck:
        print(f"  simulation: stuck after the first transfers; "
              f"blocked ring {' -> '.join(stuck.cycle)}")

    # --- Step 2: the hand fix works but serializes ----------------------
    hand_fix = motivating_suboptimal_ordering(system)
    perf = analyze_system(system, hand_fix)
    print(f"\nhand-made reorder (P2: f,b,d; P6: e,g,d): live, cycle time "
          f"{perf.cycle_time} (throughput {float(perf.throughput)})")

    # --- Step 3: how good could any order be? ---------------------------
    census = exhaustive_search(system)
    print(f"\nexhaustive census of all {census.total_orderings} orders: "
          f"{census.deadlocking_orderings} deadlock, best cycle time "
          f"{census.best_cycle_time}, worst {census.worst_cycle_time}")

    # --- Step 4: Algorithm 1 finds the optimum directly ------------------
    ordering = channel_ordering(system, initial_ordering=hand_fix)
    best = analyze_system(system, ordering)
    print(f"\nAlgorithm 1: P2 writes {list(ordering.puts_of('P2'))}, "
          f"P6 reads {list(ordering.gets_of('P6'))}")
    print(f"  cycle time {best.cycle_time} = exhaustive optimum "
          f"({1 - float(best.cycle_time) / float(perf.cycle_time):.0%} "
          "better than the hand fix)")
    result = simulate(system, ordering, iterations=60)
    print(f"  simulation agrees: {result.measured_cycle_time('Psnk')}")


if __name__ == "__main__":
    main()
