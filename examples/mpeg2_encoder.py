"""The MPEG-2 Encoder case study (Section 6 of the paper).

Runs the full Section 6 storyline on the reconstructed 26-process /
60-channel encoder:

1. Table 1 — the experimental setup, regenerated;
2. the M1 experiment — channel reordering alone buys ~5% cycle time at
   zero area cost;
3. the two Fig. 6 explorations from M2 (timing optimization at TCT=2,000
   KCycles; area recovery at TCT=4,000 KCycles);
4. a functional run — real video encoded *through* the blocking channels
   by the discrete-event simulator, bit-exact with the reference encoder.

Run:  python examples/mpeg2_encoder.py
"""

from repro import SystemConfiguration, analyze_system, channel_ordering
from repro.dse import explore, iteration_table, summarize
from repro.mpeg2 import (
    build_mpeg2_library,
    build_mpeg2_system,
    channel_latencies,
    encode_through_system,
    m1_selection,
    m2_selection,
)
from repro.mpeg2.codec import (
    Decoder,
    Encoder,
    EncoderConfig,
    VideoFormat,
    psnr,
    synthetic_sequence,
)
from repro.ordering import declaration_ordering


def table1(system, library) -> None:
    latencies = channel_latencies()
    print("=== Table 1: experimental setup ===")
    print(f"  Processes          {len(system.workers())}")
    print(f"  Channels           60 (+2 testbench)")
    print(f"  Pareto points      {library.total_points()}")
    print(f"  Image size         352x240")
    print(f"  Channel latencies  {min(latencies.values())}.."
          f"{max(latencies.values())} cycles")


def m1_experiment(system, library) -> None:
    print("\n=== M1: reordering alone (paper: 5% better, area unchanged) ===")
    config = SystemConfiguration(
        system, library, m1_selection(library), declaration_ordering(system)
    )
    latencies = config.process_latencies()
    before = analyze_system(system, config.ordering,
                            process_latencies=latencies)
    print(f"  M1 as designed: CT {float(before.cycle_time) / 1000:.0f} "
          f"KCycles, area {config.total_area() / 1e6:.3f} mm2")
    print(f"  serialization detected on: "
          f"{', '.join(before.critical_processes)}")
    ordering = channel_ordering(
        system.with_process_latencies(latencies),
        initial_ordering=config.ordering,
    )
    after = analyze_system(system, ordering, process_latencies=latencies)
    gain = 1 - float(after.cycle_time) / float(before.cycle_time)
    changed = ordering.differs_from(config.ordering)
    print(f"  after ERMES reordering of {', '.join(changed)}: "
          f"CT {float(after.cycle_time) / 1000:.0f} KCycles "
          f"({gain:.1%} better, no area change)")


def fig6(system, library) -> None:
    config = SystemConfiguration(
        system, library, m2_selection(library), declaration_ordering(system)
    )
    for label, target in (("left: timing optimization", 2_000_000),
                          ("right: area recovery", 4_000_000)):
        print(f"\n=== Fig. 6 {label} (TCT = {target // 1000} KCycles) ===")
        result = explore(config, target_cycle_time=target)
        print(iteration_table(result, cycle_time_unit=1000, area_unit=1e6))
        print("  " + summarize(result))


def functional_run() -> None:
    print("\n=== Functional run: video through the 26 blocking channels ===")
    fmt = VideoFormat()  # the paper's 352x240
    frames = synthetic_sequence(5, fmt, seed=0)
    config = EncoderConfig(gop_size=4, qscale=7, search_range=8,
                           me_mode="two_stage", half_pel=True,
                           target_bits_per_frame=220_000, reference_delay=2)

    run = encode_through_system(frames, config)
    reference = Encoder(config).encode_sequence(frames)
    match = "bit-exact" if run.bitstream == reference.bitstream else "MISMATCH"
    print(f"  {len(frames)} frames of {fmt.width}x{fmt.height} -> "
          f"{len(run.bitstream)} bytes ({match} with the reference encoder)")

    decoded = Decoder(fmt, reference_delay=2).decode_sequence(
        run.bitstream, len(frames)
    )
    quality = sum(psnr(f.y, d.y) for f, d in zip(frames, decoded)) / len(frames)
    raw = len(frames) * (fmt.width * fmt.height * 3 // 2) * 8
    print(f"  compression {raw / (8 * len(run.bitstream)):.1f}x, "
          f"mean luma PSNR {quality:.1f} dB")
    sim = run.simulation
    print(f"  simulated iterations: sink consumed "
          f"{sim.iterations['Psnk']} frames; "
          f"{sum(sim.channel_transfers.values())} channel transfers")


def main() -> None:
    system = build_mpeg2_system()
    library = build_mpeg2_library()
    table1(system, library)
    m1_experiment(system, library)
    fig6(system, library)
    functional_run()


if __name__ == "__main__":
    main()
