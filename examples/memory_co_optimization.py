"""Memory co-optimization: logic, ordering, and buffers under one budget.

The paper closes with "future work will involve the co-optimization of
the memory elements."  This example runs the implemented version on the
motivating example: a sweep of targets from the rendezvous optimum down
past the logic floor, showing where implementations stop sufficing and
FIFO slots (memory area) start paying for cycles.

Run:  python examples/memory_co_optimization.py
"""

from repro import ChannelOrdering, motivating_example
from repro.dse import (
    SystemConfiguration,
    co_optimize,
    volume_proportional_slot_area,
)
from repro.hls import ImplementationLibrary, synthesize_pareto_set


def main() -> None:
    system = motivating_example()
    library = ImplementationLibrary(
        synthesize_pareto_set(
            p.name, base_latency=p.latency * 4, base_area=50.0 * p.latency,
            seed=13, max_points=5,
        )
        for p in system.workers()
    )
    config = SystemConfiguration.initial(
        system, library,
        ordering=ChannelOrdering.declaration_order(system),
        pick="smallest",
    )
    memory_model = volume_proportional_slot_area(area_per_latency_cycle=25.0)

    print(f"{'target':>7} {'achieved':>9} {'logic um2':>10} "
          f"{'memory um2':>11} {'buffered channels'}")
    for target in (30, 20, 14, 12, 10, 8, 6):
        result = co_optimize(
            config, target_cycle_time=target, slot_area=memory_model,
            max_capacity=8,
        )
        buffered = {
            name: slots
            for name, slots in sorted(result.capacities.items())
            if slots > 0
        }
        status = str(result.cycle_time) if result.feasible else (
            f"{result.cycle_time}*"
        )
        print(f"{target:>7} {status:>9} {result.logic_area:>10.0f} "
              f"{result.memory_area:>11.0f} {buffered if buffered else '-'}")
    print("\n(* = infeasible even with buffers: compute-bound floor)")


if __name__ == "__main__":
    main()
