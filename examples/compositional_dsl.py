"""The compositional design DSL: gears for ERMES.

Hand-wiring a ``SystemGraph`` channel by channel works for five
processes; it does not scale to replicated fabrics, and it loses the one
fact the designer knew all along — *which stages are copies of each
other*.  The :mod:`repro.dsl` layer fixes both: typed combinators
(``stage``/``pipe``/``fanout``/``ring``/``mesh``/``butterfly``) compose
small designs into big ones, per-port :class:`~repro.dsl.Wire` metadata
derives channel latencies from payload shape, and every replicating
combinator *declares* its replication so the lint and exploration layers
get families as facts instead of rediscovering them by canonical
labeling.

Run:  python examples/compositional_dsl.py
"""

from repro import analyze_system, channel_ordering, lint_system
from repro.dsl import (
    Wire,
    parallel,
    pipe,
    sink_stage,
    source_stage,
    stage,
    testbenched,
    mesh,
)


def build_beamformer(lanes: int = 4):
    """A receive beamformer: ADC fan-out into identical filter lanes."""
    burst = Wire(elements=32, rate=16)   # 32-element bursts, 16/cycle -> 2
    sample = Wire(elements=8, rate=8)    # per-lane samples       -> 1
    front = pipe(
        source_stage("adc", latency=1, wire=burst),
        stage(
            "steer",
            latency=3,
            inputs=[("in", burst)],
            outputs=[(f"ch{i}", sample) for i in range(lanes)],
        ),
    )
    # parallel() checks the lanes are structurally aligned and declares
    # the 'beams' family: the claim is verified against the lowered
    # program at lint time, never trusted blindly.
    beams = parallel(
        *(
            pipe(
                stage(f"filt{i}", latency=5, wire=sample),
                stage(f"corr{i}", latency=4, wire=sample),
            )
            for i in range(lanes)
        ),
        family="beams",
    )
    back = pipe(
        stage("combine", latency=2, inputs=lanes, wire=sample),
        sink_stage("dsp", latency=1, wire=sample),
    )
    return pipe(front, beams, back).build(name="beamformer")


def main() -> None:
    system = build_beamformer(4)
    print(f"beamformer: {len(system.workers())} processes, "
          f"{len(system.channels)} channels")
    for family in system.declared_families:
        print(f"  declared family {family.name!r} ({family.kind}): "
              f"{len(family.process_orbits[0])} members per orbit")

    # The declared family reaches ERM701 without a canonical-labeling
    # search — the composition layer already knew.
    result = lint_system(system)
    for diagnostic in result.diagnostics:
        if diagnostic.rule == "ERM701":
            print(f"\n{diagnostic.rule}: {diagnostic.message}")

    ordering = channel_ordering(system)
    performance = analyze_system(system, ordering)
    print(f"\nAlgorithm 1 cycle time: {performance.cycle_time} "
          f"(bottleneck {' -> '.join(performance.critical_processes)})")

    # Fabric combinators scale the same idea: a wrapped mesh declares its
    # row/column translation symmetry as cyclic families.
    torus = testbenched(mesh(3, 3, wrap=True, tokens=1)).build(name="torus")
    print(f"\n3x3 torus: {len(torus.processes)} processes, "
          f"families {[f.name for f in torus.declared_families]}")


if __name__ == "__main__":
    main()
